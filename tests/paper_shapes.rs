//! Qualitative paper-shape assertions: the headline relationships the
//! reproduction is expected to preserve, checked at test-friendly scale.
//!
//! These are the load-bearing claims of the paper (Sections 4.2–4.3):
//! lazy RC tolerates false sharing, reduces miss counts on the sharing-heavy
//! applications, never forwards reads, and the lazier variant trades lower
//! miss rates for higher synchronization cost.

use lazy_rc::prelude::*;
use lazy_rc::workloads::{Scale, WorkloadKind};

fn run_at(proto: Protocol, kind: WorkloadKind, procs: usize, scale: Scale) -> MachineStats {
    let cfg = MachineConfig::paper_default(procs);
    Machine::new(cfg, proto)
        .with_max_cycles(20_000_000_000)
        .run(kind.build(procs, scale))
        .stats
}

#[test]
fn lazy_reduces_misses_on_false_sharing_apps() {
    // Table 3's direction: mp3d and locusroute have large false-sharing
    // components, and the lazy protocol's miss counts must come in lower.
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Locusroute] {
        let eager = run_at(Protocol::Erc, kind, 16, Scale::Tiny);
        let lazy = run_at(Protocol::Lrc, kind, 16, Scale::Tiny);
        assert!(
            lazy.total_miss_count() < eager.total_miss_count(),
            "{kind}: lazy {} vs eager {}",
            lazy.total_miss_count(),
            eager.total_miss_count()
        );
    }
}

#[test]
fn lazy_matches_miss_rate_where_no_false_sharing() {
    // Table 3: cholesky and fft have almost no false sharing; lazy must not
    // inflate their misses dramatically (the paper shows identical rates).
    {
        let kind = WorkloadKind::Fft;
        let eager = run_at(Protocol::Erc, kind, 16, Scale::Tiny);
        let lazy = run_at(Protocol::Lrc, kind, 16, Scale::Tiny);
        let (e, l) = (eager.miss_rate(), lazy.miss_rate());
        assert!(
            (l - e).abs() / e.max(1e-9) < 0.15,
            "{kind}: lazy {l:.4} vs eager {e:.4} should be close"
        );
    }
}

#[test]
fn relaxed_protocols_beat_sequential_consistency() {
    // Figure 4's unit line: both RC implementations run faster than SC on
    // the write-heavy applications.
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Fft] {
        let sc = run_at(Protocol::Sc, kind, 16, Scale::Tiny).total_cycles;
        let eager = run_at(Protocol::Erc, kind, 16, Scale::Tiny).total_cycles;
        assert!(eager < sc, "{kind}: eager {eager} must beat SC {sc}");
    }
}

#[test]
fn lazy_ext_trades_sync_for_misses() {
    // Section 4.3: the lazier protocol has the lowest miss rates but pays
    // at releases. Check both halves on a sharing-heavy app.
    let lazy = run_at(Protocol::Lrc, WorkloadKind::Mp3d, 16, Scale::Tiny);
    let ext = run_at(Protocol::LrcExt, WorkloadKind::Mp3d, 16, Scale::Tiny);
    assert!(
        ext.total_miss_count() <= lazy.total_miss_count(),
        "lazier ⇒ fewer or equal misses ({} vs {})",
        ext.total_miss_count(),
        lazy.total_miss_count()
    );
    let lazy_sync: u64 = lazy.procs.iter().map(|p| p.breakdown.sync).sum();
    let ext_sync: u64 = ext.procs.iter().map(|p| p.breakdown.sync).sum();
    assert!(
        ext_sync > lazy_sync,
        "deferred notices must inflate synchronization ({ext_sync} vs {lazy_sync})"
    );
}

#[test]
fn gauss_sheds_three_hop_transactions_under_lazy() {
    // Section 4.2's gauss analysis: pivot-row reads hit dirty lines, so the
    // eager protocol forwards them (3-hop) while the lazy one never does.
    let eager = run_at(Protocol::Erc, WorkloadKind::Gauss, 16, Scale::Tiny);
    let lazy = run_at(Protocol::Lrc, WorkloadKind::Gauss, 16, Scale::Tiny);
    let eager_3hop: u64 = eager.procs.iter().map(|p| p.three_hop).sum();
    let lazy_3hop: u64 = lazy.procs.iter().map(|p| p.three_hop).sum();
    assert!(eager_3hop > 0, "gauss under eager must forward pivot reads");
    assert_eq!(lazy_3hop, 0);
}

#[test]
fn lazy_cuts_data_traffic_on_sharing_heavy_apps() {
    // Fewer ping-pong fills ⇒ fewer data messages on the wire, even though
    // write-throughs add control traffic.
    let eager = run_at(Protocol::Erc, WorkloadKind::Mp3d, 16, Scale::Tiny);
    let lazy = run_at(Protocol::Lrc, WorkloadKind::Mp3d, 16, Scale::Tiny);
    assert!(
        lazy.aggregate_traffic().data_msgs < eager.aggregate_traffic().data_msgs,
        "lazy {} vs eager {}",
        lazy.aggregate_traffic().data_msgs,
        eager.aggregate_traffic().data_msgs
    );
}

#[test]
fn longer_lines_widen_the_false_sharing_gap() {
    // Section 4.3: longer cache lines induce more false sharing, growing
    // the lazy advantage in misses.
    let gap = |line_size: usize| -> f64 {
        let mut cfg = MachineConfig::paper_default(16);
        cfg.line_size = line_size;
        let eager = Machine::new(cfg.clone(), Protocol::Erc)
            .with_max_cycles(20_000_000_000)
            .run(WorkloadKind::Mp3d.build(16, Scale::Tiny))
            .stats
            .total_miss_count() as f64;
        let lazy = Machine::new(cfg, Protocol::Lrc)
            .with_max_cycles(20_000_000_000)
            .run(WorkloadKind::Mp3d.build(16, Scale::Tiny))
            .stats
            .total_miss_count() as f64;
        eager / lazy
    };
    let narrow = gap(64);
    let wide = gap(256);
    assert!(
        wide > narrow,
        "miss-count ratio must grow with line size: 64B {narrow:.2} vs 256B {wide:.2}"
    );
}

#[test]
fn quality_divergence_is_bounded() {
    // Section 4.2: delayed visibility distorts the unsynchronized mp3d's
    // answer only modestly (paper: 6.7% on the worst axis).
    let q = lazy_rc::workloads::quality_experiment(4000, 10, 16);
    assert!(q.divergence_pct.iter().any(|&d| d > 0.0));
    assert!(
        q.divergence_pct.iter().all(|&d| d < 15.0),
        "divergence {:?} should stay in the paper's ballpark",
        q.divergence_pct
    );
}

//! Determinism guard: a golden-fingerprint test pinning the simulator's
//! observable results for one medium-sized (protocol, workload) grid slice.
//!
//! The simulation kernel is bit-deterministic: the same (protocol, workload,
//! scale, procs) always yields the same cycle counts, message totals, and
//! miss-class histogram. Kernel refactors (event-queue replacement, state
//! layout changes, allocation pooling) must preserve those results exactly —
//! this test catches any silent divergence immediately by comparing against
//! fingerprints committed in `tests/golden/determinism_medium.json`.
//!
//! Regenerate (only when a result change is *intended* and understood):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test determinism_golden -- --nocapture
//! ```

use lazy_rc::prelude::*;
use lazy_rc::workloads::Scale;

const PROCS: usize = 16;
const WORKLOAD: WorkloadKind = WorkloadKind::Mp3d;
const SCALE: Scale = Scale::Medium;
const GOLDEN_PATH: &str = "tests/golden/determinism_medium.json";

/// Everything the fingerprint folds in, kept readable so a mismatch shows
/// *what* diverged rather than just an opaque hash.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    total_cycles: u64,
    finish_sum: u64,
    refs: u64,
    read_misses: u64,
    write_misses: u64,
    upgrades: u64,
    control_msgs: u64,
    data_msgs: u64,
    write_data_msgs: u64,
    bytes: u64,
    miss_histogram: [u64; 5],
    hash: u64,
}

/// FNV-1a over the result fields, spelled out here so the fingerprint does
/// not depend on any hasher implementation elsewhere in the workspace.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn fingerprint(r: &RunResult) -> Fingerprint {
    let s = &r.stats;
    let traffic = s.aggregate_traffic();
    let misses = s.aggregate_misses().as_array();
    let finish_sum: u64 = s.procs.iter().map(|p| p.finish_time).sum();
    let refs = s.total_refs();
    let read_misses: u64 = s.procs.iter().map(|p| p.read_misses).sum();
    let write_misses: u64 = s.procs.iter().map(|p| p.write_misses).sum();
    let upgrades: u64 = s.procs.iter().map(|p| p.upgrades).sum();
    let mut words = vec![
        s.total_cycles,
        finish_sum,
        refs,
        read_misses,
        write_misses,
        upgrades,
        traffic.control_msgs,
        traffic.data_msgs,
        traffic.write_data_msgs,
        traffic.bytes,
    ];
    words.extend_from_slice(&misses);
    // Per-processor finish times and sync counters: divergence anywhere in
    // the machine perturbs these even when the totals happen to collide.
    for p in &s.procs {
        words.push(p.finish_time);
        words.push(p.lock_acquires);
        words.push(p.barriers);
        words.push(p.breakdown.total());
    }
    Fingerprint {
        total_cycles: s.total_cycles,
        finish_sum,
        refs,
        read_misses,
        write_misses,
        upgrades,
        control_msgs: traffic.control_msgs,
        data_msgs: traffic.data_msgs,
        write_data_msgs: traffic.write_data_msgs,
        bytes: traffic.bytes,
        miss_histogram: misses,
        hash: fnv1a(&words),
    }
}

fn run(proto: Protocol, scale: Scale) -> Fingerprint {
    let cfg = MachineConfig::paper_default(PROCS);
    let r = Machine::new(cfg, proto)
        .with_max_cycles(50_000_000_000)
        .with_classification()
        .run(WORKLOAD.build(PROCS, scale));
    fingerprint(&r)
}

fn to_json_line(proto: Protocol, f: &Fingerprint) -> String {
    format!(
        "  \"{}\": {{\"total_cycles\": {}, \"finish_sum\": {}, \"refs\": {}, \
         \"read_misses\": {}, \"write_misses\": {}, \"upgrades\": {}, \
         \"control_msgs\": {}, \"data_msgs\": {}, \"write_data_msgs\": {}, \
         \"bytes\": {}, \"miss_histogram\": [{}, {}, {}, {}, {}], \"hash\": {}}}",
        proto.name(),
        f.total_cycles,
        f.finish_sum,
        f.refs,
        f.read_misses,
        f.write_misses,
        f.upgrades,
        f.control_msgs,
        f.data_msgs,
        f.write_data_msgs,
        f.bytes,
        f.miss_histogram[0],
        f.miss_histogram[1],
        f.miss_histogram[2],
        f.miss_histogram[3],
        f.miss_histogram[4],
        f.hash,
    )
}

/// Minimal field extractor for the golden file: finds `"key": <u64>` within
/// one protocol's object. The file is machine-written with a fixed shape, so
/// a purpose-built scan keeps this test dependency-free.
fn field(obj: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat).unwrap_or_else(|| panic!("golden missing field {key}")) + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("golden field parses")
}

fn array_field(obj: &str, key: &str) -> [u64; 5] {
    let pat = format!("\"{key}\": [");
    let start = obj.find(&pat).unwrap_or_else(|| panic!("golden missing field {key}")) + pat.len();
    let rest = &obj[start..];
    let end = rest.find(']').expect("golden array closes");
    let mut out = [0u64; 5];
    for (i, part) in rest[..end].split(',').enumerate() {
        out[i] = part.trim().parse().expect("golden array element parses");
    }
    out
}

fn parse_golden(contents: &str, proto: Protocol) -> Fingerprint {
    let pat = format!("\"{}\": {{", proto.name());
    let start = contents
        .find(&pat)
        .unwrap_or_else(|| panic!("golden file has no entry for {proto}"));
    let obj_start = start + pat.len();
    let end = contents[obj_start..].find('}').expect("golden object closes");
    let obj = &contents[obj_start..obj_start + end];
    Fingerprint {
        total_cycles: field(obj, "total_cycles"),
        finish_sum: field(obj, "finish_sum"),
        refs: field(obj, "refs"),
        read_misses: field(obj, "read_misses"),
        write_misses: field(obj, "write_misses"),
        upgrades: field(obj, "upgrades"),
        control_msgs: field(obj, "control_msgs"),
        data_msgs: field(obj, "data_msgs"),
        write_data_msgs: field(obj, "write_data_msgs"),
        bytes: field(obj, "bytes"),
        miss_histogram: array_field(obj, "miss_histogram"),
        hash: field(obj, "hash"),
    }
}

#[test]
fn golden_fingerprints_across_all_protocols() {
    let results: Vec<(Protocol, Fingerprint)> =
        Protocol::ALL.iter().map(|&p| (p, run(p, SCALE))).collect();

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let mut out = String::from("{\n");
        for (i, (p, f)) in results.iter().enumerate() {
            out.push_str(&to_json_line(*p, f));
            out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        out.push_str("}\n");
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &out).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }

    let contents = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN_PATH} ({e}); run with GOLDEN_REGEN=1 to create")
    });
    for (p, got) in &results {
        let want = parse_golden(&contents, *p);
        assert_eq!(
            *got, want,
            "{p}/{WORKLOAD} @ {}×{PROCS}p: simulation results diverged from golden \
             fingerprint — a kernel change altered observable behavior. If (and only \
             if) the change is intended, regenerate with GOLDEN_REGEN=1.",
            SCALE.name(),
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Two fresh machines, same inputs: every counter must match. Guards the
    // kernel against nondeterminism (e.g. randomized hash iteration leaking
    // into message order) independently of the committed golden file. Small
    // scale keeps the debug-mode test suite quick; the golden test above
    // covers medium.
    let a = run(Protocol::Lrc, Scale::Small);
    let b = run(Protocol::Lrc, Scale::Small);
    assert_eq!(a, b, "same-process reruns must be bit-identical");
}

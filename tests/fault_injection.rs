//! Robustness guard: deterministic fault injection and the progress
//! watchdog.
//!
//! Three properties are pinned here:
//!
//! 1. **Zero-overhead off switch** — installing an all-zero [`FaultPlan`]
//!    is bit-identical to not installing one: every statistic matches.
//! 2. **Recovery** — at recoverable fault rates the link layer's
//!    NACK/retry/timeout machinery delivers every protocol message exactly
//!    once, so runs complete with the same work performed, and the fault
//!    pattern (hence the whole run) is reproducible per seed.
//! 3. **Diagnosis over hang** — an unrecoverable loss (here the injected
//!    `Fault::SkipWriteNotice` protocol bug, the same one the model checker
//!    hunts) surfaces as a structured [`StallDiagnosis`] naming the wedged
//!    release fence, never as a silent hang or an opaque panic.

use lazy_rc::prelude::*;
use lazy_rc::workloads::Scale;

const PROCS: usize = 8;

fn run_with(plan: Option<FaultPlan>) -> MachineStats {
    let cfg = MachineConfig::paper_default(PROCS);
    let mut m = Machine::new(cfg, Protocol::Lrc).with_max_cycles(50_000_000_000);
    if let Some(p) = plan {
        m = m.with_fault_plan(p);
    }
    m.run(WorkloadKind::Mp3d.build(PROCS, Scale::Small)).stats
}

#[test]
fn zero_rate_plan_is_bit_identical_to_fault_free() {
    let clean = run_with(None);
    let zero = run_with(Some(FaultPlan::off(123)));
    assert_eq!(
        clean, zero,
        "an inactive fault plan must not perturb the simulation in any way"
    );
    assert!(zero.faults.is_zero());
}

#[test]
fn recoverable_fault_rates_complete_and_are_deterministic() {
    let a = run_with(Some(FaultPlan::uniform(1e-3, 7)));
    let b = run_with(Some(FaultPlan::uniform(1e-3, 7)));
    assert_eq!(a, b, "same (seed, plan) must reproduce bit-identical statistics");
    assert!(a.faults.injected() > 0, "expected injected faults at rate 1e-3: {:?}", a.faults);
    assert_eq!(a.faults.retries_exhausted, 0, "1e-3 must be recoverable: {:?}", a.faults);

    // Recovery conserves work: every reference retires exactly once.
    let clean = run_with(None);
    assert_eq!(clean.total_refs(), a.total_refs(), "faults must not lose or repeat work");

    // A different seed yields a different fault pattern.
    let c = run_with(Some(FaultPlan::uniform(1e-3, 8)));
    assert_ne!(a.faults, c.faults, "fault pattern should vary with the plan seed");
}

#[test]
fn unrecoverable_loss_yields_a_structured_deadlock_diagnosis() {
    // The checker-validation bug: a lazy weak transition counts its write
    // notices but never sends them, so the writer's release fence can
    // never clear. Outside the model checker this must surface as a
    // structured diagnosis, not a hang. The barrier orders P1's read before
    // P0's write, so the write (not the read) triggers the weak transition
    // and its skipped notices.
    let cfg = MachineConfig::paper_default(2);
    let w = Script::new(
        "wedge",
        vec![
            vec![Op::Barrier(0), Op::Acquire(0), Op::Write(0), Op::Release(0)],
            vec![Op::Read(0), Op::Barrier(0)],
        ],
    );
    let diag = Machine::new(cfg, Protocol::Lrc)
        .with_fault(Fault::SkipWriteNotice)
        .with_watchdog(1_000_000)
        .try_run(Box::new(w))
        .expect_err("a lost write notice must wedge a release fence");
    assert_eq!(diag.reason, StallReason::Deadlock, "{diag}");
    assert!(diag.pending_fences >= 1, "{diag}");
    assert!(!diag.stalled.is_empty(), "{diag}");
    assert!(diag.stalled.iter().any(|s| s.status.contains("Releasing")), "{diag}");
    let text = diag.to_string();
    assert!(text.starts_with("deadlock:"), "{text}");
    assert!(text.contains("pending fences: "), "{text}");
}

#[test]
fn stall_horizon_catches_a_wedge_while_others_make_progress() {
    // P0/P1 reproduce the wedged hand-off above; P2 and P3 keep trading a
    // different lock, so the event queue never drains and plain deadlock
    // detection never fires — only the per-processor stall horizon can
    // catch the wedge while the rest of the machine hums along.
    let churn = |steps: usize| -> Vec<Op> {
        let mut ops = Vec::with_capacity(steps * 3 + 1);
        ops.push(Op::Barrier(0));
        for _ in 0..steps {
            ops.push(Op::Acquire(1));
            ops.push(Op::Compute(5));
            ops.push(Op::Release(1));
        }
        ops
    };
    let cfg = MachineConfig::paper_default(4);
    let w = Script::new(
        "wedge-amid-churn",
        vec![
            vec![Op::Barrier(0), Op::Acquire(0), Op::Write(0), Op::Release(0)],
            vec![Op::Read(0), Op::Barrier(0)],
            churn(3000),
            churn(3000),
        ],
    );
    let diag = Machine::new(cfg, Protocol::Lrc)
        .with_fault(Fault::SkipWriteNotice)
        .with_watchdog(50_000)
        .try_run(Box::new(w))
        .expect_err("the stall horizon must catch the wedged fence");
    assert_eq!(diag.reason, StallReason::ProcStallHorizon(50_000), "{diag}");
    assert!(diag.pending_events > 0, "horizon must fire while events were still flowing: {diag}");
    assert!(diag.stalled.iter().any(|s| s.status.contains("Releasing")), "{diag}");
    assert!(diag.to_string().starts_with("watchdog:"), "{diag}");
}

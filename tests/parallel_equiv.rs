//! Parallel-engine equivalence suite: the sharded conservative-PDES engine
//! must produce **bit-identical** results to the sequential kernel — same
//! cycle counts, same per-processor finish times, same traffic and miss
//! totals — for every protocol, at every thread count, under any partition.
//!
//! This is the hard determinism requirement of the parallel engine: a
//! parallel run is a different *schedule* of the same simulated history, not
//! a different simulation. Anything observable diverging means the
//! cross-shard channel layer or the canonical tie-break keying is broken.

use lazy_rc::prelude::*;
use lazy_rc::workloads::Scale;

const PROCS: usize = 16;

/// Condensed result fingerprint: totals plus per-processor detail, so a
/// divergence anywhere in the machine shows up even when aggregate counters
/// happen to collide.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fp {
    total_cycles: u64,
    events: u64,
    finish_times: Vec<u64>,
    refs: u64,
    read_misses: u64,
    write_misses: u64,
    upgrades: u64,
    lock_acquires: u64,
    barriers: u64,
    three_hop: u64,
    control_msgs: u64,
    data_msgs: u64,
    write_data_msgs: u64,
    bytes: u64,
    pp_busy: Vec<u64>,
    mem_busy: Vec<u64>,
    breakdown_totals: Vec<u64>,
}

fn fp(r: &RunResult) -> Fp {
    let s = &r.stats;
    let traffic = s.aggregate_traffic();
    Fp {
        total_cycles: s.total_cycles,
        events: r.events,
        finish_times: s.procs.iter().map(|p| p.finish_time).collect(),
        refs: s.total_refs(),
        read_misses: s.procs.iter().map(|p| p.read_misses).sum(),
        write_misses: s.procs.iter().map(|p| p.write_misses).sum(),
        upgrades: s.procs.iter().map(|p| p.upgrades).sum(),
        lock_acquires: s.procs.iter().map(|p| p.lock_acquires).sum(),
        barriers: s.procs.iter().map(|p| p.barriers).sum(),
        three_hop: s.procs.iter().map(|p| p.three_hop).sum(),
        control_msgs: traffic.control_msgs,
        data_msgs: traffic.data_msgs,
        write_data_msgs: traffic.write_data_msgs,
        bytes: traffic.bytes,
        pp_busy: s.procs.iter().map(|p| p.pp_busy).collect(),
        mem_busy: s.procs.iter().map(|p| p.mem_busy).collect(),
        breakdown_totals: s.procs.iter().map(|p| p.breakdown.total()).collect(),
    }
}

fn build(proto: Protocol) -> Machine {
    Machine::new(MachineConfig::paper_default(PROCS), proto).with_max_cycles(50_000_000_000)
}

fn run_seq(proto: Protocol, kind: WorkloadKind, scale: Scale) -> Fp {
    let r = build(proto).run(kind.build(PROCS, scale));
    fp(&r)
}

fn run_par(proto: Protocol, kind: WorkloadKind, scale: Scale, opts: ParallelOptions) -> Fp {
    let r = try_run_sharded(
        &move || build(proto),
        &move || kind.build(PROCS, scale),
        &opts,
    )
    .expect("sharded run completed");
    fp(&r)
}

fn assert_all_thread_counts_match(scale: Scale) {
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Gauss] {
        for proto in Protocol::ALL {
            let seq = run_seq(proto, kind, scale);
            for threads in [2, 4, 8] {
                let par = run_par(proto, kind, scale, ParallelOptions::threads(threads));
                assert_eq!(
                    par, seq,
                    "{proto}/{kind:?} @ {threads} threads diverged from sequential"
                );
            }
        }
    }
}

/// The tentpole guarantee: all four protocols, at 2/4/8 threads, produce
/// results bit-identical to the sequential kernel.
#[test]
fn sharded_matches_sequential_all_protocols_all_thread_counts() {
    assert_all_thread_counts_match(Scale::Tiny);
}

/// The same matrix at `small` scale — minutes of single-core wall clock, so
/// opt-in: `cargo test --release --test parallel_equiv -- --ignored`.
#[test]
#[ignore = "minutes-long: run with --release -- --ignored"]
fn sharded_matches_sequential_small_scale() {
    assert_all_thread_counts_match(Scale::Small);
}

/// Shard-boundary stress: the strided partition places neighboring node ids
/// on different shards, so essentially every coherence interaction crosses
/// a shard boundary. Results must still be bit-identical.
#[test]
fn adversarial_strided_partition_matches_sequential() {
    for proto in Protocol::ALL {
        let seq = run_seq(proto, WorkloadKind::Mp3d, Scale::Tiny);
        for threads in [2, 4, 8] {
            let opts = ParallelOptions { threads, partition: Partition::Strided };
            let par = run_par(proto, WorkloadKind::Mp3d, Scale::Tiny, opts);
            assert_eq!(
                par, seq,
                "{proto} strided @ {threads} threads diverged from sequential"
            );
        }
    }
}

/// An active fault plan makes a configuration shard-ineligible (link-layer
/// retransmission state is cross-node): `try_run_sharded` must fall back to
/// the sequential kernel and still return its exact results.
#[test]
fn fault_plans_fall_back_to_sequential_and_match() {
    let plan = || FaultPlan::uniform(0.005, 0xFEED);
    for proto in Protocol::ALL {
        let seq = {
            let r = build(proto)
                .with_fault_plan(plan())
                .run(WorkloadKind::Mp3d.build(PROCS, Scale::Tiny));
            fp(&r)
        };
        for threads in [2, 4, 8] {
            let r = try_run_sharded(
                &move || build(proto).with_fault_plan(plan()),
                &move || WorkloadKind::Mp3d.build(PROCS, Scale::Tiny),
                &ParallelOptions::threads(threads),
            )
            .expect("fault-plan run completed");
            assert_eq!(
                fp(&r),
                seq,
                "{proto} fault-plan fallback @ {threads} threads diverged"
            );
        }
    }
}

/// A wedged shard must be diagnosed, not spun on forever: one processor
/// blocks on a lock that is never released while the rest keep computing.
/// The watchdog trips on the shard that owns the wedged node; the merged
/// diagnosis names the processor and carries every shard's clock.
#[test]
fn wedged_shard_is_diagnosed_with_shard_clocks() {
    let procs = 8;
    let make_script = move || {
        let mut streams = vec![
            // P0 wedges: the lock is acquired by P1 and never released.
            vec![Op::Compute(200), Op::Acquire(0)],
            vec![Op::Acquire(0), Op::Compute(50)],
        ];
        for _ in 2..procs {
            // The rest keep simulated time advancing well past the horizon.
            streams.push(vec![Op::Compute(2000); 64]);
        }
        Box::new(Script::new("wedge", streams)) as _
    };
    let threads = 4;
    let err = try_run_sharded(
        &move || {
            Machine::new(MachineConfig::paper_default(procs), Protocol::Sc)
                .with_watchdog(5_000)
                .with_max_cycles(50_000_000_000)
        },
        &make_script,
        &ParallelOptions::threads(threads),
    )
    .expect_err("the wedged processor must trip the watchdog");
    assert!(
        matches!(err.reason, StallReason::ProcStallHorizon(_)),
        "expected a stall-horizon diagnosis, got: {}",
        err.reason
    );
    assert!(
        err.stalled.iter().any(|s| s.proc == 0),
        "diagnosis must name the wedged processor: {err}"
    );
    assert_eq!(
        err.shard_clocks.len(),
        threads,
        "sharded diagnosis carries one clock per shard: {err}"
    );
}

//! The observability layer's end-to-end guarantees:
//!
//! 1. **Zero perturbation** — a fully instrumented run produces the same
//!    protocol statistics (modulo the latency histograms the instruments
//!    add) as the same run with observability off: observers never change
//!    what they observe.
//! 2. **Sampler determinism** — the metrics time series is a pure function
//!    of (config, workload, seed): two runs produce bit-identical series,
//!    including under an active fault plan.
//! 3. **Latency histograms** — an instrumented run folds non-empty
//!    round-trip/lock/barrier histograms into `MachineStats::latencies`,
//!    and they survive a JSON round-trip.
//! 4. **Flight recorder** — a crafted stall yields a `StallDiagnosis`
//!    whose `recent_events` tail is non-empty and renders into the report.

use lazy_rc::prelude::*;
use lazy_rc::sim::{FxHashMap, Op, Script};
use lazy_rc::trace::TimeSeries;
use lazy_rc::workloads::{Scale, WorkloadKind};

const PROCS: usize = 8;

fn workload() -> Box<dyn lazy_rc::sim::Workload> {
    WorkloadKind::Mp3d.build(PROCS, Scale::Tiny)
}

fn instrumented(protocol: Protocol) -> Machine {
    Machine::new(MachineConfig::paper_default(PROCS), protocol)
        .with_trace_filter(TraceFilter::all(), 1 << 16)
        .with_latency_histograms()
        .with_sampler(5_000)
        .with_flight_recorder(32)
}

#[test]
fn instrumentation_does_not_perturb_the_simulation() {
    for proto in Protocol::ALL {
        let plain = Machine::new(MachineConfig::paper_default(PROCS), proto).run(workload());
        let traced = instrumented(proto).run(workload());
        // The instrumented run adds latency histograms; everything else —
        // cycles, per-proc stats, traffic, resources — must be identical.
        let mut a = plain.stats.clone();
        let mut b = traced.stats.clone();
        assert!(a.latencies.is_empty(), "uninstrumented run grew histograms");
        assert!(!b.latencies.is_empty(), "instrumented run lost its histograms");
        a.latencies = Default::default();
        b.latencies = Default::default();
        assert_eq!(a, b, "{proto}: observability changed the simulation");
    }
}

fn series_of(m: Machine) -> TimeSeries {
    let (_, m) = m.run_keep(workload());
    m.time_series().expect("sampler was configured").clone()
}

#[test]
fn sampler_series_is_deterministic() {
    let a = series_of(instrumented(Protocol::Lrc));
    let b = series_of(instrumented(Protocol::Lrc));
    assert!(a.len() > 1, "expected a multi-row series, got {} rows", a.len());
    assert_eq!(a.columns(), b.columns());
    assert_eq!(a.rows(), b.rows(), "same seed and config must sample identically");
}

#[test]
fn sampler_series_is_deterministic_under_faults() {
    let build = || {
        Machine::new(MachineConfig::paper_default(PROCS), Protocol::Lrc)
            .with_fault_plan(FaultPlan::uniform(1e-3, 7))
            .with_sampler(5_000)
    };
    let a = series_of(build());
    let b = series_of(build());
    assert!(a.len() > 1);
    assert_eq!(a.rows(), b.rows(), "fault plans must not break sampler determinism");
}

#[test]
fn latency_histograms_populate_and_roundtrip() {
    use lrc_json::{FromJson, ToJson};
    // Lock-protected shared counters plus a barrier: every probe family
    // (read/write round-trips, lock wait/hold, barrier wait) must fire.
    let cs = |lock: u32, addr: u64| {
        vec![Op::Acquire(lock), Op::Read(addr), Op::Write(addr), Op::Release(lock)]
    };
    let mut streams = Vec::new();
    for p in 0..PROCS {
        let mut ops = Vec::new();
        for i in 0..8u64 {
            ops.extend(cs(((p as u64 + i) % 4) as u32, 128 * ((p as u64 + i) % 4)));
            ops.push(Op::Compute(50));
        }
        ops.push(Op::Barrier(0));
        streams.push(ops);
    }
    let result = instrumented(Protocol::Lrc)
        .run(Box::new(Script::new("locked-counters", streams)));
    let lat = &result.stats.latencies;
    for name in ["rt.read", "rt.write", "lock.wait", "lock.hold", "barrier.wait"] {
        let h = lat.get(name).unwrap_or_else(|| panic!("missing histogram {name:?}"));
        assert!(h.count > 0, "{name} is empty");
        assert!(h.max >= h.percentile(50.0) || h.count == 0, "{name} percentiles inverted");
    }
    let back = lazy_rc::sim::MachineStats::from_json(&result.stats.to_json())
        .expect("stats JSON round-trips");
    assert_eq!(&back.latencies, lat);
}

#[test]
fn sampler_gauges_track_the_run() {
    let (result, m) = instrumented(Protocol::Lrc).run_keep(workload());
    let s = m.time_series().unwrap();
    let cols = s.columns();
    assert_eq!(cols[0], "cycle");
    let last = s.rows().last().expect("non-empty series");
    // Samples stop once the run drains: the last tick is within one
    // interval of the finish line.
    assert!(last[0] <= result.stats.total_cycles + 5_000, "{last:?}");
    // Cycle column is strictly increasing by the interval.
    for w in s.rows().windows(2) {
        assert_eq!(w[1][0] - w[0][0], 5_000);
    }
    // Per-proc breakdown deltas must sum (over time) to the final
    // breakdown totals for every processor.
    for p in 0..PROCS {
        let col = |g: &str| {
            let name = format!("p{p}.{g}");
            cols.iter().position(|c| *c == name).unwrap_or_else(|| panic!("no column {name}"))
        };
        let sampled: u64 = s.rows().iter().map(|r| r[col("d_cpu")]).sum();
        let actual = result.stats.procs[p].breakdown.cpu;
        assert!(
            sampled <= actual,
            "P{p}: sampled cpu deltas ({sampled}) exceed the final total ({actual})"
        );
    }
}

#[test]
fn crafted_stall_dumps_the_flight_recorder() {
    // Two processors deadlock by construction: P0 takes lock 0 then wants
    // lock 1; P1 takes lock 1 then wants lock 0. Computes separate the
    // acquires so both inner requests are in flight before either release.
    let w = Script::new(
        "abba",
        vec![
            vec![Op::Acquire(0), Op::Compute(5_000), Op::Acquire(1), Op::Release(1), Op::Release(0)],
            vec![Op::Acquire(1), Op::Compute(5_000), Op::Acquire(0), Op::Release(0), Op::Release(1)],
        ],
    );
    let diag = Machine::new(MachineConfig::paper_default(2), Protocol::Lrc)
        .with_watchdog(200_000)
        .with_max_cycles(10_000_000)
        .try_run(Box::new(w))
        .expect_err("ABBA locking must wedge");
    assert!(!diag.recent_events.is_empty(), "no flight-recorder tail: {diag}");
    let text = diag.to_string();
    assert!(text.contains("events before the stall"), "{text}");
    // The tail is real trace content: it names at least one lock message.
    assert!(
        diag.recent_events.iter().any(|l| l.contains("Lock")),
        "tail has no lock traffic: {:#?}",
        diag.recent_events
    );
}

#[test]
fn trace_export_is_perfetto_loadable() {
    use lazy_rc::trace::export::{chrome_trace, validate_chrome_trace};
    let (_, m) = instrumented(Protocol::Lrc).run_keep(workload());
    let records = m.trace_records();
    assert!(!records.is_empty());
    let chrome = chrome_trace(&records);
    validate_chrome_trace(&chrome).expect("well-formed chrome trace");
    // Every node got a named track, and flow arrows pair up s/f.
    let events = chrome["traceEvents"].as_array().expect("traceEvents array");
    let phases: FxHashMap<&str, usize> =
        events.iter().fold(FxHashMap::default(), |mut acc, e| {
            if let Some(ph) = e["ph"].as_str() {
                *acc.entry(match ph {
                    "M" => "M",
                    "X" => "X",
                    "s" => "s",
                    "f" => "f",
                    _ => "i",
                })
                .or_insert(0) += 1;
            }
            acc
        });
    assert_eq!(phases.get("M"), Some(&PROCS), "one metadata record per node");
    assert!(phases.get("X").copied().unwrap_or(0) > 0, "no slices: {phases:?}");
    assert_eq!(phases.get("s"), phases.get("f"), "unbalanced flow arrows: {phases:?}");
}

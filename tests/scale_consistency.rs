//! Cross-scale sanity: workloads grow monotonically with the input scale
//! and keep the structural profiles the paper's Table 2 depends on.

use lazy_rc::prelude::*;
use lazy_rc::workloads::{validate, Scale, WorkloadKind};

#[test]
fn bigger_scales_mean_more_work() {
    for kind in WorkloadKind::ALL {
        let mut tiny = kind.build(4, Scale::Tiny);
        let mut small = kind.build(4, Scale::Small);
        let st = validate(tiny.as_mut()).unwrap();
        let ss = validate(small.as_mut()).unwrap();
        assert!(
            ss.refs > st.refs,
            "{kind}: small ({}) must exceed tiny ({})",
            ss.refs,
            st.refs
        );
        assert!(ss.total_ops > st.total_ops, "{kind}");
    }
}

#[test]
fn work_is_roughly_balanced_across_processors() {
    for kind in WorkloadKind::ALL {
        let mut w = kind.build(8, Scale::Small);
        let s = validate(w.as_mut()).unwrap();
        let (min, max) = (
            *s.per_proc_ops.iter().min().unwrap(),
            *s.per_proc_ops.iter().max().unwrap(),
        );
        // The paper chose inputs that "provided good load-balancing".
        assert!(
            (max as f64) / (min.max(1) as f64) < 3.0,
            "{kind}: imbalance {min}..{max}"
        );
    }
}

#[test]
fn sharing_structure_matches_table2_profile() {
    // Under ERC with classification at tiny scale: the false-sharing apps
    // must show false sharing, and the no-sharing apps must show none.
    let classify = |kind: WorkloadKind| -> (f64, f64) {
        let cfg = MachineConfig::paper_default(8);
        let r = Machine::new(cfg, Protocol::Erc)
            .with_classification()
            .with_max_cycles(5_000_000_000)
            .run(kind.build(8, Scale::Tiny));
        let m = r.stats.aggregate_misses();
        (
            m.percent(lazy_rc::sim::MissClass::FalseShare),
            m.percent(lazy_rc::sim::MissClass::TrueShare),
        )
    };
    let (fft_false, _) = classify(WorkloadKind::Fft);
    assert!(fft_false < 1.0, "fft must have ~no false sharing: {fft_false}");
    let (gauss_false, _) = classify(WorkloadKind::Gauss);
    assert!(gauss_false < 1.0, "gauss must have ~no false sharing: {gauss_false}");
    let (mp3d_false, mp3d_true) = classify(WorkloadKind::Mp3d);
    assert!(
        mp3d_false > 3.0,
        "mp3d is the false-sharing app: {mp3d_false}"
    );
    assert!(mp3d_true > 1.0, "mp3d also truly shares: {mp3d_true}");
    let (locus_false, _) = classify(WorkloadKind::Locusroute);
    // Only 64 wires at tiny scale: overlap is sparse but must be present
    // (it grows to ~9% at paper scale — see EXPERIMENTS.md Table 2).
    assert!(locus_false > 1.0, "locusroute false-shares its grid: {locus_false}");
}

#[test]
fn barrier_apps_scale_their_rounds_with_input() {
    use lazy_rc::workloads::{blu, gauss};
    let mut gt = gauss::build(4, Scale::Tiny);
    let mut gs = gauss::build(4, Scale::Small);
    assert!(
        validate(&mut gs).unwrap().barrier_rounds > validate(&mut gt).unwrap().barrier_rounds,
        "gauss barriers grow with n"
    );
    let mut bt = blu::build(4, Scale::Tiny);
    let mut bs = blu::build(4, Scale::Small);
    assert!(
        validate(&mut bs).unwrap().barrier_rounds > validate(&mut bt).unwrap().barrier_rounds
    );
}

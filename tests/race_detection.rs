//! End-to-end tests for the online happens-before race detector.
//!
//! Three claims, checked against the real machine (not detector unit
//! tests):
//!
//! 1. **No false positives**: the five data-race-free applications of the
//!    suite (barnes, blu, cholesky, fft, gauss) come back clean under all
//!    four protocols. mp3d and locusroute are *deliberately* racy — the
//!    paper singles them out as the programs that violate the
//!    release-consistency model — so they serve as organic positive
//!    controls and must be flagged, deterministically.
//! 2. **No false negatives**: the planted `racy` micro workload is flagged
//!    under every protocol, on exactly the two planted words, with the
//!    right access kinds.
//! 3. **Zero cost when off**: a detection-on run perturbs nothing — every
//!    non-race statistic is bit-identical to the detection-off run — and
//!    race reports themselves are bit-identical across reruns, including
//!    under a fault plan.

use lazy_rc::prelude::*;
use lazy_rc::workloads::{racy, Scale};

const PROCS: usize = 4;

fn run_with_detector(proto: Protocol, w: Box<dyn Workload>) -> RunResult {
    let cfg = MachineConfig::paper_default(PROCS);
    Machine::new(cfg, proto).with_race_detection().run(w)
}

/// The five applications whose synchronization fully orders their sharing.
const DRF_APPS: [WorkloadKind; 5] = [
    WorkloadKind::Barnes,
    WorkloadKind::Blu,
    WorkloadKind::Cholesky,
    WorkloadKind::Fft,
    WorkloadKind::Gauss,
];

#[test]
fn drf_applications_are_race_free_under_all_protocols() {
    for proto in Protocol::ALL {
        for kind in DRF_APPS {
            let r = run_with_detector(proto, kind.build(PROCS, Scale::Tiny));
            assert!(
                r.stats.races.race_free(),
                "{proto}/{kind}: false positive — {} race(s), first: {}",
                r.stats.races.races_found,
                r.stats.races.reports.first().map_or(String::new(), |rep| rep.render()),
            );
            assert!(r.stats.races.words_monitored > 0, "{proto}/{kind}: detector saw no words");
        }
    }
}

#[test]
fn deliberately_racy_applications_are_flagged() {
    // mp3d's unsynchronized cell updates and locusroute's unsynchronized
    // cost-grid updates are the races the paper describes; the detector
    // must find them (and find the same set every run — covered below).
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Locusroute] {
        let r = run_with_detector(Protocol::Lrc, kind.build(PROCS, Scale::Tiny));
        assert!(
            r.stats.races.races_found > 0,
            "{kind}: known-racy application came back clean"
        );
        assert!(!r.stats.races.reports.is_empty(), "{kind}: races counted but not reported");
    }
}

#[test]
fn positive_control_is_flagged_under_every_protocol() {
    for proto in Protocol::ALL {
        let r = run_with_detector(proto, Box::new(racy::build(PROCS, 3)));
        let races = &r.stats.races;
        assert_eq!(
            races.races_found, 2,
            "{proto}: expected exactly the two planted racy words, got {}",
            races.races_found
        );
        let ww = races
            .reports
            .iter()
            .find(|rep| rep.addr == racy::WW_ADDR)
            .unwrap_or_else(|| panic!("{proto}: write/write race on {:#x} not reported", racy::WW_ADDR));
        assert!(
            ww.prior.write && ww.current.write,
            "{proto}: planted write/write race misclassified: {}",
            ww.render()
        );
        let wr = races
            .reports
            .iter()
            .find(|rep| rep.addr == racy::WR_ADDR)
            .unwrap_or_else(|| panic!("{proto}: write/read race on {:#x} not reported", racy::WR_ADDR));
        assert!(
            wr.prior.write != wr.current.write,
            "{proto}: planted write/read race misclassified: {}",
            wr.render()
        );
        // The synchronized words (lock-protected counter, barrier-separated
        // broadcast buffer, private scratch) must not be reported.
        for rep in &races.reports {
            assert!(
                rep.addr == racy::WW_ADDR || rep.addr == racy::WR_ADDR,
                "{proto}: false positive on clean word: {}",
                rep.render()
            );
        }
    }
}

#[test]
fn detection_off_is_bit_identical_and_detection_on_is_pure() {
    let cfg = MachineConfig::paper_default(PROCS);
    let build = || WorkloadKind::Fft.build(PROCS, Scale::Tiny);

    let off = Machine::new(cfg.clone(), Protocol::Lrc).run(build());
    let on = Machine::new(cfg, Protocol::Lrc).with_race_detection().run(build());

    // Detection off: the stats carry an all-zero RaceStats.
    assert!(off.stats.races.is_zero(), "detection-off run recorded race activity");

    // Detection on: the detector observes, never perturbs — every other
    // statistic matches the detection-off run exactly.
    let mut scrubbed = on.stats.clone();
    scrubbed.races = RaceStats::default();
    assert_eq!(
        scrubbed, off.stats,
        "race detection perturbed simulation results — the hook must be observation-only"
    );
    assert!(on.stats.races.words_monitored > 0);
}

#[test]
fn race_reports_are_deterministic_across_reruns() {
    let run_once = || {
        let cfg = MachineConfig::paper_default(PROCS);
        Machine::new(cfg, Protocol::LrcExt)
            .with_race_detection()
            .run(Box::new(racy::build(PROCS, 3)))
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.stats, b.stats, "rerun diverged (race reports included in MachineStats)");
    assert_eq!(a.stats.races.reports.len(), b.stats.races.reports.len());
}

#[test]
fn race_reports_are_deterministic_under_fault_plans() {
    let run_once = || {
        let cfg = MachineConfig::paper_default(PROCS);
        let plan = FaultPlan::uniform(0.01, 0xFEED);
        Machine::new(cfg, Protocol::Lrc)
            .with_fault_plan(plan)
            .with_race_detection()
            .run(Box::new(racy::build(PROCS, 3)))
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.stats, b.stats, "faulted rerun diverged");
    assert_eq!(a.stats.races.races_found, 2, "fault recovery must not mask the planted races");
}

#[test]
fn epoch_fast_path_carries_the_common_case() {
    // Private scratch traffic and repeated same-proc access dominate; the
    // adaptive representation must keep the vast majority of checks on the
    // O(1) epoch path.
    let r = run_with_detector(Protocol::Lrc, WorkloadKind::Fft.build(PROCS, Scale::Tiny));
    let races = &r.stats.races;
    assert!(
        races.epoch_fast_hits > races.vector_promotions * 10,
        "fast path not dominant: {} fast hits vs {} promotions",
        races.epoch_fast_hits,
        races.vector_promotions
    );
}

//! Microbenchmark × protocol matrix: each micro isolates one sharing
//! pattern, and the protocols must respond the way the paper's analysis
//! predicts.

use lazy_rc::prelude::*;
use lazy_rc::workloads::micro;

fn run(proto: Protocol, w: lazy_rc::workloads::Streams, procs: usize) -> MachineStats {
    let cfg = MachineConfig::paper_default(procs);
    Machine::new(cfg, proto)
        .with_max_cycles(2_000_000_000)
        .with_invariant_checks(128)
        .run(Box::new(w))
        .stats
}

#[test]
fn private_only_separates_sc_from_relaxed_only() {
    // The control: with no sharing at all, the three relaxed protocols must
    // be close (the lazy ones pay a modest write-through tax on cold lines),
    // and SC — which stalls on every cold write — must be clearly slowest.
    let cycles: Vec<u64> = Protocol::ALL
        .iter()
        .map(|&p| run(p, micro::private_only(8, 300), 8).total_cycles)
        .collect();
    let (sc, relaxed) = (cycles[0], &cycles[1..]);
    let (rmin, rmax) = (
        *relaxed.iter().min().unwrap(),
        *relaxed.iter().max().unwrap(),
    );
    assert!(
        (rmax as f64) / (rmin as f64) < 1.25,
        "relaxed protocols near-tie on private data: {cycles:?}"
    );
    assert!(sc > rmax, "SC must be slowest on private writes: {cycles:?}");
}

#[test]
fn false_sharing_micro_strongly_favors_lazy() {
    let eager = run(Protocol::Erc, micro::false_sharing(8, 200, 400), 8);
    let lazy = run(Protocol::Lrc, micro::false_sharing(8, 200, 400), 8);
    assert!(
        lazy.total_cycles * 10 < eager.total_cycles * 9,
        "lazy {} vs eager {}",
        lazy.total_cycles,
        eager.total_cycles
    );
    assert!(lazy.total_miss_count() * 4 < eager.total_miss_count());
}

#[test]
fn migratory_micro_avoids_three_hops_under_lazy() {
    let eager = run(Protocol::Erc, micro::migratory(8, 20, 8), 8);
    let lazy = run(Protocol::Lrc, micro::migratory(8, 20, 8), 8);
    let eager_3hop: u64 = eager.procs.iter().map(|p| p.three_hop).sum();
    let lazy_3hop: u64 = lazy.procs.iter().map(|p| p.three_hop).sum();
    assert!(eager_3hop > 0, "migratory data must forward under eager RC");
    assert_eq!(lazy_3hop, 0);
}

#[test]
fn broadcast_micro_runs_everywhere() {
    for proto in Protocol::ALL {
        let s = run(proto, micro::broadcast(8, 4, 8), 8);
        for ps in &s.procs {
            assert_eq!(ps.barriers, 8, "{proto}: 2 barriers x 4 rounds");
            assert_eq!(ps.breakdown.total(), ps.finish_time, "{proto}");
        }
    }
}

#[test]
fn scatter_micro_reduces_misses_under_lazy() {
    // Unsynchronized scatter over a small table: the racy mp3d pattern.
    let eager = run(Protocol::Erc, micro::scatter(8, 400, 6, 11), 8);
    let lazy = run(Protocol::Lrc, micro::scatter(8, 400, 6, 11), 8);
    assert!(
        lazy.total_miss_count() < eager.total_miss_count(),
        "lazy {} vs eager {}",
        lazy.total_miss_count(),
        eager.total_miss_count()
    );
}

#[test]
fn micros_are_deterministic_with_checks_on() {
    for proto in [Protocol::Erc, Protocol::Lrc] {
        let a = run(proto, micro::scatter(4, 100, 4, 3), 4);
        let b = run(proto, micro::scatter(4, 100, 4, 3), 4);
        assert_eq!(a.total_cycles, b.total_cycles, "{proto}");
    }
}

//! Cross-crate integration: every application of the suite runs to
//! completion under every protocol, with coherent accounting.

use lazy_rc::prelude::*;
use lazy_rc::workloads::{Scale, WorkloadKind};

const PROCS: usize = 8;

fn run(proto: Protocol, kind: WorkloadKind) -> lazy_rc::core::RunResult {
    let cfg = MachineConfig::paper_default(PROCS);
    Machine::new(cfg, proto)
        .with_max_cycles(5_000_000_000)
        .run(kind.build(PROCS, Scale::Tiny))
}

#[test]
fn every_workload_completes_under_every_protocol() {
    for kind in WorkloadKind::ALL {
        for proto in Protocol::ALL {
            let r = run(proto, kind);
            assert!(r.stats.total_cycles > 0, "{kind}/{proto}");
            assert_eq!(r.workload, kind.name());
            assert_eq!(r.protocol, proto);
        }
    }
}

#[test]
fn breakdown_accounts_every_cycle_for_every_combination() {
    for kind in WorkloadKind::ALL {
        for proto in Protocol::ALL {
            let r = run(proto, kind);
            for (i, ps) in r.stats.procs.iter().enumerate() {
                assert_eq!(
                    ps.breakdown.total(),
                    ps.finish_time,
                    "{kind}/{proto} proc {i}: {:?} vs finish {}",
                    ps.breakdown,
                    ps.finish_time
                );
            }
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Cholesky, WorkloadKind::Barnes] {
        for proto in Protocol::ALL {
            let a = run(proto, kind);
            let b = run(proto, kind);
            assert_eq!(a.stats.total_cycles, b.stats.total_cycles, "{kind}/{proto}");
            assert_eq!(a.stats.total_refs(), b.stats.total_refs(), "{kind}/{proto}");
            assert_eq!(
                a.stats.aggregate_traffic(),
                b.stats.aggregate_traffic(),
                "{kind}/{proto}"
            );
        }
    }
}

#[test]
fn refs_are_protocol_independent() {
    // The front end is trace-driven: every protocol must observe exactly
    // the same reference stream.
    for kind in WorkloadKind::ALL {
        let refs: Vec<u64> = Protocol::ALL
            .iter()
            .map(|&p| run(p, kind).stats.total_refs())
            .collect();
        assert!(
            refs.windows(2).all(|w| w[0] == w[1]),
            "{kind}: refs differ across protocols: {refs:?}"
        );
    }
}

#[test]
fn classification_partitions_all_misses() {
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Gauss] {
        let cfg = MachineConfig::paper_default(PROCS);
        let r = Machine::new(cfg, Protocol::Erc)
            .with_classification()
            .with_max_cycles(5_000_000_000)
            .run(kind.build(PROCS, Scale::Tiny));
        let classified = r.stats.aggregate_misses().total();
        let counted = r.stats.total_miss_count();
        assert_eq!(classified, counted, "{kind}: every miss classified exactly once");
    }
}

#[test]
fn lazy_never_uses_three_hop_transactions() {
    for kind in WorkloadKind::ALL {
        for proto in [Protocol::Lrc, Protocol::LrcExt] {
            let r = run(proto, kind);
            let th: u64 = r.stats.procs.iter().map(|p| p.three_hop).sum();
            assert_eq!(th, 0, "{kind}/{proto}: lazy reads are never forwarded");
        }
    }
}

#[test]
fn eager_never_receives_write_notices() {
    for kind in WorkloadKind::ALL {
        for proto in [Protocol::Sc, Protocol::Erc] {
            let r = run(proto, kind);
            let n: u64 = r.stats.procs.iter().map(|p| p.notices_received).sum();
            let a: u64 = r.stats.procs.iter().map(|p| p.acquire_invalidations).sum();
            assert_eq!(n + a, 0, "{kind}/{proto}");
        }
    }
}

#[test]
fn sc_stalls_instead_of_buffering() {
    // Under SC the write buffer is never used, so eager invalidation plus
    // blocking-write stalls carry all write cost.
    let r = run(Protocol::Sc, WorkloadKind::Mp3d);
    let write_stall: u64 = r.stats.procs.iter().map(|p| p.breakdown.write).sum();
    assert!(write_stall > 0, "SC must stall on write misses");
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the facade exposes the full stack.
    let _mesh = lazy_rc::mesh::Mesh::new(16);
    let cfg = MachineConfig::paper_default(2);
    let _cache = lazy_rc::mem::Cache::new(&cfg);
    let mut classifier = lazy_rc::classify::Classifier::new(2, 32);
    let _ = classifier.classify_miss(0, lazy_rc::sim::LineAddr(1), 0, false);
    let _entry = lazy_rc::core::DirEntry::new();
}

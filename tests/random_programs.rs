//! Property tests: randomly generated (but well-formed) parallel programs
//! must run to completion under every protocol with coherent accounting —
//! the machine's liveness and accounting invariants hold for arbitrary
//! data-race-free and racy access patterns alike. Random programs are
//! generated with the crate's own deterministic PRNG (the workspace
//! builds offline, so no external property-testing framework is used).

use lazy_rc::prelude::*;
use lrc_sim::Rng;

/// One randomly chosen program action, expanded into ops per processor.
#[derive(Debug, Clone)]
enum Action {
    Compute(u8),
    Read(u8),
    Write(u8),
    Critical { lock: u8, line: u8, len: u8 },
    Barrier,
}

fn random_action(rng: &mut Rng) -> Action {
    match rng.below(5) {
        0 => Action::Compute(1 + rng.below(39) as u8),
        1 => Action::Read(rng.below(256) as u8),
        2 => Action::Write(rng.below(256) as u8),
        3 => Action::Critical {
            lock: rng.below(8) as u8,
            line: rng.below(256) as u8,
            len: 1 + rng.below(4) as u8,
        },
        _ => Action::Barrier,
    }
}

fn random_program(rng: &mut Rng, procs: usize, max_len: u64) -> Vec<Vec<Action>> {
    (0..procs)
        .map(|_| {
            let n = rng.below(max_len) as usize;
            (0..n).map(|_| random_action(rng)).collect()
        })
        .collect()
}

/// Expand per-proc action lists into op streams; barriers are made global
/// (every processor gets one per barrier "round" so the machine never
/// deadlocks waiting for a missing arrival).
fn build_script(per_proc: Vec<Vec<Action>>, procs: usize) -> Script {
    let rounds = per_proc
        .iter()
        .map(|acts| acts.iter().filter(|a| matches!(a, Action::Barrier)).count())
        .max()
        .unwrap_or(0);
    let mut streams: Vec<Vec<Op>> = Vec::with_capacity(procs);
    for p in 0..procs {
        let mut ops = Vec::new();
        let mut my_rounds = 0;
        if let Some(acts) = per_proc.get(p) {
            for a in acts {
                match *a {
                    Action::Compute(c) => ops.push(Op::Compute(u32::from(c))),
                    Action::Read(l) => ops.push(Op::Read(u64::from(l) * 32)),
                    Action::Write(l) => ops.push(Op::Write(u64::from(l) * 32)),
                    Action::Critical { lock, line, len } => {
                        ops.push(Op::Acquire(u32::from(lock)));
                        for k in 0..len {
                            let a = u64::from(line) * 32 + u64::from(k) * 4;
                            ops.push(Op::Read(a));
                            ops.push(Op::Write(a));
                        }
                        ops.push(Op::Release(u32::from(lock)));
                    }
                    Action::Barrier => {
                        ops.push(Op::Barrier(0));
                        my_rounds += 1;
                    }
                }
            }
        }
        // Top up so everyone participates in every barrier round.
        for _ in my_rounds..rounds {
            ops.push(Op::Barrier(0));
        }
        streams.push(ops);
    }
    Script::new("random-program", streams)
}

#[test]
fn random_programs_complete_under_all_protocols() {
    let mut rng = Rng::new(0x5eed_000a);
    for _ in 0..24 {
        let per_proc = random_program(&mut rng, 4, 30);
        for proto in Protocol::ALL {
            let script = build_script(per_proc.clone(), 4);
            let cfg = MachineConfig::paper_default(4);
            let r = Machine::new(cfg, proto)
                .with_max_cycles(200_000_000)
                .run(Box::new(script));
            // Liveness: the run finished (Machine panics otherwise).
            // Accounting: every cycle of every processor is attributed.
            for ps in &r.stats.procs {
                assert_eq!(ps.breakdown.total(), ps.finish_time);
                assert_eq!(ps.refs, ps.reads + ps.writes);
                assert!(ps.read_misses <= ps.reads);
            }
        }
    }
}

#[test]
fn random_programs_are_deterministic() {
    let mut rng = Rng::new(0x5eed_000b);
    for _ in 0..8 {
        let per_proc = random_program(&mut rng, 3, 20);
        for proto in [Protocol::Erc, Protocol::Lrc] {
            let run = |pp: &Vec<Vec<Action>>| {
                let cfg = MachineConfig::paper_default(3);
                Machine::new(cfg, proto)
                    .with_max_cycles(200_000_000)
                    .run(Box::new(build_script(pp.clone(), 3)))
                    .stats
            };
            let a = run(&per_proc);
            let b = run(&per_proc);
            assert_eq!(a.total_cycles, b.total_cycles);
            assert_eq!(a.aggregate_traffic(), b.aggregate_traffic());
        }
    }
}

#[test]
fn classified_runs_partition_misses() {
    let mut rng = Rng::new(0x5eed_000c);
    for _ in 0..12 {
        let per_proc = random_program(&mut rng, 3, 20);
        let cfg = MachineConfig::paper_default(3);
        let r = Machine::new(cfg, Protocol::Erc)
            .with_classification()
            .with_max_cycles(200_000_000)
            .run(Box::new(build_script(per_proc, 3)));
        assert_eq!(r.stats.aggregate_misses().total(), r.stats.total_miss_count());
    }
}

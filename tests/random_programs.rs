//! Property tests: randomly generated (but well-formed) parallel programs
//! must run to completion under every protocol with coherent accounting —
//! the machine's liveness and accounting invariants hold for arbitrary
//! data-race-free and racy access patterns alike.

use lazy_rc::prelude::*;
use proptest::prelude::*;

/// One randomly chosen program action, expanded into ops per processor.
#[derive(Debug, Clone)]
enum Action {
    Compute(u8),
    Read(u8),
    Write(u8),
    Critical { lock: u8, line: u8, len: u8 },
    Barrier,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u8..40).prop_map(Action::Compute),
        any::<u8>().prop_map(Action::Read),
        any::<u8>().prop_map(Action::Write),
        (any::<u8>(), any::<u8>(), 1u8..5).prop_map(|(lock, line, len)| Action::Critical {
            lock: lock % 8,
            line,
            len,
        }),
        Just(Action::Barrier),
    ]
}

/// Expand per-proc action lists into op streams; barriers are made global
/// (every processor gets one per barrier "round" so the machine never
/// deadlocks waiting for a missing arrival).
fn build_script(per_proc: Vec<Vec<Action>>, procs: usize) -> Script {
    let rounds = per_proc
        .iter()
        .map(|acts| acts.iter().filter(|a| matches!(a, Action::Barrier)).count())
        .max()
        .unwrap_or(0);
    let mut streams: Vec<Vec<Op>> = Vec::with_capacity(procs);
    for p in 0..procs {
        let mut ops = Vec::new();
        let mut my_rounds = 0;
        if let Some(acts) = per_proc.get(p) {
            for a in acts {
                match *a {
                    Action::Compute(c) => ops.push(Op::Compute(u32::from(c))),
                    Action::Read(l) => ops.push(Op::Read(u64::from(l) * 32)),
                    Action::Write(l) => ops.push(Op::Write(u64::from(l) * 32)),
                    Action::Critical { lock, line, len } => {
                        ops.push(Op::Acquire(u32::from(lock)));
                        for k in 0..len {
                            let a = u64::from(line) * 32 + u64::from(k) * 4;
                            ops.push(Op::Read(a));
                            ops.push(Op::Write(a));
                        }
                        ops.push(Op::Release(u32::from(lock)));
                    }
                    Action::Barrier => {
                        ops.push(Op::Barrier(0));
                        my_rounds += 1;
                    }
                }
            }
        }
        // Top up so everyone participates in every barrier round.
        for _ in my_rounds..rounds {
            ops.push(Op::Barrier(0));
        }
        streams.push(ops);
    }
    Script::new("random-program", streams)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_complete_under_all_protocols(
        per_proc in prop::collection::vec(
            prop::collection::vec(action_strategy(), 0..30),
            4,
        )
    ) {
        for proto in Protocol::ALL {
            let script = build_script(per_proc.clone(), 4);
            let cfg = MachineConfig::paper_default(4);
            let r = Machine::new(cfg, proto)
                .with_max_cycles(200_000_000)
                .run(Box::new(script));
            // Liveness: the run finished (Machine panics otherwise).
            // Accounting: every cycle of every processor is attributed.
            for ps in &r.stats.procs {
                prop_assert_eq!(ps.breakdown.total(), ps.finish_time);
                prop_assert_eq!(ps.refs, ps.reads + ps.writes);
                prop_assert!(ps.read_misses <= ps.reads);
            }
        }
    }

    #[test]
    fn random_programs_are_deterministic(
        per_proc in prop::collection::vec(
            prop::collection::vec(action_strategy(), 0..20),
            3,
        )
    ) {
        for proto in [Protocol::Erc, Protocol::Lrc] {
            let run = |pp: &Vec<Vec<Action>>| {
                let cfg = MachineConfig::paper_default(3);
                Machine::new(cfg, proto)
                    .with_max_cycles(200_000_000)
                    .run(Box::new(build_script(pp.clone(), 3)))
                    .stats
            };
            let a = run(&per_proc);
            let b = run(&per_proc);
            prop_assert_eq!(a.total_cycles, b.total_cycles);
            prop_assert_eq!(a.aggregate_traffic(), b.aggregate_traffic());
        }
    }

    #[test]
    fn classified_runs_partition_misses(
        per_proc in prop::collection::vec(
            prop::collection::vec(action_strategy(), 0..20),
            3,
        )
    ) {
        let cfg = MachineConfig::paper_default(3);
        let r = Machine::new(cfg, Protocol::Erc)
            .with_classification()
            .with_max_cycles(200_000_000)
            .run(Box::new(build_script(per_proc, 3)));
        prop_assert_eq!(
            r.stats.aggregate_misses().total(),
            r.stats.total_miss_count()
        );
    }
}

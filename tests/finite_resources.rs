//! Finite protocol resources: bounded NI queues, BUSY-NACK backpressure,
//! and the write-notice overflow fallback.
//!
//! Four properties are pinned here:
//!
//! 1. **Sufficiency ⇒ bit-identity** — capacities at least as large as the
//!    peaks an unbounded run ever reaches produce *bit-identical* statistics
//!    to the unbounded run, for all four protocols: the limits cost nothing
//!    until they bind.
//! 2. **Pressure ⇒ progress** — capacities well below the observed peaks
//!    still complete every workload (backoff always advances time; the
//!    overflow fallback is a superset of the precise invalidation set),
//!    with the pressure visible in the resource counters and the whole run
//!    reproducible bit-for-bit.
//! 3. **NACK storm ⇒ diagnosis** — a busy episode that never resolves while
//!    a requester burns its whole retry budget surfaces as a structured
//!    [`StallReason::NackStorm`] naming the line, not a generic deadlock.
//! 4. **Queue-full livelock ⇒ diagnosis** — senders stuck backing off
//!    against a full NI queue surface as [`StallReason::NiQueueFull`]
//!    naming the node and occupancy, not an opaque cycle-limit abort.

use lazy_rc::prelude::*;
use lazy_rc::workloads::Scale;

const PROCS: usize = 8;

fn run_with(protocol: Protocol, resources: ResourceLimits) -> RunResult {
    let mut cfg = MachineConfig::paper_default(PROCS);
    cfg.resources = resources;
    Machine::new(cfg, protocol)
        .with_max_cycles(50_000_000_000)
        .run(WorkloadKind::Mp3d.build(PROCS, Scale::Tiny))
}

/// Roomy limits that observe occupancy without ever binding.
fn probe_limits() -> ResourceLimits {
    ResourceLimits {
        ni_ingress: Some(1 << 20),
        ni_egress: Some(1 << 20),
        dir_request_slots: Some(1 << 20),
        write_notice_buffer: Some(1 << 20),
        ..ResourceLimits::unbounded()
    }
}

#[test]
fn sufficient_capacities_are_bit_identical_to_unbounded() {
    for p in Protocol::ALL {
        let unbounded = run_with(p, ResourceLimits::unbounded());
        // Roomy bounds must not perturb anything observable.
        let probe = run_with(p, probe_limits());
        assert_eq!(
            unbounded.stats,
            probe.stats,
            "{}: roomy limits changed the simulation",
            p.name()
        );

        // Exactly-sufficient bounds: capacity = the peak the probe observed.
        let exact = ResourceLimits {
            ni_ingress: Some(probe.ni_peak_ingress.max(1)),
            ni_egress: Some(probe.ni_peak_egress.max(1)),
            dir_request_slots: Some(probe.stats.resources.peak_parked.max(1) as usize),
            write_notice_buffer: Some(probe.stats.resources.peak_pending_invals.max(1) as usize),
            ..ResourceLimits::unbounded()
        };
        let bounded = run_with(p, exact);
        assert_eq!(
            unbounded.stats,
            bounded.stats,
            "{}: sufficient capacities must be bit-identical to unbounded",
            p.name()
        );
        assert!(
            bounded.stats.resources.is_zero(),
            "{}: sufficient capacities must never reject, NACK, or overflow: {:?}",
            p.name(),
            bounded.stats.resources
        );
    }
}

#[test]
fn tight_capacities_complete_under_pressure_and_reproduce() {
    let tight = ResourceLimits {
        ni_ingress: Some(2),
        ni_egress: Some(2),
        dir_request_slots: Some(1),
        write_notice_buffer: Some(1),
        ..ResourceLimits::unbounded()
    };
    let mut pressure = 0u64;
    for p in Protocol::ALL {
        let a = run_with(p, tight);
        let b = run_with(p, tight);
        assert_eq!(
            a.stats,
            b.stats,
            "{}: bounded runs must be bit-identical per config",
            p.name()
        );
        // Degradation never loses or repeats processor-visible work.
        let clean = run_with(p, ResourceLimits::unbounded());
        assert_eq!(
            clean.stats.total_refs(),
            a.stats.total_refs(),
            "{}: backpressure must not lose or repeat references",
            p.name()
        );
        let r = &a.stats.resources;
        pressure += r.ni_rejects + r.busy_nacks + r.wn_overflows;
        if p.is_lazy() {
            assert!(
                r.wn_overflows > 0,
                "{}: a 1-entry write-notice buffer must overflow on mp3d: {r:?}",
                p.name()
            );
            assert!(
                r.overflow_fallbacks > 0 && r.overflow_invalidations > 0,
                "{}: overflows must be repaid at the next acquire: {r:?}",
                p.name()
            );
        }
    }
    assert!(pressure > 0, "tight capacities produced no resource pressure at all");
}

#[test]
fn nack_storm_yields_a_structured_diagnosis() {
    // P0 and P1 share line 0; after the barrier P0's write starts an
    // invalidation round whose Invalidate (the first Notice-class message)
    // is dropped with zero link-layer retries — the ack collection can
    // never complete. P2's late read then finds the entry busy forever:
    // with zero directory request slots it is NACKed until the retry
    // budget is spent, parks as the fallback, and the machine drains. The
    // diagnosis must name the storm, not report a generic deadlock.
    let mut cfg = MachineConfig::paper_default(3);
    cfg.resources.dir_request_slots = Some(0);
    cfg.resources.nack_retry_budget = 3;
    let mut plan = FaultPlan::drop_nth(MsgClass::Notice, 0);
    plan.max_retries = 0;
    let w = Script::new(
        "nack-storm",
        vec![
            vec![Op::Read(0), Op::Barrier(0), Op::Write(0)],
            vec![Op::Read(0), Op::Barrier(0)],
            vec![Op::Barrier(0), Op::Compute(2000), Op::Read(0)],
        ],
    );
    let diag = Machine::new(cfg, Protocol::Erc)
        .with_fault_plan(plan)
        .try_run(Box::new(w))
        .expect_err("an unresolvable busy entry must wedge the late reader");
    assert_eq!(diag.reason, StallReason::NackStorm { line: 0, nacks: 3 }, "{diag}");
    assert!(!diag.stalled.is_empty(), "{diag}");
    let text = diag.to_string();
    assert!(text.contains("BUSY-NACK storm"), "{text}");
    assert!(text.contains("line 0"), "{text}");
    // Finite resources auto-arm the flight recorder: the diagnosis carries
    // the events leading up to the stall.
    assert!(!diag.recent_events.is_empty(), "{diag}");
    assert!(text.contains("events before the stall"), "{text}");
}

#[test]
fn ni_queue_full_yields_a_structured_diagnosis() {
    // Every line is homed at node 0 and its ingress queue holds one
    // message: seven remote readers hammer it, so at any instant most of
    // them sit in NI backoff. The cycle ceiling trips mid-storm and the
    // diagnosis must name the full queue rather than the generic horizon.
    let mut cfg = MachineConfig::paper_default(PROCS);
    cfg.placement = Placement::AllAtZero;
    cfg.resources.ni_ingress = Some(1);
    // A long backoff keeps rejected senders parked in their retry window,
    // so the horizon reliably trips while the backlog is live.
    cfg.resources.nack_backoff_base = 2_000;
    let mut progs: Vec<Vec<Op>> = vec![Vec::new()];
    for p in 1..PROCS {
        progs.push((0..400).map(|i| Op::Read((p * 100_000 + i * 64) as u64)).collect());
    }
    let w = Script::new("many-to-one", progs);
    let diag = Machine::new(cfg, Protocol::Erc)
        .with_max_cycles(30_000)
        .try_run(Box::new(w))
        .expect_err("seven-to-one traffic into a 1-slot queue cannot finish in 30k cycles");
    assert!(
        matches!(diag.reason, StallReason::NiQueueFull { node: 0, occupancy: 1, cap: 1 }),
        "{diag}"
    );
    let text = diag.to_string();
    assert!(text.contains("NI queue full"), "{text}");
    assert!(text.contains("queue-full livelock"), "{text}");
    assert!(!diag.recent_events.is_empty(), "{diag}");
}

//! Page-placement policy tests: round-robin vs first-touch vs all-at-zero.

use lazy_rc::prelude::*;
use lazy_rc::workloads::micro;

fn run_with_placement(placement: Placement, proto: Protocol) -> MachineStats {
    let mut cfg = MachineConfig::paper_default(8);
    cfg.placement = placement;
    Machine::new(cfg, proto)
        .with_max_cycles(2_000_000_000)
        .run(Box::new(micro::private_only(8, 1200)))
        .stats
}

#[test]
fn first_touch_speeds_up_private_data() {
    // Private working sets: first-touch homes every page locally, so cold
    // fills skip the network round trip that round-robin placement pays.
    for proto in [Protocol::Erc, Protocol::Lrc] {
        let rr = run_with_placement(Placement::RoundRobinPages, proto);
        let ft = run_with_placement(Placement::FirstTouch, proto);
        assert!(
            ft.total_cycles < rr.total_cycles,
            "{proto}: first-touch {} vs round-robin {}",
            ft.total_cycles,
            rr.total_cycles
        );
    }
}

#[test]
fn all_at_zero_concentrates_and_slows() {
    let rr = run_with_placement(Placement::RoundRobinPages, Protocol::Erc);
    let zero = run_with_placement(Placement::AllAtZero, Protocol::Erc);
    assert!(
        zero.total_cycles >= rr.total_cycles,
        "single-home placement cannot be faster: {} vs {}",
        zero.total_cycles,
        rr.total_cycles
    );
}

#[test]
fn placement_does_not_change_reference_counts() {
    for placement in [Placement::RoundRobinPages, Placement::FirstTouch, Placement::AllAtZero] {
        let s = run_with_placement(placement, Protocol::Lrc);
        assert_eq!(s.total_refs(), run_with_placement(placement, Protocol::Erc).total_refs());
    }
}

#[test]
fn first_touch_is_deterministic() {
    let a = run_with_placement(Placement::FirstTouch, Protocol::Lrc);
    let b = run_with_placement(Placement::FirstTouch, Protocol::Lrc);
    assert_eq!(a.total_cycles, b.total_cycles);
}

#[test]
fn applications_run_under_first_touch() {
    use lazy_rc::workloads::{Scale, WorkloadKind};
    let mut cfg = MachineConfig::paper_default(8);
    cfg.placement = Placement::FirstTouch;
    for kind in [WorkloadKind::Gauss, WorkloadKind::Mp3d] {
        let r = Machine::new(cfg.clone(), Protocol::Lrc)
            .with_max_cycles(5_000_000_000)
            .with_invariant_checks(256)
            .run(kind.build(8, Scale::Tiny));
        assert!(r.stats.total_cycles > 0, "{kind}");
    }
}

//! Limited-pointer directory tests: overflow broadcasts must preserve
//! coherence while costing extra traffic — the trade the full-map
//! organization of the paper's machines avoids at 64 nodes.

use lazy_rc::prelude::*;
use lazy_rc::workloads::{micro, Scale, WorkloadKind};

fn cfg(pointers: Option<usize>, procs: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_default(procs);
    c.dir_pointers = pointers;
    c
}

fn run(pointers: Option<usize>, proto: Protocol, w: Box<dyn lazy_rc::sim::Workload>, procs: usize) -> MachineStats {
    Machine::new(cfg(pointers, procs), proto)
        .with_max_cycles(5_000_000_000)
        .with_invariant_checks(256)
        .run(w)
        .stats
}

#[test]
fn suite_runs_with_limited_pointers() {
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Gauss] {
        for proto in Protocol::ALL {
            let s = run(Some(2), proto, kind.build(8, Scale::Tiny), 8);
            assert!(s.total_cycles > 0, "{kind}/{proto}");
            for ps in &s.procs {
                assert_eq!(ps.breakdown.total(), ps.finish_time, "{kind}/{proto}");
            }
        }
    }
}

#[test]
fn overflow_broadcasts_cost_extra_invalidations() {
    // Three readers of one line (procs 1–3), four idle bystanders, then a
    // writer: the full map invalidates exactly the three sharers; a
    // 2-pointer directory has overflowed and must broadcast to everyone,
    // spamming the bystanders too.
    let script = || {
        let mut streams: Vec<Vec<Op>> = (0..8).map(|_| vec![]).collect();
        for st in streams.iter_mut().take(4).skip(1) {
            *st = vec![Op::Read(0), Op::Compute(2000)];
        }
        streams[0] = vec![Op::Compute(4000), Op::Write(0), Op::Compute(2000)];
        Script::new("overflow", streams)
    };
    let full = run(None, Protocol::Erc, Box::new(script()), 8);
    let limited = run(Some(2), Protocol::Erc, Box::new(script()), 8);
    let full_invals: u64 = full.procs.iter().map(|p| p.eager_invalidations).sum();
    let limited_ctrl: u64 = limited.procs.iter().map(|p| p.traffic.control_msgs).sum();
    let full_ctrl: u64 = full.procs.iter().map(|p| p.traffic.control_msgs).sum();
    assert!(full_invals >= 1);
    assert!(
        limited_ctrl > full_ctrl,
        "broadcast must cost control traffic: limited {limited_ctrl} vs full {full_ctrl}"
    );
}

#[test]
fn limited_pointers_never_lose_correct_invalidation() {
    // The overflow broadcast must still reach every actual sharer: after
    // the writer's round, no other processor's copy may survive (checked
    // indirectly by the invariant sweep plus re-read misses).
    let script = || {
        let mut streams: Vec<Vec<Op>> = (0..8)
            .map(|_| {
                vec![
                    Op::Read(0),
                    Op::Compute(4000),
                    Op::Read(0), // after the write: must re-miss under ERC
                ]
            })
            .collect();
        streams[0] = vec![Op::Compute(1500), Op::Write(0), Op::Compute(4000)];
        Script::new("overflow2", streams)
    };
    let s = run(Some(1), Protocol::Erc, Box::new(script()), 8);
    for (i, ps) in s.procs.iter().enumerate().skip(1) {
        assert_eq!(ps.read_misses, 2, "P{i} must re-miss after the broadcast");
    }
}

#[test]
fn pointer_count_sweep_is_monotone_in_traffic() {
    let traffic = |ptrs: Option<usize>| -> u64 {
        run(ptrs, Protocol::Lrc, Box::new(micro::scatter(8, 300, 6, 5)), 8)
            .aggregate_traffic()
            .total_msgs()
    };
    let full = traffic(None);
    let p4 = traffic(Some(4));
    let p1 = traffic(Some(1));
    assert!(p4 >= full, "fewer pointers ⇒ no less traffic ({p4} vs {full})");
    assert!(p1 >= p4, "1 pointer ⇒ most traffic ({p1} vs {p4})");
}

#[test]
fn zero_pointers_is_rejected() {
    let mut c = MachineConfig::paper_default(4);
    c.dir_pointers = Some(0);
    assert!(c.validate().is_err());
}

//! Integration tests for the §4.2 remedies: fence insertion on racy
//! programs and the solution-quality functional experiment.

use lazy_rc::prelude::*;
use lazy_rc::workloads::{quality_experiment, Fenced, Scale, WorkloadKind};

fn run(proto: Protocol, w: Box<dyn lazy_rc::sim::Workload>, procs: usize) -> MachineStats {
    Machine::new(MachineConfig::paper_default(procs), proto)
        .with_max_cycles(5_000_000_000)
        .run(w)
        .stats
}

#[test]
fn fences_move_lazy_toward_eager() {
    // Tighter fences = more acquire-like invalidation points = behavior
    // converging on the eager protocol. Execution time must be monotone
    // (within noise) from unfenced-lazy toward eager as fences tighten.
    let procs = 8;
    let unfenced = run(Protocol::Lrc, WorkloadKind::Mp3d.build(procs, Scale::Tiny), procs);
    let loose = run(
        Protocol::Lrc,
        Box::new(Fenced::new(WorkloadKind::Mp3d.build(procs, Scale::Tiny), 500)),
        procs,
    );
    let tight = run(
        Protocol::Lrc,
        Box::new(Fenced::new(WorkloadKind::Mp3d.build(procs, Scale::Tiny), 25)),
        procs,
    );
    assert!(
        tight.total_cycles > unfenced.total_cycles,
        "tight fences must cost time: {} vs {}",
        tight.total_cycles,
        unfenced.total_cycles
    );
    assert!(
        loose.total_cycles <= tight.total_cycles,
        "loose fences cost less than tight ones: {} vs {}",
        loose.total_cycles,
        tight.total_cycles
    );
    // Fences bound staleness: misses go up as copies die sooner.
    assert!(tight.total_miss_count() >= unfenced.total_miss_count());
}

#[test]
fn fenced_workload_preserves_reference_stream() {
    let procs = 4;
    let plain = run(Protocol::Lrc, WorkloadKind::Gauss.build(procs, Scale::Tiny), procs);
    let fenced = run(
        Protocol::Lrc,
        Box::new(Fenced::new(WorkloadKind::Gauss.build(procs, Scale::Tiny), 100)),
        procs,
    );
    assert_eq!(plain.total_refs(), fenced.total_refs(), "fences add no refs");
}

#[test]
fn fences_are_noops_for_eager_protocols() {
    let procs = 4;
    let plain = run(Protocol::Erc, WorkloadKind::Mp3d.build(procs, Scale::Tiny), procs);
    let fenced = run(
        Protocol::Erc,
        Box::new(Fenced::new(WorkloadKind::Mp3d.build(procs, Scale::Tiny), 50)),
        procs,
    );
    // Eager protocols have nothing pending at a fence; identical timing.
    assert_eq!(plain.total_cycles, fenced.total_cycles);
}

#[test]
fn quality_pattern_matches_paper() {
    // Paper: X off by percents, Y/Z under a tenth of a percent.
    let q = quality_experiment(40000, 10, 64);
    assert!(
        q.divergence_pct[0] > 0.5 && q.divergence_pct[0] < 10.0,
        "streamwise divergence in the paper's band: {:?}",
        q.divergence_pct
    );
    assert!(q.divergence_pct[1] < 0.5);
    assert!(q.divergence_pct[2] < 0.5);
    // The delayed-visibility run keeps more drift (fewer observed
    // collisions), so its X total exceeds SC's.
    assert!(q.lazy[0] > q.sc[0]);
}

//! Crash-stop failure suite: seeded node deaths, lease-based detection,
//! directory reclamation, and degraded-mode progress.
//!
//! Four properties are pinned here:
//!
//! 1. **Determinism** — the same `(seed, crash plan)` pair reproduces
//!    bit-identical statistics, for every protocol; crash recovery is part
//!    of the deterministic simulation, not a wall-clock race.
//! 2. **Completion** — survivors of a mid-run crash finish the workload:
//!    lines, locks, and barrier slots held by the dead node are reclaimed,
//!    so the run ends in a clean quiescent state instead of a wedge.
//! 3. **Typed data loss** — a dirty line whose only up-to-date copy died
//!    with its owner surfaces as a [`lazy_rc::sim::DataLossEvent`] in
//!    `MachineStats`, never silently.
//! 4. **No false positives** — a slow-but-alive node is *not* declared
//!    dead while message delays stay under the lease bound (satellite of
//!    the lease design: the bound must dominate heartbeat period plus
//!    worst-case fabric delay).
//!
//! Plus the checker acceptance bar: `--crash-nth` turns crash timing into
//! a deterministic choice point, and the injected recovery bug
//! [`Fault::SkipLockReclaim`] yields a minimized, replayable liveness
//! counterexample.

use lazy_rc::prelude::*;
use lazy_rc::sim::Op;
use lazy_rc::sim::Script;
use lazy_rc::workloads::Scale;

const PROCS: usize = 8;
const VICTIM: usize = 2;

/// Kill node 2 early, with a lease short enough that detection lands well
/// inside the run but still comfortably above the heartbeat period plus
/// the worst-case NI queueing delay mp3d's contention produces (~800
/// cycles) — tighter leases falsely declare live nodes dead.
fn kill_plan() -> FaultPlan {
    let mut cp = CrashPlan::kill(VICTIM, 2_000);
    cp.heartbeat_every = 500;
    cp.lease_timeout = 4_000;
    FaultPlan::off(0xDEAD).with_crash(cp)
}

fn run_crashed(proto: Protocol) -> MachineStats {
    let cfg = MachineConfig::paper_default(PROCS);
    Machine::new(cfg, proto)
        .with_max_cycles(50_000_000_000)
        .with_fault_plan(kill_plan())
        .try_run(WorkloadKind::Mp3d.build(PROCS, Scale::Tiny))
        .unwrap_or_else(|d| panic!("{proto}: survivors wedged after the crash: {d}"))
        .stats
}

#[test]
fn crashed_runs_complete_and_are_deterministic_all_protocols() {
    for proto in Protocol::ALL {
        let a = run_crashed(proto);
        let b = run_crashed(proto);
        assert_eq!(a, b, "{proto}: same (seed, crash plan) must be bit-identical");

        let c = &a.crashes;
        assert_eq!(c.crashes, 1, "{proto}: exactly one node dies: {c:?}");
        assert_eq!(
            c.suspicions,
            (PROCS - 1) as u64,
            "{proto}: every survivor suspects the victim exactly once: {c:?}"
        );
        assert!(c.heartbeats_sent > 0, "{proto}: detection was never armed: {c:?}");

        // Survivors finished; the victim did not.
        for (p, ps) in a.procs.iter().enumerate() {
            if p == VICTIM {
                assert_eq!(ps.finish_time, 0, "{proto}: the victim cannot finish");
            } else {
                assert!(ps.finish_time > 0, "{proto}: survivor {p} never finished");
            }
        }
    }
}

#[test]
fn crashes_off_stats_carry_the_zero_signature() {
    let cfg = MachineConfig::paper_default(PROCS);
    let stats = Machine::new(cfg, Protocol::Lrc)
        .with_max_cycles(50_000_000_000)
        .run(WorkloadKind::Mp3d.build(PROCS, Scale::Tiny))
        .stats;
    assert!(
        stats.crashes.is_zero(),
        "a run without a crash plan must keep all crash counters at zero"
    );
}

/// Satellite: message delays below the lease bound must never produce a
/// suspicion, on any protocol. The lease (4000) comfortably dominates the
/// heartbeat period (500) plus the injected delay (400) and the
/// worst-case NI queueing backlog, so a slow-but-alive node stays alive.
#[test]
fn lease_holds_under_message_delays_all_protocols() {
    let delay_plan = || {
        let mut plan = FaultPlan::off(0x51_0E);
        plan.rates = [FaultRates { delay: 0.3, ..FaultRates::default() }; MsgClass::COUNT];
        plan.delay_cycles = 400;
        let mut cp = CrashPlan::detection_only();
        cp.heartbeat_every = 500;
        cp.lease_timeout = 4_000;
        plan.with_crash(cp)
    };
    for proto in Protocol::ALL {
        let cfg = MachineConfig::paper_default(PROCS);
        let stats = Machine::new(cfg, proto)
            .with_max_cycles(50_000_000_000)
            .with_fault_plan(delay_plan())
            .try_run(WorkloadKind::Mp3d.build(PROCS, Scale::Tiny))
            .unwrap_or_else(|d| panic!("{proto}: delayed run wedged: {d}"))
            .stats;
        let c = &stats.crashes;
        assert!(stats.faults.delayed > 0, "{proto}: no delays injected: {:?}", stats.faults);
        assert!(c.heartbeats_sent > 0, "{proto}: detection was never armed: {c:?}");
        assert_eq!(c.suspicions, 0, "{proto}: delay under the lease bound declared a live node dead: {c:?}");
        assert_eq!(c.crashes, 0, "{proto}: nobody dies under a detection-only plan: {c:?}");
        for (p, ps) in stats.procs.iter().enumerate() {
            assert!(ps.finish_time > 0, "{proto}: node {p} never finished");
        }
    }
}

/// A dirty-owned line dies with its owner: the home must reclaim it as a
/// typed `DataLoss`, pass the dead node's lock to the queued survivors,
/// and release its barrier slot — and the survivors must complete.
#[test]
fn dirty_owner_crash_surfaces_typed_data_loss_and_releases_sync() {
    const NP: usize = 4;
    // P2 takes lock 0 (homed at live node 0), dirties a line, then crashes
    // mid-compute without releasing. P0 and P1 queue on the same lock and
    // read the line afterwards; P3 just waits at the final barrier.
    let script = Script::new(
        "dirty-owner-crash",
        vec![
            vec![Op::Compute(8_000), Op::Acquire(0), Op::Read(0x100), Op::Release(0), Op::Barrier(0)],
            vec![Op::Compute(8_000), Op::Acquire(0), Op::Read(0x100), Op::Release(0), Op::Barrier(0)],
            vec![Op::Acquire(0), Op::Write(0x100), Op::Compute(100_000), Op::Release(0), Op::Barrier(0)],
            vec![Op::Barrier(0)],
        ],
    );
    let mut cp = CrashPlan::kill(2, 5_000);
    cp.heartbeat_every = 200;
    cp.lease_timeout = 600;
    let stats = Machine::new(MachineConfig::paper_default(NP), Protocol::Lrc)
        .with_max_cycles(50_000_000_000)
        .with_fault_plan(FaultPlan::off(7).with_crash(cp))
        .try_run(Box::new(script))
        .unwrap_or_else(|d| panic!("survivors wedged after the dirty-owner crash: {d}"))
        .stats;

    let c = &stats.crashes;
    assert_eq!(c.crashes, 1, "{c:?}");
    assert!(c.dirty_lines_lost >= 1, "the dirty line must be reported lost: {c:?}");
    assert!(!c.data_loss.is_empty(), "{c:?}");
    assert_eq!(c.data_loss[0].owner, 2, "the victim owned the lost line: {c:?}");
    assert!(c.locks_reclaimed >= 1, "the dead holder's lock must pass on: {c:?}");
    for p in [0usize, 1, 3] {
        assert!(stats.procs[p].finish_time > 0, "survivor {p} never finished");
    }
}

/// Acceptance bar for `lrc-check --crash-nth`: with the injected recovery
/// bug (a home that skips reclaiming a dead node's locks), some crash
/// timing yields a liveness counterexample; the minimized schedule replays
/// to the same failure; and with recovery intact the identical crash
/// timing passes.
#[test]
fn checker_minimizes_a_crash_recovery_counterexample() {
    use lrc_check::explore::{replay_schedule_opts, BuildOpts, Failure, Limits};

    let s = lrc_check::scenario::by_name("counter").expect("counter scenario");
    // Victim 1 (lock 0 homes at node 0, which stays alive, so the reclaim
    // path — and the injected bug in it — is actually exercised).
    let victim = 1usize;
    let limits = Limits::default();

    let mut found = None;
    for n in 1..=80u64 {
        let opts = BuildOpts { races: false, crash_nth: Some((victim, n)) };
        let outcome = lrc_check::check_and_minimize_opts(
            &s,
            Protocol::Lrc,
            Fault::SkipLockReclaim,
            limits,
            opts,
        );
        if !outcome.passed() {
            found = Some((n, opts, outcome));
            break;
        }
    }
    let (n, opts, outcome) =
        found.expect("no crash timing in 1..=80 provoked the skipped lock reclaim");

    let minimized = outcome.minimized.expect("counterexamples are minimized");
    let (failure, _) = replay_schedule_opts(
        &s,
        Protocol::Lrc,
        Fault::SkipLockReclaim,
        opts,
        &minimized,
        50_000,
    );
    match failure {
        Some(Failure::Liveness(_)) => {}
        other => panic!("minimized schedule must replay to the liveness wedge, got {other:?}"),
    }

    let rendered = outcome.rendered.expect("counterexamples are rendered");
    assert!(rendered.contains("crash choice point"), "{rendered}");
    assert!(rendered.contains(&format!("--crash-nth {n} --crash-node {victim}")), "{rendered}");

    // Positive control: recovery intact, same crash timing, no wedge.
    let clean = lrc_check::check_and_minimize_opts(
        &s,
        Protocol::Lrc,
        Fault::None,
        limits,
        BuildOpts { races: false, crash_nth: Some((victim, n)) },
    );
    assert!(
        clean.passed(),
        "with reclamation intact the same crash timing must pass: {:?}",
        clean.rendered
    );
}

//! Checkpoint/restore suite: a run paused at a snapshot and resumed must be
//! **bit-identical** to the uninterrupted run — same cycle counts, same
//! per-processor finish times, same traffic totals, same event count — for
//! every protocol, on the sequential kernel and the sharded engine, with
//! and without an active fault plan.
//!
//! This is the hard robustness requirement of the snapshot subsystem: a
//! checkpoint is a pause in the same simulated history, not a perturbation
//! of it. The suite also pins the serialization contract itself:
//! serialize → parse → re-serialize is byte-identical, unknown snapshot
//! versions surface as typed errors (never panics), and truncated files
//! are reported as corruption.

use lazy_rc::prelude::*;
use lazy_rc::workloads::Scale;

const PROCS: usize = 8;

/// Condensed result fingerprint (the parallel-equivalence suite's, minus
/// nothing): totals plus per-processor detail, so divergence anywhere in
/// the machine shows up even when aggregate counters collide.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fp {
    total_cycles: u64,
    events: u64,
    finish_times: Vec<u64>,
    refs: u64,
    read_misses: u64,
    write_misses: u64,
    upgrades: u64,
    lock_acquires: u64,
    barriers: u64,
    three_hop: u64,
    control_msgs: u64,
    data_msgs: u64,
    write_data_msgs: u64,
    bytes: u64,
    pp_busy: Vec<u64>,
    mem_busy: Vec<u64>,
    breakdown_totals: Vec<u64>,
    fault_dropped: u64,
    fault_retries: u64,
}

fn fp(r: &RunResult) -> Fp {
    let s = &r.stats;
    let traffic = s.aggregate_traffic();
    Fp {
        total_cycles: s.total_cycles,
        events: r.events,
        finish_times: s.procs.iter().map(|p| p.finish_time).collect(),
        refs: s.total_refs(),
        read_misses: s.procs.iter().map(|p| p.read_misses).sum(),
        write_misses: s.procs.iter().map(|p| p.write_misses).sum(),
        upgrades: s.procs.iter().map(|p| p.upgrades).sum(),
        lock_acquires: s.procs.iter().map(|p| p.lock_acquires).sum(),
        barriers: s.procs.iter().map(|p| p.barriers).sum(),
        three_hop: s.procs.iter().map(|p| p.three_hop).sum(),
        control_msgs: traffic.control_msgs,
        data_msgs: traffic.data_msgs,
        write_data_msgs: traffic.write_data_msgs,
        bytes: traffic.bytes,
        pp_busy: s.procs.iter().map(|p| p.pp_busy).collect(),
        mem_busy: s.procs.iter().map(|p| p.mem_busy).collect(),
        breakdown_totals: s.procs.iter().map(|p| p.breakdown.total()).collect(),
        fault_dropped: s.faults.dropped,
        fault_retries: s.faults.retries,
    }
}

type PlanCtor = Option<fn() -> FaultPlan>;

fn chaos_plan() -> FaultPlan {
    FaultPlan::uniform(0.005, 0xFEED)
}

fn build(proto: Protocol, plan: PlanCtor) -> Machine {
    let m = Machine::new(MachineConfig::paper_default(PROCS), proto)
        .with_max_cycles(50_000_000_000);
    match plan {
        Some(f) => m.with_fault_plan(f()),
        None => m,
    }
}

fn workload() -> Box<dyn Workload> {
    WorkloadKind::Mp3d.build(PROCS, Scale::Tiny)
}

/// Uninterrupted fingerprint plus total cycles (to pick a mid-run
/// checkpoint cycle from).
fn uninterrupted(proto: Protocol, plan: PlanCtor) -> (Fp, u64) {
    let r = build(proto, plan).try_run(workload()).expect("uninterrupted run completed");
    let total = r.stats.total_cycles;
    (fp(&r), total)
}

/// The tentpole bar: checkpoint mid-run, resume, and demand the resumed
/// result be bit-identical to the uninterrupted run — across engines.
/// `threads = 1` exercises the sequential kernel's pause-exact cut;
/// `threads = 2, 4` the sharded engine's window-edge consistent cut (which
/// under a fault plan deterministically falls back to the sequential
/// kernel, checkpointing there instead).
fn assert_checkpoint_resume_matches(proto: Protocol, plan: PlanCtor) {
    let (want, total) = uninterrupted(proto, plan);
    let at = total / 2;
    for threads in [1usize, 2, 4] {
        let opts = ParallelOptions::threads(threads);
        let outcome =
            try_run_sharded_until(&move || build(proto, plan), &workload, &opts, at)
                .expect("checkpointing run neither stalled nor refused");
        let ckpt = match outcome {
            ShardedRunOutcome::Checkpointed(c) => c,
            ShardedRunOutcome::Completed(_) => {
                panic!("{proto} @ {threads} threads finished before cycle {at}")
            }
        };
        assert_eq!(ckpt.shards.len(), ckpt.threads.max(1));
        let resumed = resume_sharded(&workload, &ckpt).expect("resumed run completed");
        assert_eq!(
            fp(&resumed),
            want,
            "{proto} @ {threads} threads: resume diverged from the uninterrupted run \
             (fault plan: {})",
            plan.is_some()
        );
    }
}

#[test]
fn checkpoint_resume_matches_uninterrupted_all_protocols() {
    for proto in Protocol::ALL {
        assert_checkpoint_resume_matches(proto, None);
    }
}

#[test]
fn checkpoint_resume_matches_uninterrupted_under_fault_plan() {
    for proto in Protocol::ALL {
        assert_checkpoint_resume_matches(proto, Some(chaos_plan));
    }
}

/// Pause a sequential LRC run mid-flight and capture it.
fn mid_run_snapshot() -> (MachineSnapshot, String) {
    let mut m = build(Protocol::Lrc, None);
    m.start_run(workload());
    let paused = m.run_until(5_000).expect("no stall before cycle 5000");
    assert!(paused, "mp3d/tiny must still be running at cycle 5000");
    let snap = m.snapshot().expect("mid-run capture");
    let text = snap.to_json_string();
    (snap, text)
}

/// Serialize → parse → re-serialize must be byte-identical, and capturing
/// the restored machine must reproduce the original document byte for
/// byte — the round trip loses nothing.
#[test]
fn snapshot_round_trip_is_byte_identical() {
    let (_, text) = mid_run_snapshot();
    let reparsed = MachineSnapshot::parse(&text).expect("parse back");
    assert_eq!(reparsed.to_json_string(), text, "re-serialization changed bytes");
    let restored = reparsed.restore(workload()).expect("restore");
    let recaptured = restored.snapshot().expect("recapture restored machine");
    assert_eq!(recaptured.to_json_string(), text, "restored state drifted from snapshot");
}

/// A snapshot from a future (or garbage) format version must surface as a
/// typed `UnknownVersion` error, never a panic or a silent misparse —
/// and so must anything below the compatibility floor.
#[test]
fn unknown_snapshot_version_is_a_typed_error() {
    let (_, text) = mid_run_snapshot();
    let probe = format!("\"version\": {SNAPSHOT_VERSION}");
    assert!(text.contains(&probe), "version field not where expected");
    for (stamp, found) in [("999", 999u64), ("0", 0)] {
        let forged = text.replacen(&probe, &format!("\"version\": {stamp}"), 1);
        match MachineSnapshot::parse(&forged) {
            Err(SnapshotError::UnknownVersion { found: f }) => assert_eq!(f, found),
            other => panic!("version {stamp}: expected UnknownVersion, got {other:?}"),
        }
    }
}

/// Rewrite a parsed v2 snapshot document into the exact shape a v1 writer
/// emitted: stamp version 1 and drop every v2-only key — the root crash
/// section, the fault plan's crash sub-plan, and the ack collections'
/// debtor lists (`"from"`, which occurs nowhere else in the format).
fn downgrade_to_v1(v: &mut lrc_json::Value) {
    use lrc_json::Value;
    if let Value::Object(fields) = v {
        fields.retain(|(k, _)| k != "crash" && k != "from");
        for (k, fv) in fields.iter_mut() {
            if k == "version" {
                *fv = Value::Num(1.0);
            } else {
                downgrade_to_v1(fv);
            }
        }
    } else if let Value::Array(items) = v {
        for item in items.iter_mut() {
            downgrade_to_v1(item);
        }
    }
}

/// Drive a restored machine to completion.
fn finish(mut m: Machine) -> RunResult {
    let running = m.run_until(u64::MAX).expect("restored run stalled");
    assert!(!running, "restored run hit the cycle ceiling");
    match m.finish_run(std::time::Instant::now()) {
        Ok((r, _)) => r,
        Err((diag, _)) => panic!("restored run wedged at the finish line: {diag}"),
    }
}

/// Backward compatibility: a version-1 document (no crash state, no ack
/// debtor lists) must still parse and restore with the missing state
/// defaulted, and the resumed run must be bit-identical to the
/// uninterrupted one — with and without an active fault plan.
#[test]
fn v1_snapshot_still_restores_and_resumes() {
    for plan in [None, Some(chaos_plan as fn() -> FaultPlan)] {
        let (want, _) = uninterrupted(Protocol::Lrc, plan);
        let mut m = build(Protocol::Lrc, plan);
        m.start_run(workload());
        assert!(m.run_until(5_000).expect("no stall"), "still running at 5000");
        let text = m.snapshot().expect("mid-run capture").to_json_string();
        let mut doc = lrc_json::parse(&text).expect("snapshot is valid JSON");
        downgrade_to_v1(&mut doc);
        let v1_text = doc.pretty();
        assert!(v1_text.contains("\"version\": 1"), "downgrade failed to stamp v1");
        assert!(!v1_text.contains("\"crash\""), "downgrade left a crash key behind");
        let restored = MachineSnapshot::parse(&v1_text)
            .expect("v1 document parses")
            .restore(workload())
            .expect("v1 document restores");
        let r = finish(restored);
        assert_eq!(
            fp(&r),
            want,
            "v1-restored run diverged from uninterrupted (fault plan: {})",
            plan.is_some()
        );
    }
}

/// Backward compatibility against a *real* v1 artifact, not a synthetic
/// downgrade: the checked-in wedge dump (`lrc-soak`'s unrecoverable-stage
/// snapshot from the release that introduced the v1 format) must still
/// parse under today's decoder. CI goes further and replays it end to end
/// (`lrc-soak --replay` must reproduce the wedge).
#[test]
fn checked_in_v1_wedge_dump_still_parses() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/wedge-unrecoverable-seed1.json"
    ))
    .expect("fixture present");
    let env = lrc_json::parse(&text).expect("fixture is valid JSON");
    assert_eq!(env["kind"].as_str(), Some("lrc-soak-wedge"));
    let snap_text = env["snapshot"].pretty();
    assert!(snap_text.contains("\"version\": 1"), "fixture is no longer a v1 document");
    let snap = MachineSnapshot::parse(&snap_text).expect("v1 fixture parses");
    let cfg = snap.config().expect("fixture carries a machine config");
    assert_eq!(cfg.num_procs, 4);
    assert!(snap.cycle() > 0, "fixture froze a mid-run machine");
}

/// A crash plan whose victim dies early enough that both the death and
/// its detection (by ~6.5k cycles: crash + lease + one heartbeat tick)
/// land well inside the run. The lease comfortably dominates the
/// heartbeat period plus worst-case NI queueing delay, so no live node
/// is ever falsely suspected.
fn early_crash_plan() -> FaultPlan {
    let mut cp = CrashPlan::kill(2, 2_000);
    cp.heartbeat_every = 500;
    cp.lease_timeout = 4_000;
    FaultPlan::off(0xC0FFEE).with_crash(cp)
}

/// Crash state is part of the v2 capture set: a machine snapshotted
/// *after* a node has crashed (and been detected) round-trips byte for
/// byte, and the resumed degraded run matches the uninterrupted degraded
/// run bit for bit.
#[test]
fn crash_state_snapshot_round_trips_and_resumes() {
    let (want, _) = uninterrupted(Protocol::Lrc, Some(early_crash_plan));

    let mut m = build(Protocol::Lrc, Some(early_crash_plan));
    m.start_run(workload());
    assert!(m.run_until(8_000).expect("no stall"), "still running at 8000");
    let snap = m.snapshot().expect("post-crash capture");
    let text = snap.to_json_string();
    assert!(text.contains("\"crashed\""), "snapshot carries no crash state");

    let reparsed = MachineSnapshot::parse(&text).expect("parse back");
    assert_eq!(reparsed.to_json_string(), text, "re-serialization changed bytes");
    let restored = reparsed.restore(workload()).expect("restore");
    let recaptured = restored.snapshot().expect("recapture restored machine");
    assert_eq!(recaptured.to_json_string(), text, "restored crash state drifted");

    let r = finish(restored);
    assert_eq!(fp(&r), want, "crash-state resume diverged from the uninterrupted run");
}

/// A truncated snapshot file (torn write, partial copy) must parse to a
/// typed corruption error, never a panic.
#[test]
fn truncated_snapshot_is_a_typed_corruption_error() {
    let (_, text) = mid_run_snapshot();
    for frac in [2, 3, 10] {
        let cut = &text[..text.len() / frac];
        match MachineSnapshot::parse(cut) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("truncated/{frac} parse should be Corrupt, got {other:?}"),
        }
    }
    match MachineSnapshot::parse("") {
        Err(SnapshotError::Corrupt(_)) => {}
        other => panic!("empty parse should be Corrupt, got {other:?}"),
    }
}

/// Field-level corruption (a node id out of range) must also surface as a
/// typed error at restore time, not a panic deep in the kernel.
#[test]
fn out_of_range_node_id_is_a_typed_corruption_error() {
    let (_, text) = mid_run_snapshot();
    let snap = MachineSnapshot::parse(&text).expect("parse back");
    assert!(text.contains("\"finished\": 0"), "finished field not where expected");
    let evil = text.replacen("\"finished\": 0", "\"finished\": 64", 1);
    match MachineSnapshot::parse(&evil).expect("still well-formed JSON").restore(workload()) {
        Err(SnapshotError::Corrupt(_)) => {}
        other => panic!("expected Corrupt on restore, got {:?}", other.map(|_| ())),
    }
    drop(snap);
}

/// Configurations outside the v1 capture set (here: the miss classifier,
/// whose per-line history is deliberately not serialized) must refuse with
/// a typed `Unsupported` error rather than writing a snapshot that could
/// not restore faithfully.
#[test]
fn unsupported_configuration_refuses_capture() {
    let mut m = build(Protocol::Sc, None).with_classification();
    m.start_run(workload());
    assert!(m.run_until(5_000).expect("no stall"), "still running");
    match m.snapshot() {
        Err(SnapshotError::Unsupported(_)) => {}
        other => panic!("expected Unsupported, got {:?}", other.map(|_| ())),
    }
}

#!/usr/bin/env bash
# The repo's CI gate, runnable locally and in any runner. Fully offline:
# every dependency is an in-workspace path crate.
#
#   tier 1  — workspace release build + root-package tests (the seed
#             gate; --workspace so the crates/exp binaries lrc-bench,
#             lrc-soak, and lrc-check are built here too, not silently
#             skipped until a later stage needs them)
#   lint    — clippy with warnings denied, across every target
#   unsafe  — every crate root must carry #![forbid(unsafe_code)]
#   tier 2  — full workspace test suites, including the model checker's
#             bounded configs (`cargo test -p lrc-check`); the checker's
#             exhaustive sweep stays opt-in via
#             `cargo test -p lrc-check --release -- --ignored`

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: workspace release build + root tests"
cargo build --workspace --release
cargo test -q

echo "==> lint: clippy -D warnings (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> unsafe: crate roots must forbid unsafe_code"
missing=0
for root in src/lib.rs crates/*/src/lib.rs crates/*/src/main.rs; do
  [ -f "$root" ] || continue
  if ! grep -q 'forbid(unsafe_code)' "$root"; then
    echo "missing #![forbid(unsafe_code)]: $root" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ]

echo "==> tier 2: workspace tests"
cargo test --workspace -q

echo "==> bench smoke: lrc-bench compare at tiny scale"
# Exercises the whole measure/compare path in seconds. The committed
# baseline is scale=small, so the gate auto-skips the threshold check at
# tiny scale — this stage verifies the harness runs end to end and emits
# valid JSON, not throughput (wall-clock on shared runners is too noisy
# for a hard gate in CI; re-baseline locally with `lrc-bench run`).
cargo build --release -q -p lrc-exp
smoke=$(mktemp /tmp/bench_smoke.XXXXXX.json)
./target/release/lrc-bench compare --baseline BENCH_sim.json \
  --scale tiny --procs 16 --reps 1 --quiet --out "$smoke"
grep -q '"schema": "lrc-bench-v1"' "$smoke"
rm -f "$smoke"

echo "==> parallel smoke: sharded engine vs sequential at tiny scale"
# The sharded engine's contract is bit-identity, so the smoke check IS a
# fingerprint cross-check: a threaded tiny-scale sweep (threads=1,2) whose
# per-combo simulated cycle counts the harness asserts identical across
# thread counts, plus the cross-protocol equivalence suite (full-statistics
# fingerprints at 2/4/8 threads, adversarial strided partition, fault-plan
# fallback, wedged-shard stall diagnosis).
psmoke=$(mktemp /tmp/parallel_smoke.XXXXXX.json)
./target/release/lrc-bench run --scale tiny --procs 16 --reps 1 \
  --threads 1,2 --quiet --out "$psmoke"
grep -q '"thread_sweep"' "$psmoke"
rm -f "$psmoke"
cargo test -q --test parallel_equiv

echo "==> soak smoke: lrc-soak --smoke (fault injection + value verification)"
# Tiny seeded chaos sweep: rates {0, 1e-3} x all four protocols, every run
# checked against the reference SC execution and reproduced bit-identically,
# plus the unrecoverable stage proving wedges die with a structured
# diagnosis. Exits non-zero on any verification failure.
./target/release/lrc-soak --smoke --quiet

echo "==> snapshot smoke: restore bit-identity + kill-and-resume soak"
# First the hard contract: checkpoint mid-run, restore, run to completion,
# fingerprint equals the uninterrupted golden run — all four protocols,
# sequential and sharded (2/4 threads), with and without a fault plan —
# plus the serialization pins (byte-identical round trips, typed errors
# for unknown versions / truncation / corruption).
cargo test -q --test snapshot_restore
# Then the crash-resumable sweep. Cell markers are written atomically and
# in sweep order after each verdict, so a journal prefix is byte-for-byte
# the directory a SIGKILL would leave behind; truncating the journal and
# resuming IS the kill test, and is deterministic where actually killing
# a subsecond smoke run mid-flight is not.
snapdir=$(mktemp -d /tmp/soak_resume.XXXXXX)
./target/release/lrc-soak --smoke --checkpoint-dir "$snapdir/ref" > "$snapdir/ref.out"
cp -r "$snapdir/ref" "$snapdir/killed"
rm "$snapdir/killed"/cell-rate0.001-* "$snapdir/killed/cell-unrecoverable.json"
./target/release/lrc-soak --smoke --resume "$snapdir/killed" > "$snapdir/resumed.out"
# Auto-dumped wedge-snapshot paths embed the checkpoint dir; every other
# byte of the resumed sweep's output must match the unkilled reference.
diff <(grep -v 'snapshot\|replay\|resume' "$snapdir/ref.out") \
     <(grep -v 'snapshot\|replay\|resume' "$snapdir/resumed.out")
# The stall snapshot the wedged stage auto-dumped must restore into a
# state that still reproduces the wedge (replay exits 0 = reproduced).
./target/release/lrc-soak --replay "$snapdir/ref/wedge-unrecoverable-seed1.json" --quiet
# And the checked-in v1 wedge dump from the release that introduced the
# snapshot format: today's decoder must still restore it and reproduce
# the wedge (the format-compat contract, end to end).
./target/release/lrc-soak --replay tests/fixtures/wedge-unrecoverable-seed1.json --quiet
rm -rf "$snapdir"

echo "==> capacity smoke: lrc-soak --capacity-sweep --smoke (finite resources)"
# NI queue depth x write-notice budget x protocol, fault-free: every cell
# must complete under backpressure, verify against the reference SC
# execution, rerun bit-identically, and the grid must exercise real
# pressure (nonzero reject/NACK/overflow counters somewhere).
./target/release/lrc-soak --capacity-sweep --smoke --quiet

echo "==> race smoke: lrc-soak --races --smoke + lrc-check --races"
# Happens-before race detection end to end: the five DRF generators must
# come back clean under all four protocols, the deliberately racy programs
# (mp3d, locusroute, and the planted racy micro workload) must be flagged,
# and every report must reproduce bit-identically.
./target/release/lrc-soak --races --smoke --quiet
# The checker's positive control: the racy scenario must FAIL (exit 1) with
# a race counterexample, and a clean scenario must still PASS with the
# detector armed.
cargo build --release -q -p lrc-check
if ./target/release/lrc-check --races --scenario racy --protocol lazy \
    --max-states 20000 > /tmp/race_check.out 2>&1; then
  echo "lrc-check --races failed to flag the racy positive control" >&2
  cat /tmp/race_check.out >&2
  exit 1
fi
grep -q 'data race' /tmp/race_check.out
./target/release/lrc-check --races --scenario handoff --protocol lazy \
  --max-states 20000 > /dev/null
rm -f /tmp/race_check.out

echo "==> crash smoke: availability sweep + lrc-check --crash-nth counterexample"
# Availability sweep at smoke scale: crash rates {0, 0.25} x all four
# protocols. Rate-0 control cells verify values against the reference SC
# execution with the lease machinery armed; crashed cells prove the
# survivors complete (victim finish time 0, every survivor nonzero) and
# rerun bit-identically. Exits non-zero on any violation.
./target/release/lrc-soak --availability --smoke --quiet
# The checker's crash choice point, negative control first: with the
# injected recovery bug (the home skips reclaiming a dead node's locks),
# some crash timing in 1..80 must wedge the survivors, and the minimized
# counterexample's printed reproduce line must replay to the same failure
# (exit 1 = reproduced).
crashout=$(mktemp /tmp/crash_check.XXXXXX.out)
foundn=""
for n in $(seq 1 80); do
  if ! ./target/release/lrc-check --scenario counter --protocol lazy \
      --fault skip-lock-reclaim --crash-nth "$n" --crash-node 1 \
      --max-states 20000 > "$crashout" 2>&1; then
    foundn="$n"
    break
  fi
done
[ -n "$foundn" ]
grep -q 'crash choice point' "$crashout"
repro=$(grep -o 'lrc-check --scenario .*' "$crashout" | head -1)
read -r -a repro_cmd <<< "$repro"
if "./target/release/${repro_cmd[0]}" "${repro_cmd[@]:1}" > /dev/null 2>&1; then
  echo "minimized crash counterexample failed to reproduce" >&2
  cat "$crashout" >&2
  exit 1
fi
# Positive control: recovery intact, the same crash timing must pass.
./target/release/lrc-check --scenario counter --protocol lazy \
  --crash-nth "$foundn" --crash-node 1 --max-states 20000 > /dev/null
rm -f "$crashout"

echo "==> observability smoke: traced observe run + artifact validation"
# A tiny fully instrumented run: structured trace -> Perfetto JSON (checked
# by the experiment itself via a serialize/parse round-trip), latency
# histograms, and the metrics time series. Here we additionally check the
# emitted artifacts: the Perfetto file has named tracks and flow events,
# the time series is a non-trivial CSV, and the latency table is non-empty.
obsdir=$(mktemp -d /tmp/observe_smoke.XXXXXX)
./target/release/lrc-exp observe --scale tiny --procs 8 --quiet \
  --trace-dir "$obsdir" > /dev/null
grep -q '"traceEvents"' "$obsdir/observe.perfetto.json"
grep -q '"ph":"M"' "$obsdir/observe.perfetto.json"
grep -q '"ph":"s"' "$obsdir/observe.perfetto.json"
head -1 "$obsdir/observe.timeseries.csv" | grep -q '^cycle,inflight,dir_busy'
[ "$(wc -l < "$obsdir/observe.timeseries.csv")" -gt 2 ]
grep -q '"name":"rt.read"' "$obsdir/observe.latency.json"
[ -s "$obsdir/observe.jsonl" ]
rm -rf "$obsdir"

echo "==> report smoke: store round-trip, HTML report, staleness gate"
# The experiment lab end to end at tiny scale: a two-seed run into a fresh
# store (fixed --timestamp so the store is byte-reproducible), the HTML
# paper report with provenance links and cross-seed CI columns, and the
# staleness checker both ways — clean store passes, a content-mutated blob
# must fail. Finally the committed store must be current against HEAD.
labdir=$(mktemp -d /tmp/report_smoke.XXXXXX)
./target/release/lrc-exp table3 quality --scale tiny --procs 8 --seeds 2 \
  --store "$labdir/store" --timestamp 1754700000 --quiet > /dev/null
./target/release/lrc-exp report --store "$labdir/store" \
  --out "$labdir/report.html" > /dev/null 2>&1
grep -q 'objects/' "$labdir/report.html"            # provenance links
grep -q 'p (Holm)' "$labdir/report.html"            # adjusted significance
grep -qE '\[[^]]+, [^]]+\]</td>' "$labdir/report.html"  # CI interval columns
grep -q '"schema": "lrc-exp-report-v1"' "$labdir/report.json"
./target/release/lrc-exp report --store "$labdir/store" --check > /dev/null
# Byte-reproducibility: the same runs must land on the same blob set.
lsbefore=$(ls "$labdir/store/objects" | sort)
./target/release/lrc-exp table3 quality --scale tiny --procs 8 --seeds 2 \
  --store "$labdir/store" --timestamp 1754700000 --quiet > /dev/null
[ "$(ls "$labdir/store/objects" | sort)" = "$lsbefore" ]
# Mutate one blob's content (valid JSON, wrong hash): --check must fail.
blob=$(ls "$labdir/store/objects/"*.json | head -1)
printf '{"tampered":true}' > "$blob"
if ./target/release/lrc-exp report --store "$labdir/store" --check \
    > /dev/null 2>&1; then
  echo "staleness checker passed a mutated artifact" >&2
  exit 1
fi
rm -rf "$labdir"
# The committed store must be current against the code being tested.
./target/release/lrc-exp report --store results/store --check > /dev/null

echo "==> opt-in machinery costs nothing when off: golden fingerprints unchanged"
# The golden determinism fingerprints pin the default behavior; re-running
# them here asserts that the bounded-resource machinery, the tracing/
# sampling/histogram layer, AND the crash/lease subsystem (all off by
# default) leave the simulation bit-identical until explicitly configured.
cargo test -q --test determinism_golden

echo "CI green."

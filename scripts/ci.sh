#!/usr/bin/env bash
# The repo's CI gate, runnable locally and in any runner. Fully offline:
# every dependency is an in-workspace path crate.
#
#   tier 1  — release build + root-package tests (the seed gate)
#   lint    — clippy with warnings denied, across every target
#   unsafe  — every crate root must carry #![forbid(unsafe_code)]
#   tier 2  — full workspace test suites, including the model checker's
#             bounded configs (`cargo test -p lrc-check`); the checker's
#             exhaustive sweep stays opt-in via
#             `cargo test -p lrc-check --release -- --ignored`

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: release build + root tests"
cargo build --release
cargo test -q

echo "==> lint: clippy -D warnings (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> unsafe: crate roots must forbid unsafe_code"
missing=0
for root in src/lib.rs crates/*/src/lib.rs crates/*/src/main.rs; do
  [ -f "$root" ] || continue
  if ! grep -q 'forbid(unsafe_code)' "$root"; then
    echo "missing #![forbid(unsafe_code)]: $root" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ]

echo "==> tier 2: workspace tests"
cargo test --workspace -q

echo "CI green."

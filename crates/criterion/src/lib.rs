//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in offline environments with no registry access,
//! so this crate re-creates the slice of criterion's API that the
//! `lrc-bench` targets use: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Semantics: each benchmark runs a short warm-up plus a fixed number of
//! timed samples (scaled down by `sample_size`) and prints the median
//! per-iteration wall time. It is a smoke-timing harness, not a
//! statistics engine — good enough to keep the paper's table/figure
//! benches runnable and compiled under `--all-targets`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the real crate's deprecated
/// alias for `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Driver with the default sample count.
    pub fn new() -> Self {
        Criterion { sample_size: default_samples() }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::new()
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, discarding its output via `black_box`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.results.push(t0.elapsed());
        }
    }
}

fn default_samples() -> usize {
    // Keep runs quick: honor CRITERION_SAMPLES if set, else 3.
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Cap samples: this harness is for smoke timing, not statistics.
    let samples = samples.min(10);
    let mut b = Bencher { samples, results: Vec::with_capacity(samples) };
    f(&mut b);
    if b.results.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    b.results.sort();
    let median = b.results[b.results.len() / 2];
    println!("{name:<48} median {median:>12.3?} over {samples} samples");
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running one or more groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::new().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::new();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function(format!("case/{}", 1), |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}

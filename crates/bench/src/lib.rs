//! `lrc-bench` — shared helpers for the criterion benches (one bench target
//! per paper table/figure lives in `benches/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lrc_core::{Machine, RunResult};
use lrc_sim::{MachineConfig, Protocol};
use lrc_workloads::{Scale, WorkloadKind};

/// Processor count used by the benches: small enough for fast iterations,
/// large enough to exercise real sharing.
pub const BENCH_PROCS: usize = 16;

/// Run one (protocol, workload) combination on the Table-1 machine at the
/// given scale. The returned cycle count is consumed by `black_box` in the
/// benches so the simulation cannot be optimized away.
pub fn run(proto: Protocol, kind: WorkloadKind, scale: Scale, classify: bool) -> RunResult {
    let cfg = MachineConfig::paper_default(BENCH_PROCS);
    run_with(cfg, proto, kind, scale, classify)
}

/// Like [`run`], with an explicit machine configuration.
pub fn run_with(
    cfg: MachineConfig,
    proto: Protocol,
    kind: WorkloadKind,
    scale: Scale,
    classify: bool,
) -> RunResult {
    let w = kind.build(cfg.num_procs, scale);
    let mut m = Machine::new(cfg, proto).with_max_cycles(50_000_000_000);
    if classify {
        m = m.with_classification();
    }
    m.run(w)
}

//! Section 4.2 — the mp3d solution-quality functional experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_workloads::quality_experiment;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("quality");
    g.sample_size(10);
    g.bench_function("mp3d_divergence/4000x5", |b| {
        b.iter(|| black_box(quality_experiment(4000, 5, 16)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

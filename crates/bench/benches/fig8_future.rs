//! Figure 8 — the future machine (40-cycle setup, 4 B/cyc, 256 B lines).

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::{run_with, BENCH_PROCS};
use lrc_sim::{MachineConfig, Protocol};
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for proto in [Protocol::Erc, Protocol::Lrc, Protocol::LrcExt] {
        g.bench_function(format!("future/{proto}/mp3d"), |b| {
            b.iter(|| {
                let cfg = MachineConfig::future_machine(BENCH_PROCS);
                let r = run_with(cfg, proto, WorkloadKind::Mp3d, Scale::Tiny, false);
                black_box(r.stats.total_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Substrate microbenchmarks: event queue, mesh routing, cache operations,
//! and raw simulation throughput — the costs every experiment is built on.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::run;
use lrc_mem::{Cache, LineState};
use lrc_mesh::Mesh;
use lrc_sim::{EventQueue, LineAddr, MachineConfig, Protocol};
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("kernel/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(i * 7 % 997, i, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    c.bench_function("kernel/mesh_hops_64x64", |b| {
        let m = Mesh::new(64);
        b.iter(|| {
            let mut acc = 0u64;
            for a in 0..64 {
                for bb in 0..64 {
                    acc += m.hops(a, bb);
                }
            }
            black_box(acc)
        })
    });

    c.bench_function("kernel/cache_insert_lookup", |b| {
        let cfg = MachineConfig::paper_default(4);
        b.iter(|| {
            let mut cache = Cache::new(&cfg);
            for i in 0..4096u64 {
                cache.insert(LineAddr(i), LineState::ReadOnly);
                black_box(cache.contains(LineAddr(i / 2)));
            }
            black_box(cache.resident())
        })
    });

    let mut g = c.benchmark_group("kernel/full_sim");
    g.sample_size(10);
    g.bench_function("fft_tiny_lazy_16p", |b| {
        b.iter(|| {
            let r = run(Protocol::Lrc, WorkloadKind::Fft, Scale::Tiny, false);
            black_box(r.stats.total_cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

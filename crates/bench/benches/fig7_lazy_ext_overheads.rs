//! Figure 7 — lazy vs lazy-extended overhead breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::run;
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for proto in [Protocol::Lrc, Protocol::LrcExt, Protocol::Sc] {
        g.bench_function(format!("overheads/{proto}/mp3d"), |b| {
            b.iter(|| {
                let r = run(proto, WorkloadKind::Mp3d, Scale::Tiny, false);
                black_box(r.stats.aggregate_breakdown().sync)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Section 4.3 sweeps — line-size / latency / bandwidth sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::{run_with, BENCH_PROCS};
use lrc_sim::{MachineConfig, Protocol};
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    for line in [64usize, 128, 256] {
        g.bench_function(format!("line_size/{line}/lazy/mp3d"), |b| {
            b.iter(|| {
                let mut cfg = MachineConfig::paper_default(BENCH_PROCS);
                cfg.line_size = line;
                let r = run_with(cfg, Protocol::Lrc, WorkloadKind::Mp3d, Scale::Tiny, false);
                black_box(r.stats.total_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

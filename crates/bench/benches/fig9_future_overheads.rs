//! Figure 9 — future-machine overhead breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::{run_with, BENCH_PROCS};
use lrc_sim::{MachineConfig, Protocol};
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for proto in [Protocol::Lrc, Protocol::LrcExt, Protocol::Erc, Protocol::Sc] {
        g.bench_function(format!("future_overheads/{proto}/blu"), |b| {
            b.iter(|| {
                let cfg = MachineConfig::future_machine(BENCH_PROCS);
                let r = run_with(cfg, proto, WorkloadKind::Blu, Scale::Tiny, false);
                black_box(r.stats.aggregate_breakdown().read)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 1 — configuration assembly and parameter-table rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_sim::{table1_rows, MachineConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("table1/build_paper_config", |b| {
        b.iter(|| black_box(MachineConfig::paper_default(black_box(64))))
    });
    c.bench_function("table1/render_rows", |b| {
        let cfg = MachineConfig::paper_default(64);
        b.iter(|| black_box(table1_rows(black_box(&cfg))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 4 — normalized execution time, lazy vs eager vs SC.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::run;
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for proto in [Protocol::Sc, Protocol::Erc, Protocol::Lrc] {
        g.bench_function(format!("exec/{proto}/gauss"), |b| {
            b.iter(|| {
                let r = run(proto, WorkloadKind::Gauss, Scale::Tiny, false);
                black_box(r.stats.total_cycles)
            })
        });
        g.bench_function(format!("exec/{proto}/mp3d"), |b| {
            b.iter(|| {
                let r = run(proto, WorkloadKind::Mp3d, Scale::Tiny, false);
                black_box(r.stats.total_cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

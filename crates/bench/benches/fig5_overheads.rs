//! Figure 5 — overhead breakdown (cpu/read/write/sync) extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::run;
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for proto in [Protocol::Lrc, Protocol::Erc, Protocol::Sc] {
        g.bench_function(format!("overheads/{proto}/barnes"), |b| {
            b.iter(|| {
                let r = run(proto, WorkloadKind::Barnes, Scale::Tiny, false);
                let bd = r.stats.aggregate_breakdown();
                black_box(bd.normalized(bd.total()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 6 — lazy vs lazy-extended execution time.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::run;
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for proto in [Protocol::Lrc, Protocol::LrcExt] {
        for kind in [WorkloadKind::Fft, WorkloadKind::Locusroute] {
            g.bench_function(format!("exec/{proto}/{kind}"), |b| {
                b.iter(|| {
                    let r = run(proto, kind, Scale::Tiny, false);
                    black_box(r.stats.total_cycles)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 3 — miss rates under the three release-consistent protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::run;
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for proto in [Protocol::Erc, Protocol::Lrc, Protocol::LrcExt] {
        g.bench_function(format!("missrate/{proto}/mp3d"), |b| {
            b.iter(|| {
                let r = run(proto, WorkloadKind::Mp3d, Scale::Tiny, false);
                black_box(r.stats.miss_rate())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 2 — miss classification under eager RC: a classified simulation
//! run per application representative.

use criterion::{criterion_group, criterion_main, Criterion};
use lrc_bench::run;
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for kind in [WorkloadKind::Mp3d, WorkloadKind::Gauss, WorkloadKind::Locusroute] {
        g.bench_function(format!("classified_erc/{kind}"), |b| {
            b.iter(|| {
                let r = run(Protocol::Erc, kind, Scale::Tiny, true);
                black_box(r.stats.aggregate_misses().total())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

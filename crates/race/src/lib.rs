//! `lrc-race` — an online happens-before race detector in the FastTrack
//! style (Flanagan & Freund), driven by the simulated machine's own
//! synchronization operations.
//!
//! The detector maintains one vector clock per processor, advanced by
//! program order and joined along exactly the edges the protocols
//! implement:
//!
//! * **lock release → acquire**: the releaser's clock is folded into the
//!   lock's clock at the release; the next holder joins the lock's clock
//!   when its grant arrives.
//! * **barrier arrival → departure**: each arrival folds the arriving
//!   processor's clock into the episode's gather clock; once all
//!   processors have arrived the gather clock becomes the episode clock,
//!   and every departure joins it.
//! * **fence**: *no* edge. The paper offers `fence` as an escape hatch for
//!   programs with data races — it forces local invalidations so stale
//!   copies are refetched, but it synchronizes with nobody, so it creates
//!   no happens-before order and does not silence the detector.
//!
//! Per word, the detector keeps adaptive FastTrack metadata: the last
//! write as an *epoch* (`proc@clock`), and reads as an epoch that promotes
//! to a full per-processor vector only when genuinely concurrent readers
//! appear. The common same-epoch case (a processor re-touching a word it
//! just touched, private data, lock-protected data between hand-offs) is
//! a single compare — O(1) with no allocation.
//!
//! Everything here is deterministic: word metadata lives in `BTreeMap`s,
//! races are reported in detection order (which the simulator's
//! deterministic event order fixes), and only the first race per word is
//! reported, so reruns of the same program produce bit-identical
//! [`RaceStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

use lrc_sim::{RaceReport, RaceSite, RaceStats};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A vector clock: one logical-time component per processor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct VectorClock {
    c: Vec<u64>,
}

impl VectorClock {
    /// The bottom clock (all zeros) for `n` processors.
    pub fn new(n: usize) -> Self {
        VectorClock { c: vec![0; n] }
    }

    /// Component for processor `p`.
    #[inline]
    pub fn get(&self, p: usize) -> u64 {
        self.c[p]
    }

    /// Advance processor `p`'s own component.
    #[inline]
    pub fn tick(&mut self, p: usize) {
        self.c[p] += 1;
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.c.iter_mut().zip(other.c.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// The raw components, indexed by processor.
    pub fn components(&self) -> &[u64] {
        &self.c
    }
}

/// An epoch `proc@clock`: one component of a vector clock, identifying one
/// segment of one processor's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Epoch {
    proc: u32,
    clock: u64,
}

impl Epoch {
    /// `self` happens-before (or equals) the accessor whose clock is `c`.
    #[inline]
    fn ordered_before(self, c: &VectorClock) -> bool {
        self.clock <= c.get(self.proc as usize)
    }
}

/// Read metadata for one word: an epoch while reads are totally ordered,
/// promoted to per-processor clocks once concurrent readers appear.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReadMeta {
    /// No read since the last write.
    None,
    /// All reads so far are ordered; only the latest matters.
    Epoch(Epoch, RaceSite),
    /// Concurrent readers: last read clock and site per processor.
    Vector(Vec<u64>, Vec<RaceSite>),
}

/// Per-word FastTrack metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WordMeta {
    write: Option<(Epoch, RaceSite)>,
    read: ReadMeta,
    /// A race was already reported on this word; later conflicts on the
    /// same word are suppressed so one buggy word cannot flood the report.
    racy: bool,
}

impl WordMeta {
    fn new() -> Self {
        WordMeta { write: None, read: ReadMeta::None, racy: false }
    }
}

/// Checkpointed read metadata for one word (plain-data mirror of the
/// detector's internal adaptive representation).
#[derive(Debug, Clone, PartialEq)]
pub enum ReadState {
    /// No read since the last write.
    None,
    /// All reads so far ordered: `(proc, clock, site)` of the latest.
    Epoch(u32, u64, RaceSite),
    /// Concurrent readers: per-processor last-read clocks and sites.
    Vector(Vec<u64>, Vec<RaceSite>),
}

/// Checkpointed per-word metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct WordState {
    /// Word-aligned byte address.
    pub addr: u64,
    /// Last write as `(proc, clock, site)`, if any.
    pub write: Option<(u32, u64, RaceSite)>,
    /// Read metadata.
    pub read: ReadState,
    /// A race was already reported on this word.
    pub racy: bool,
}

/// Checkpointed per-barrier episode state.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierState {
    /// Barrier id.
    pub id: u32,
    /// Gather clock of the in-progress episode.
    pub gather: Vec<u64>,
    /// Arrivals gathered so far.
    pub arrivals: usize,
    /// Clock of the most recently completed episode.
    pub completed: Vec<u64>,
}

/// Complete checkpointed detector state, produced by
/// [`RaceDetector::save_state`] and consumed by
/// [`RaceDetector::from_state`]. Pure data — serialization lives with the
/// machine-level snapshot code.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceDetectorState {
    /// Number of processors.
    pub num_procs: usize,
    /// Word granularity in bytes.
    pub word_size: u64,
    /// Per-processor vector clocks (each `num_procs` components).
    pub clocks: Vec<Vec<u64>>,
    /// Per-processor program-order reference ordinals.
    pub refs: Vec<u64>,
    /// Per-lock clocks, sorted by lock id.
    pub locks: Vec<(u32, Vec<u64>)>,
    /// Per-barrier episode state, sorted by barrier id.
    pub barriers: Vec<BarrierState>,
    /// Per-word metadata, sorted by address.
    pub words: Vec<WordState>,
    /// Counters and reports accumulated so far.
    pub stats: RaceStats,
}

/// The online happens-before race detector.
///
/// The machine drives it through six hooks: [`on_read`](Self::on_read) /
/// [`on_write`](Self::on_write) at each data reference, and the four sync
/// hooks at the edges the protocols execute. The detector never inspects
/// protocol state — a race verdict is a property of the *program* (its
/// reference streams and sync order), which is exactly why it is the
/// precondition the DRF⇒SC value checks need.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceDetector {
    num_procs: usize,
    word_size: u64,
    /// Per-processor vector clocks.
    clocks: Vec<VectorClock>,
    /// Per-processor program-order reference ordinal (1-based in reports).
    refs: Vec<u64>,
    /// Per-lock clocks: the join of every past releaser.
    locks: BTreeMap<u32, VectorClock>,
    /// Per-barrier episode state.
    barriers: BTreeMap<u32, BarrierClock>,
    /// Per-word metadata, keyed by word-aligned byte address.
    words: BTreeMap<u64, WordMeta>,
    /// Counters and reports, folded into `MachineStats` at end of run.
    stats: RaceStats,
}

/// Gather/episode clocks for one barrier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct BarrierClock {
    /// Join of the clocks of everyone who arrived at the current episode.
    gather: VectorClock,
    arrivals: usize,
    /// Clock of the most recently completed episode; departures join it.
    completed: VectorClock,
}

impl RaceDetector {
    /// A detector for `num_procs` processors and `word_size`-byte words.
    pub fn new(num_procs: usize, word_size: u64) -> Self {
        // Each processor's own component starts at 1 (the FastTrack
        // convention): clock 0 then unambiguously means "never accessed",
        // so an untouched slot in a read vector can never satisfy the
        // same-epoch fast path and mask a write/read check.
        let clocks: Vec<VectorClock> = (0..num_procs)
            .map(|p| {
                let mut c = VectorClock::new(num_procs);
                c.tick(p);
                c
            })
            .collect();
        RaceDetector {
            num_procs,
            word_size: word_size.max(1),
            clocks,
            refs: vec![0; num_procs],
            locks: BTreeMap::new(),
            barriers: BTreeMap::new(),
            words: BTreeMap::new(),
            stats: RaceStats::default(),
        }
    }

    /// Counters and reports accumulated so far.
    pub fn stats(&self) -> &RaceStats {
        &self.stats
    }

    /// Take the accumulated stats (end-of-run fold into `MachineStats`).
    pub fn take_stats(&mut self) -> RaceStats {
        std::mem::take(&mut self.stats)
    }

    /// True when no race has been detected so far.
    pub fn race_free(&self) -> bool {
        self.stats.race_free()
    }

    /// Processor `p`'s current vector clock.
    pub fn clock_of(&self, p: usize) -> &VectorClock {
        &self.clocks[p]
    }

    fn site(&mut self, p: usize, write: bool) -> RaceSite {
        self.refs[p] += 1;
        RaceSite { proc: p as u64, ref_index: self.refs[p], write }
    }

    fn report(
        stats: &mut RaceStats,
        racy: &mut bool,
        addr: u64,
        prior: RaceSite,
        current: RaceSite,
        clock: &VectorClock,
    ) {
        *racy = true;
        stats.races_found += 1;
        if stats.reports.len() < RaceStats::REPORT_CAP {
            stats.reports.push(RaceReport {
                addr,
                prior,
                current,
                clocks: clock.components().to_vec(),
            });
        }
    }

    /// Processor `p` reads the word containing byte address `a`.
    pub fn on_read(&mut self, p: usize, a: u64) {
        let site = self.site(p, false);
        let addr = a / self.word_size * self.word_size;
        let clock = &self.clocks[p];
        let stats = &mut self.stats;
        let word = match self.words.entry(addr) {
            std::collections::btree_map::Entry::Vacant(e) => {
                stats.words_monitored += 1;
                e.insert(WordMeta::new())
            }
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
        };

        // Same-epoch fast path: this processor already read the word in its
        // current segment, so every check below would re-pass.
        let own = Epoch { proc: p as u32, clock: clock.get(p) };
        match &word.read {
            ReadMeta::Epoch(e, _) if *e == own => {
                stats.epoch_fast_hits += 1;
                return;
            }
            ReadMeta::Vector(c, _) if c[p] == clock.get(p) => {
                stats.epoch_fast_hits += 1;
                return;
            }
            _ => {}
        }

        // Write/read check: the last write must be in our past.
        if let Some((w, wsite)) = word.write {
            if !w.ordered_before(clock) && !word.racy {
                Self::report(stats, &mut word.racy, addr, wsite, site, clock);
            }
        }

        // Update read metadata, promoting to a vector only on concurrency.
        match &mut word.read {
            r @ ReadMeta::None => *r = ReadMeta::Epoch(own, site),
            ReadMeta::Epoch(e, s) => {
                if e.ordered_before(clock) {
                    *e = own;
                    *s = site;
                } else {
                    stats.vector_promotions += 1;
                    let mut c = vec![0u64; self.num_procs];
                    let mut sites = vec![RaceSite::default(); self.num_procs];
                    c[e.proc as usize] = e.clock;
                    sites[e.proc as usize] = *s;
                    c[p] = own.clock;
                    sites[p] = site;
                    word.read = ReadMeta::Vector(c, sites);
                }
            }
            ReadMeta::Vector(c, sites) => {
                c[p] = own.clock;
                sites[p] = site;
            }
        }
    }

    /// Processor `p` writes the word containing byte address `a`.
    pub fn on_write(&mut self, p: usize, a: u64) {
        let site = self.site(p, true);
        let addr = a / self.word_size * self.word_size;
        let clock = &self.clocks[p];
        let stats = &mut self.stats;
        let word = match self.words.entry(addr) {
            std::collections::btree_map::Entry::Vacant(e) => {
                stats.words_monitored += 1;
                e.insert(WordMeta::new())
            }
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
        };

        // Same-epoch fast path: we already wrote this word in this segment.
        let own = Epoch { proc: p as u32, clock: clock.get(p) };
        if let Some((w, _)) = word.write {
            if w == own {
                stats.epoch_fast_hits += 1;
                return;
            }
        }

        // Write/write check.
        if let Some((w, wsite)) = word.write {
            if !w.ordered_before(clock) && !word.racy {
                Self::report(stats, &mut word.racy, addr, wsite, site, clock);
            }
        }

        // Read/write check: every prior read must be in our past.
        match &word.read {
            ReadMeta::None => {}
            ReadMeta::Epoch(e, rsite) => {
                if !e.ordered_before(clock) && !word.racy {
                    Self::report(stats, &mut word.racy, addr, *rsite, site, clock);
                }
            }
            ReadMeta::Vector(c, sites) => {
                if !word.racy {
                    // Smallest offending processor, for deterministic reports.
                    if let Some(r) = (0..self.num_procs).find(|&r| c[r] > clock.get(r)) {
                        let prior = sites[r];
                        Self::report(stats, &mut word.racy, addr, prior, site, clock);
                    }
                }
            }
        }

        // The write supersedes all ordered reads (and any racy ones are
        // already reported): future conflicts are caught against it.
        word.write = Some((own, site));
        word.read = ReadMeta::None;
    }

    /// Processor `p` releases lock `l`: publish `p`'s clock to the lock and
    /// open a new segment.
    pub fn on_release(&mut self, p: usize, l: u32) {
        let lock = self.locks.entry(l).or_insert_with(|| VectorClock::new(self.num_procs));
        lock.join(&self.clocks[p]);
        self.clocks[p].tick(p);
    }

    /// Processor `p`'s acquire of lock `l` is granted: join the lock's
    /// clock (everything every past releaser did is now ordered before us).
    pub fn on_acquire(&mut self, p: usize, l: u32) {
        if let Some(lock) = self.locks.get(&l) {
            self.clocks[p].join(lock);
        }
    }

    /// Processor `p` arrives at barrier `b` (`expected` = machine size):
    /// fold `p`'s clock into the episode and open a new segment. The
    /// machine blocks each processor until the episode completes, so at
    /// most one episode per barrier gathers at a time.
    pub fn on_barrier_arrive(&mut self, p: usize, b: u32, expected: usize) {
        let n = self.num_procs;
        let bar = self.barriers.entry(b).or_insert_with(|| BarrierClock {
            gather: VectorClock::new(n),
            arrivals: 0,
            completed: VectorClock::new(n),
        });
        bar.gather.join(&self.clocks[p]);
        self.clocks[p].tick(p);
        bar.arrivals += 1;
        if bar.arrivals == expected {
            bar.completed = std::mem::replace(&mut bar.gather, VectorClock::new(n));
            bar.arrivals = 0;
        }
    }

    /// Processor `p` departs barrier `b`: join the completed episode's
    /// clock — everything anyone did before arriving is now in `p`'s past.
    pub fn on_barrier_depart(&mut self, p: usize, b: u32) {
        if let Some(bar) = self.barriers.get(&b) {
            let completed = bar.completed.clone();
            self.clocks[p].join(&completed);
        }
    }

    /// Checkpoint the complete detector state as plain data (see
    /// [`RaceDetectorState`]). Maps flatten to sorted listings, so two
    /// captures of equal detectors are equal.
    pub fn save_state(&self) -> RaceDetectorState {
        RaceDetectorState {
            num_procs: self.num_procs,
            word_size: self.word_size,
            clocks: self.clocks.iter().map(|c| c.components().to_vec()).collect(),
            refs: self.refs.clone(),
            locks: self
                .locks
                .iter()
                .map(|(&l, c)| (l, c.components().to_vec()))
                .collect(),
            barriers: self
                .barriers
                .iter()
                .map(|(&b, bar)| BarrierState {
                    id: b,
                    gather: bar.gather.components().to_vec(),
                    arrivals: bar.arrivals,
                    completed: bar.completed.components().to_vec(),
                })
                .collect(),
            words: self
                .words
                .iter()
                .map(|(&addr, w)| WordState {
                    addr,
                    write: w.write.map(|(e, s)| (e.proc, e.clock, s)),
                    read: match &w.read {
                        ReadMeta::None => ReadState::None,
                        ReadMeta::Epoch(e, s) => ReadState::Epoch(e.proc, e.clock, *s),
                        ReadMeta::Vector(c, s) => ReadState::Vector(c.clone(), s.clone()),
                    },
                    racy: w.racy,
                })
                .collect(),
            stats: self.stats.clone(),
        }
    }

    /// Rebuild a detector from a checkpoint taken by
    /// [`RaceDetector::save_state`]. Fails with a description when any
    /// vector length disagrees with `num_procs`.
    pub fn from_state(st: RaceDetectorState) -> Result<RaceDetector, String> {
        let n = st.num_procs;
        let vc = |c: Vec<u64>, what: &str| -> Result<VectorClock, String> {
            if c.len() != n {
                return Err(format!("{what}: clock has {} components, expected {n}", c.len()));
            }
            Ok(VectorClock { c })
        };
        if st.clocks.len() != n || st.refs.len() != n {
            return Err(format!(
                "detector checkpoint shape mismatch: {} clocks / {} refs for {n} procs",
                st.clocks.len(),
                st.refs.len()
            ));
        }
        let mut d = RaceDetector::new(n, st.word_size);
        d.clocks = st
            .clocks
            .into_iter()
            .map(|c| vc(c, "processor clock"))
            .collect::<Result<_, _>>()?;
        d.refs = st.refs;
        d.locks = st
            .locks
            .into_iter()
            .map(|(l, c)| Ok((l, vc(c, "lock clock")?)))
            .collect::<Result<_, String>>()?;
        d.barriers = st
            .barriers
            .into_iter()
            .map(|b| {
                Ok((
                    b.id,
                    BarrierClock {
                        gather: vc(b.gather, "barrier gather clock")?,
                        arrivals: b.arrivals,
                        completed: vc(b.completed, "barrier episode clock")?,
                    },
                ))
            })
            .collect::<Result<_, String>>()?;
        d.words = st
            .words
            .into_iter()
            .map(|w| {
                let read = match w.read {
                    ReadState::None => ReadMeta::None,
                    ReadState::Epoch(proc, clock, s) => {
                        ReadMeta::Epoch(Epoch { proc, clock }, s)
                    }
                    ReadState::Vector(c, s) => {
                        if c.len() != n || s.len() != n {
                            return Err(format!(
                                "word {:#x}: read vector has {} entries, expected {n}",
                                w.addr,
                                c.len()
                            ));
                        }
                        ReadMeta::Vector(c, s)
                    }
                };
                let write = w.write.map(|(proc, clock, s)| (Epoch { proc, clock }, s));
                Ok((w.addr, WordMeta { write, read, racy: w.racy }))
            })
            .collect::<Result<_, String>>()?;
        d.stats = st.stats;
        Ok(d)
    }

    /// Fold the detector's state into a hasher (model-checker fingerprint
    /// support). Two machine states that differ only in detector state must
    /// not be merged by pruning, or races could go unreported on some
    /// interleavings. All maps are `BTreeMap`s, so iteration is ordered.
    pub fn hash_into<H: Hasher>(&self, h: &mut H) {
        self.clocks.hash(h);
        self.refs.hash(h);
        for (l, c) in &self.locks {
            l.hash(h);
            c.hash(h);
        }
        for (b, bar) in &self.barriers {
            b.hash(h);
            bar.gather.hash(h);
            bar.arrivals.hash(h);
            bar.completed.hash(h);
        }
        for (addr, w) in &self.words {
            addr.hash(h);
            w.racy.hash(h);
            if let Some((e, s)) = &w.write {
                e.proc.hash(h);
                e.clock.hash(h);
                s.ref_index.hash(h);
            }
            match &w.read {
                ReadMeta::None => 0u8.hash(h),
                ReadMeta::Epoch(e, _) => {
                    1u8.hash(h);
                    e.proc.hash(h);
                    e.clock.hash(h);
                }
                ReadMeta::Vector(c, _) => {
                    2u8.hash(h);
                    c.hash(h);
                }
            }
        }
        self.stats.races_found.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORD: u64 = 4;

    fn det(n: usize) -> RaceDetector {
        RaceDetector::new(n, WORD)
    }

    #[test]
    fn vector_clock_join_and_tick() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new(3);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.components(), &[2, 1, 0]);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn lock_handoff_is_race_free() {
        let mut d = det(2);
        // P0: acquire, write x, release. P1: acquire, read+write x, release.
        d.on_acquire(0, 0);
        d.on_write(0, 0x100);
        d.on_release(0, 0);
        d.on_acquire(1, 0);
        d.on_read(1, 0x100);
        d.on_write(1, 0x100);
        d.on_release(1, 0);
        assert!(d.race_free());
        assert_eq!(d.stats().words_monitored, 1);
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = det(2);
        d.on_write(0, 0x40);
        d.on_write(1, 0x40);
        assert!(!d.race_free());
        let r = &d.stats().reports[0];
        assert_eq!(r.addr, 0x40);
        assert_eq!((r.prior.proc, r.prior.write), (0, true));
        assert_eq!((r.current.proc, r.current.write), (1, true));
    }

    #[test]
    fn unsynchronized_write_read_races() {
        let mut d = det(2);
        d.on_write(0, 0x40);
        d.on_read(1, 0x40);
        assert_eq!(d.stats().races_found, 1);
        let r = &d.stats().reports[0];
        assert!(r.prior.write);
        assert!(!r.current.write);
    }

    #[test]
    fn concurrent_reads_do_not_race_but_promote() {
        let mut d = det(3);
        d.on_write(0, 0x40);
        d.on_release(0, 0);
        for p in [1, 2] {
            d.on_acquire(p, 0);
            d.on_read(p, 0x40);
        }
        assert!(d.race_free());
        assert_eq!(d.stats().vector_promotions, 1);
        // A later unordered write must race against one of the reads.
        d.on_write(0, 0x40);
        assert_eq!(d.stats().races_found, 1);
        let r = &d.stats().reports[0];
        assert_eq!(r.prior.proc, 1, "smallest concurrent reader is reported");
    }

    #[test]
    fn same_epoch_accesses_take_the_fast_path() {
        let mut d = det(2);
        d.on_write(0, 0x40);
        d.on_write(0, 0x40);
        d.on_read(0, 0x80);
        d.on_read(0, 0x80);
        assert_eq!(d.stats().epoch_fast_hits, 2);
        assert!(d.race_free());
    }

    #[test]
    fn barrier_orders_phases() {
        let mut d = det(2);
        d.on_write(0, 0x40);
        d.on_barrier_arrive(0, 0, 2);
        d.on_barrier_arrive(1, 0, 2);
        d.on_barrier_depart(0, 0);
        d.on_barrier_depart(1, 0);
        d.on_read(1, 0x40); // ordered by the barrier
        d.on_write(1, 0x40);
        assert!(d.race_free());
        // Next episode reuses the same barrier id without leaking edges.
        d.on_barrier_arrive(0, 0, 2);
        d.on_barrier_arrive(1, 0, 2);
        d.on_barrier_depart(0, 0);
        d.on_barrier_depart(1, 0);
        d.on_read(0, 0x40);
        assert!(d.race_free());
    }

    #[test]
    fn missing_barrier_races() {
        let mut d = det(2);
        d.on_write(0, 0x40);
        d.on_read(1, 0x40); // no barrier between them
        assert!(!d.race_free());
    }

    #[test]
    fn only_first_race_per_word_is_reported() {
        let mut d = det(3);
        d.on_write(0, 0x40);
        d.on_write(1, 0x40);
        d.on_write(2, 0x40);
        assert_eq!(d.stats().races_found, 1);
        assert_eq!(d.stats().reports.len(), 1);
        // A second racy word is reported separately.
        d.on_write(0, 0x80);
        d.on_write(1, 0x80);
        assert_eq!(d.stats().races_found, 2);
    }

    #[test]
    fn distinct_locks_do_not_order() {
        let mut d = det(2);
        d.on_acquire(0, 0);
        d.on_write(0, 0x40);
        d.on_release(0, 0);
        d.on_acquire(1, 1); // different lock: no edge
        d.on_read(1, 0x40);
        d.on_release(1, 1);
        assert!(!d.race_free());
    }

    #[test]
    fn reports_are_deterministic_across_reruns() {
        let run = || {
            let mut d = det(4);
            for i in 0..32u64 {
                let p = (i % 4) as usize;
                d.on_write(p, 0x40 + (i % 8) * 4);
                if i % 4 == 3 {
                    d.on_release(p, 0);
                    d.on_acquire((p + 1) % 4, 0);
                }
            }
            d.take_stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn word_granularity_groups_subword_bytes() {
        let mut d = det(2);
        d.on_write(0, 0x41); // same 4-byte word as 0x40
        d.on_read(1, 0x43);
        assert_eq!(d.stats().races_found, 1);
        assert_eq!(d.stats().words_monitored, 1);
        assert_eq!(d.stats().reports[0].addr, 0x40);
    }

    #[test]
    fn save_restore_round_trips_exactly() {
        let mut d = det(3);
        d.on_write(0, 0x40);
        d.on_release(0, 0);
        d.on_acquire(1, 0);
        d.on_read(1, 0x40);
        d.on_read(2, 0x40); // concurrent reader: promotes + races
        d.on_barrier_arrive(0, 1, 3);
        let st = d.save_state();
        let d2 = RaceDetector::from_state(st.clone()).expect("restore");
        assert_eq!(d, d2);
        assert_eq!(d2.save_state(), st);
    }

    #[test]
    fn restore_rejects_malformed_shapes() {
        let d = det(2);
        let mut st = d.save_state();
        st.clocks[0].push(9); // wrong component count
        assert!(RaceDetector::from_state(st).is_err());
        let mut st = d.save_state();
        st.refs.pop();
        assert!(RaceDetector::from_state(st).is_err());
    }

    #[test]
    fn hash_reflects_detector_state() {
        use std::collections::hash_map::DefaultHasher;
        let fp = |d: &RaceDetector| {
            let mut h = DefaultHasher::new();
            d.hash_into(&mut h);
            h.finish()
        };
        let mut a = det(2);
        let mut b = det(2);
        assert_eq!(fp(&a), fp(&b));
        a.on_write(0, 0x40);
        assert_ne!(fp(&a), fp(&b), "word metadata must distinguish states");
        b.on_write(0, 0x40);
        assert_eq!(fp(&a), fp(&b));
        a.on_release(0, 0);
        assert_ne!(fp(&a), fp(&b), "lock clocks must distinguish states");
    }
}

//! Property tests for canonical serialization: the canonical dump of an
//! object must be byte-stable under any permutation of key insertion
//! order, at every nesting depth. Randomized with a seeded SplitMix64 so
//! failures reproduce.

use lrc_json::{canonical_dump, json, parse, Value};

/// SplitMix64 — the same tiny deterministic generator the stats layer
/// uses, re-implemented here because lrc-json must stay dependency-free.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Fisher–Yates over a vector of object fields.
fn shuffle<T>(items: &mut [T], rng: &mut Mix) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.below(i + 1));
    }
}

/// Recursively permute the insertion order of every object in `v`.
fn permute(v: &Value, rng: &mut Mix) -> Value {
    match v {
        Value::Object(fields) => {
            let mut fields: Vec<(String, Value)> =
                fields.iter().map(|(k, x)| (k.clone(), permute(x, rng))).collect();
            shuffle(&mut fields, rng);
            Value::Object(fields)
        }
        Value::Array(items) => Value::Array(items.iter().map(|x| permute(x, rng)).collect()),
        other => other.clone(),
    }
}

/// A random JSON document with nested objects/arrays, depth-bounded.
fn random_doc(rng: &mut Mix, depth: usize) -> Value {
    match if depth == 0 { rng.below(4) } else { rng.below(6) } {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Num(rng.below(100_000) as f64 / 7.0),
        3 => Value::Str(format!("s{}", rng.below(1000))),
        4 => Value::Array((0..rng.below(5)).map(|_| random_doc(rng, depth - 1)).collect()),
        _ => Value::Object(
            (0..rng.below(6)).map(|i| (format!("k{}_{i}", rng.below(20)), random_doc(rng, depth - 1))).collect(),
        ),
    }
}

#[test]
fn canonical_dump_is_byte_stable_across_insertion_orders() {
    let mut rng = Mix(0xC0DE);
    for case in 0..200 {
        let doc = random_doc(&mut rng, 4);
        let reference = canonical_dump(&doc);
        for round in 0..8 {
            let shuffled = permute(&doc, &mut rng);
            assert_eq!(
                canonical_dump(&shuffled),
                reference,
                "case {case} round {round}: canonical dump depends on insertion order\ndoc: {}",
                doc.dump()
            );
        }
    }
}

#[test]
fn canonical_dump_survives_a_parse_round_trip() {
    let mut rng = Mix(0x5EED);
    for _ in 0..100 {
        let doc = random_doc(&mut rng, 3);
        let dumped = canonical_dump(&doc);
        let reparsed = parse(&dumped).expect("canonical output parses");
        assert_eq!(canonical_dump(&reparsed), dumped, "round trip changed bytes");
    }
}

#[test]
fn canonical_dump_sorts_keys_and_keeps_array_order() {
    let a = json!({ "b": 1, "a": [3, 1, 2], "c": { "z": 0, "y": 1 } });
    assert_eq!(canonical_dump(&a), r#"{"a":[3,1,2],"b":1,"c":{"y":1,"z":0}}"#);
}

//! `lrc-json` — a small, self-contained JSON layer.
//!
//! The experiment harness emits machine-readable reports and the test
//! suite round-trips configuration/stats structures. The build runs in
//! fully offline environments, so instead of an external JSON dependency
//! this crate provides the minimal surface the workspace needs: an ordered
//! [`Value`] type, a [`json!`] construction macro, compact and pretty
//! printers, a strict parser, and [`ToJson`]/[`FromJson`] conversion
//! traits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `json!` muncher builds containers by init-then-push; expansions in
// this crate are not "external macro" code, so clippy must be allowed here
// (downstream crates are exempt automatically).
#![allow(clippy::vec_init_then_push)]

mod canon;
mod parse;
mod print;

pub use canon::{canonical_dump, canonicalize};
pub use parse::{parse, ParseError};
pub use print::{to_string, to_string_pretty};

use std::ops::Index;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like most JS runtimes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Value)>),
}

/// Shared `Null` used when indexing misses (lets `v["absent"]` return a
/// reference, mirroring the ergonomics of mainstream JSON crates).
static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; `None` if `self` is not an object or lacks `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` if not an array or out of range.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as an object (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned-integer view (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Signed-integer view (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Insert or replace a member. A non-object silently becomes an object
    /// first, so optional report sections can be appended without matching
    /// on the variant at every call site.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        if !self.is_object() {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(fields) = self else { unreachable!() };
        let value = value.into();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
    }

    /// Compact rendering (no whitespace).
    pub fn dump(&self) -> String {
        to_string(self)
    }

    /// Pretty rendering (2-space indent).
    pub fn pretty(&self) -> String {
        to_string_pretty(self)
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.get_index(i).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::Str(s.clone())
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Num(n as f64)
            }
        })*
    };
}
from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(items: [T; N]) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        o.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

/// Why a struct field failed to reconstruct from JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldReason {
    /// The key is absent from the object.
    Missing,
    /// The key is present but its value has the wrong shape or domain.
    Invalid,
}

/// A struct could not be reconstructed from JSON: names the offending
/// type and field instead of collapsing every failure into `None`.
/// Produced by the `from_json_detailed` constructor that [`json_struct!`]
/// generates alongside the [`FromJson`] impl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldError {
    /// Name of the struct being reconstructed.
    pub type_name: &'static str,
    /// The field that failed.
    pub field: &'static str,
    /// How it failed.
    pub reason: FieldReason,
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            FieldReason::Missing => {
                write!(f, "{}: missing field `{}`", self.type_name, self.field)
            }
            FieldReason::Invalid => write!(
                f,
                "{}: field `{}` has the wrong shape or an out-of-domain value",
                self.type_name, self.field
            ),
        }
    }
}

impl std::error::Error for FieldError {}

/// Types that render themselves as a JSON [`Value`].
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`]. Returns `None` on shape or
/// domain mismatch.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json(v: &Value) -> Option<Self>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Option<Value> {
        Some(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Option<bool> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Option<String> {
        v.as_str().map(str::to_string)
    }
}

macro_rules! json_uint {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Option<$t> {
                v.as_u64().and_then(|n| <$t>::try_from(n).ok())
            }
        })*
    };
}
json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Option<$t> {
                v.as_i64().and_then(|n| <$t>::try_from(n).ok())
            }
        })*
    };
}
json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Option<f64> {
        v.as_f64()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Option<Vec<T>> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Option<Option<T>> {
        if v.is_null() {
            Some(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

/// Build a [`Value`] with JSON-looking syntax:
///
/// ```
/// use lrc_json::json;
/// let v = json!({ "name": "lrc", "sizes": [1, 2, 3], "ok": true });
/// assert_eq!(v["sizes"][2].as_u64(), Some(3));
/// ```
///
/// Keys must be string literals; values are any expression convertible
/// into a `Value` via `From`, or nested `{...}` / `[...]` forms.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_items!(items $($tt)*);
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_fields!(fields $($tt)*);
        $crate::Value::Object(fields)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal muncher for `json!` array bodies. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($vec:ident) => {};
    ($vec:ident null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $( $crate::json_items!($vec $($rest)*); )?
    };
    ($vec:ident [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($arr)* ]));
        $( $crate::json_items!($vec $($rest)*); )?
    };
    ($vec:ident { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($obj)* }));
        $( $crate::json_items!($vec $($rest)*); )?
    };
    ($vec:ident $val:expr $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::from($val));
        $( $crate::json_items!($vec $($rest)*); )?
    };
}

/// Internal muncher for `json!` object bodies. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_fields {
    ($vec:ident) => {};
    ($vec:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_fields!($vec $($rest)*); )?
    };
    ($vec:ident $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::json!([ $($arr)* ])));
        $( $crate::json_fields!($vec $($rest)*); )?
    };
    ($vec:ident $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::json!({ $($obj)* })));
        $( $crate::json_fields!($vec $($rest)*); )?
    };
    ($vec:ident $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::Value::from($val)));
        $( $crate::json_fields!($vec $($rest)*); )?
    };
}

/// Implement [`ToJson`] + [`FromJson`] for a plain struct by listing its
/// fields. Every field type must itself implement both traits. Also
/// generates an inherent `from_json_detailed` constructor whose error
/// names the first offending field (see [`FieldError`]).
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)) ),*
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Option<Self> {
                Some(Self {
                    $( $field: $crate::FromJson::from_json(v.get(stringify!($field))?)? ),*
                })
            }
        }
        impl $ty {
            /// Reconstruct from JSON; the error names the first field that
            /// is missing or has the wrong shape.
            #[allow(dead_code)]
            pub fn from_json_detailed(v: &$crate::Value) -> Result<Self, $crate::FieldError> {
                Ok(Self {
                    $( $field: match v.get(stringify!($field)) {
                        None => {
                            return Err($crate::FieldError {
                                type_name: stringify!($ty),
                                field: stringify!($field),
                                reason: $crate::FieldReason::Missing,
                            })
                        }
                        Some(fv) => match $crate::FromJson::from_json(fv) {
                            Some(x) => x,
                            None => {
                                return Err($crate::FieldError {
                                    type_name: stringify!($ty),
                                    field: stringify!($field),
                                    reason: $crate::FieldReason::Invalid,
                                })
                            }
                        },
                    } ),*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let rows = vec![json!({ "a": 1 }), json!({ "a": 2 })];
        let v = json!({ "rows": rows, "tag": "x", "n": 3u64, "flag": false, "nested": { "k": [1, "two", null] } });
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert_eq!(v["rows"][1]["a"].as_u64(), Some(2));
        assert_eq!(v["tag"].as_str(), Some("x"));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["flag"].as_bool(), Some(false));
        assert!(v["nested"]["k"][2].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn integer_views_reject_fractions() {
        assert_eq!(Value::Num(2.5).as_u64(), None);
        assert_eq!(Value::Num(-3.0).as_u64(), None);
        assert_eq!(Value::Num(-3.0).as_i64(), Some(-3));
    }

    #[test]
    fn struct_macro_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct P {
            x: u64,
            y: String,
            zs: Vec<u32>,
        }
        json_struct!(P { x, y, zs });
        let p = P { x: 7, y: "hi".into(), zs: vec![1, 2] };
        let v = p.to_json();
        assert_eq!(P::from_json(&v), Some(p));
        assert_eq!(P::from_json(&json!({ "x": 7 })), None);
    }

    #[test]
    fn set_inserts_replaces_and_upgrades() {
        let mut v = json!({ "a": 1 });
        v.set("b", "two");
        v.set("a", 3u64);
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["b"].as_str(), Some("two"));
        let mut n = Value::Null;
        n.set("k", vec![1u64, 2]);
        assert_eq!(n["k"].get_index(1).and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn detailed_errors_name_the_offending_field() {
        #[derive(Debug, PartialEq)]
        struct Q {
            a: u64,
            b: String,
        }
        json_struct!(Q { a, b });
        let ok = Q::from_json_detailed(&json!({ "a": 1, "b": "x" }));
        assert_eq!(ok, Ok(Q { a: 1, b: "x".into() }));
        let missing = Q::from_json_detailed(&json!({ "a": 1 })).unwrap_err();
        assert_eq!((missing.type_name, missing.field, missing.reason), ("Q", "b", FieldReason::Missing));
        assert_eq!(missing.to_string(), "Q: missing field `b`");
        let invalid = Q::from_json_detailed(&json!({ "a": -2, "b": "x" })).unwrap_err();
        assert_eq!((invalid.field, invalid.reason), ("a", FieldReason::Invalid));
        assert!(invalid.to_string().contains("field `a`"));
    }
}

//! Canonical JSON: a deterministic byte rendering independent of object
//! insertion order.
//!
//! The experiment lab content-addresses artifacts by hashing their JSON
//! serialization, and run manifests carry a hash of the configuration that
//! produced a result. Both are only sound if serialization is a pure
//! function of the *value*, not of the order code happened to insert
//! fields. [`Value::Object`] preserves insertion order by design (reports
//! read better that way), so canonicalization is a separate, explicit
//! step:
//!
//! * object members are sorted by key (byte order), recursively;
//! * duplicate keys keep the **last** occurrence (matching what a
//!   sequential [`Value::set`] loop would leave behind);
//! * arrays keep their order (position is meaning);
//! * rendering is the compact printer — no whitespace, integers without a
//!   decimal point, shortest-round-trip floats — so equal values produce
//!   equal bytes.

use crate::{to_string, Value};

/// A copy of `v` with every object's members sorted by key, recursively.
/// Arrays keep their element order. Duplicate keys (possible via the
/// parser, never via [`Value::set`]) collapse to the last occurrence.
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Object(fields) => {
            let mut out: Vec<(String, Value)> = Vec::with_capacity(fields.len());
            for (k, val) in fields {
                let cv = canonicalize(val);
                match out.iter_mut().find(|(ok, _)| ok == k) {
                    Some((_, slot)) => *slot = cv,
                    None => out.push((k.clone(), cv)),
                }
            }
            out.sort_by(|(a, _), (b, _)| a.as_bytes().cmp(b.as_bytes()));
            Value::Object(out)
        }
        other => other.clone(),
    }
}

/// The canonical byte rendering of `v`: [`canonicalize`] + compact print.
/// Two structurally equal values render identically regardless of the
/// order their objects were built in — this is the string the experiment
/// lab hashes.
pub fn canonical_dump(v: &Value) -> String {
    to_string(&canonicalize(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn objects_sort_recursively() {
        let a = json!({ "b": { "y": 1, "x": 2 }, "a": [ { "k": 1, "j": 2 } ] });
        assert_eq!(canonical_dump(&a), r#"{"a":[{"j":2,"k":1}],"b":{"x":2,"y":1}}"#);
    }

    #[test]
    fn insertion_order_is_erased() {
        let mut a = Value::Object(Vec::new());
        a.set("z", 1u64);
        a.set("a", "s");
        let mut b = Value::Object(Vec::new());
        b.set("a", "s");
        b.set("z", 1u64);
        assert_ne!(a.dump(), b.dump(), "plain dump preserves insertion order");
        assert_eq!(canonical_dump(&a), canonical_dump(&b));
    }

    #[test]
    fn arrays_keep_order() {
        let v = json!([3, 1, 2]);
        assert_eq!(canonical_dump(&v), "[3,1,2]");
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = Value::Object(vec![
            ("k".to_string(), json!(1)),
            ("k".to_string(), json!(2)),
        ]);
        assert_eq!(canonical_dump(&v), r#"{"k":2}"#);
    }
}

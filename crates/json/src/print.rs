//! Compact and pretty JSON rendering.

use crate::Value;
use std::fmt::Write;

/// Render `v` with no whitespace.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Render `v` with newlines and 2-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; degrade to null like lenient emitters do.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::json;

    #[test]
    fn compact_rendering() {
        let v = json!({ "a": [1, 2.5], "s": "x\"y", "n": null });
        assert_eq!(v.dump(), r#"{"a":[1,2.5],"s":"x\"y","n":null}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = json!({ "a": [1] });
        assert_eq!(v.pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(json!(3u64).dump(), "3");
        assert_eq!(json!(-4i64).dump(), "-4");
        assert_eq!(json!(0.125f64).dump(), "0.125");
    }
}

//! A strict recursive-descent JSON parser.

use crate::Value;

/// Parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode \uD8xx\uDCxx pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain characters in one go.
                    // The run ends at '"' or '\\' — both ASCII, so the slice
                    // boundaries fall on scalar boundaries of the input &str
                    // and the UTF-8 revalidation is over the run only.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { at: start, msg: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v = json!({
            "title": "lazy \"rc\"",
            "rows": [{ "x": 1, "y": -2.5 }, { "x": 2, "y": 0.0 }],
            "empty": [],
            "none": null,
            "ok": true
        });
        assert_eq!(parse(&v.dump()).unwrap(), v);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\n\tA\"""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\tA\""));
    }
}

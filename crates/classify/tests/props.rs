//! Property tests for the miss classifier.

use lrc_classify::Classifier;
use lrc_sim::{LineAddr, MissClass};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Ev {
    Write(usize, u64, usize),
    Evict(usize, u64),
    Inval(usize, u64),
    Miss(usize, u64, usize, bool),
}

fn ev() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0usize..4, 0u64..8, 0usize..8).prop_map(|(p, l, w)| Ev::Write(p, l, w)),
        (0usize..4, 0u64..8).prop_map(|(p, l)| Ev::Evict(p, l)),
        (0usize..4, 0u64..8).prop_map(|(p, l)| Ev::Inval(p, l)),
        (0usize..4, 0u64..8, 0usize..8, any::<bool>()).prop_map(|(p, l, w, u)| Ev::Miss(p, l, w, u)),
    ]
}

proptest! {
    /// Every miss gets exactly one class; the first non-upgrade miss per
    /// (proc, block) is Cold and Cold never repeats.
    #[test]
    fn classification_is_total_and_cold_once(events in prop::collection::vec(ev(), 1..200)) {
        let mut c = Classifier::new(4, 8);
        let mut cold_seen: std::collections::HashSet<(usize, u64)> = Default::default();
        let mut touched: std::collections::HashSet<(usize, u64)> = Default::default();
        for e in events {
            match e {
                Ev::Write(p, l, w) => c.record_write(p, LineAddr(l), w),
                Ev::Evict(p, l) => c.on_evict(p, LineAddr(l)),
                Ev::Inval(p, l) => c.on_invalidate(p, LineAddr(l)),
                Ev::Miss(p, l, w, upgrade) => {
                    let class = c.classify_miss(p, LineAddr(l), w, upgrade);
                    if upgrade {
                        prop_assert_eq!(class, MissClass::Upgrade);
                    } else if !touched.contains(&(p, l)) {
                        prop_assert_eq!(class, MissClass::Cold);
                        prop_assert!(cold_seen.insert((p, l)), "cold repeated");
                    } else {
                        prop_assert_ne!(class, MissClass::Cold, "cold after first touch");
                    }
                    // Any miss (upgrade included — the block was present
                    // read-only) marks the block as cached by `p`.
                    touched.insert((p, l));
                }
            }
        }
    }

    /// A miss right after an invalidation classifies as sharing (true or
    /// false), never eviction.
    #[test]
    fn invalidation_implies_sharing_class(p in 0usize..4, l in 0u64..8, w in 0usize..8) {
        let mut c = Classifier::new(4, 8);
        let _ = c.classify_miss(p, LineAddr(l), w, false); // cold; now cached
        c.on_invalidate(p, LineAddr(l));
        let class = c.classify_miss(p, LineAddr(l), w, false);
        prop_assert!(
            class == MissClass::TrueShare || class == MissClass::FalseShare,
            "{class:?}"
        );
    }
}

//! Property tests for the miss classifier, driven by the simulation
//! kernel's deterministic PRNG.

use lrc_classify::Classifier;
use lrc_sim::{LineAddr, MissClass, Rng};

#[derive(Debug, Clone)]
enum Ev {
    Write(usize, u64, usize),
    Evict(usize, u64),
    Inval(usize, u64),
    Miss(usize, u64, usize, bool),
}

fn random_event(rng: &mut Rng) -> Ev {
    let p = rng.below(4) as usize;
    let l = rng.below(8);
    let w = rng.below(8) as usize;
    match rng.below(4) {
        0 => Ev::Write(p, l, w),
        1 => Ev::Evict(p, l),
        2 => Ev::Inval(p, l),
        _ => Ev::Miss(p, l, w, rng.chance(0.5)),
    }
}

/// Every miss gets exactly one class; the first non-upgrade miss per
/// (proc, block) is Cold and Cold never repeats.
#[test]
fn classification_is_total_and_cold_once() {
    let mut rng = Rng::new(0x5eed_0c01);
    for _ in 0..40 {
        let n = 1 + rng.below(200) as usize;
        let mut c = Classifier::new(4, 8);
        let mut cold_seen: std::collections::HashSet<(usize, u64)> = Default::default();
        let mut touched: std::collections::HashSet<(usize, u64)> = Default::default();
        for _ in 0..n {
            match random_event(&mut rng) {
                Ev::Write(p, l, w) => c.record_write(p, LineAddr(l), w),
                Ev::Evict(p, l) => c.on_evict(p, LineAddr(l)),
                Ev::Inval(p, l) => c.on_invalidate(p, LineAddr(l)),
                Ev::Miss(p, l, w, upgrade) => {
                    let class = c.classify_miss(p, LineAddr(l), w, upgrade);
                    if upgrade {
                        assert_eq!(class, MissClass::Upgrade);
                    } else if !touched.contains(&(p, l)) {
                        assert_eq!(class, MissClass::Cold);
                        assert!(cold_seen.insert((p, l)), "cold repeated");
                    } else {
                        assert_ne!(class, MissClass::Cold, "cold after first touch");
                    }
                    // Any miss (upgrade included — the block was present
                    // read-only) marks the block as cached by `p`.
                    touched.insert((p, l));
                }
            }
        }
    }
}

/// A miss right after an invalidation classifies as sharing (true or
/// false), never eviction.
#[test]
fn invalidation_implies_sharing_class() {
    let mut rng = Rng::new(0x5eed_0c02);
    for _ in 0..100 {
        let p = rng.below(4) as usize;
        let l = rng.below(8);
        let w = rng.below(8) as usize;
        let mut c = Classifier::new(4, 8);
        let _ = c.classify_miss(p, LineAddr(l), w, false); // cold; now cached
        c.on_invalidate(p, LineAddr(l));
        let class = c.classify_miss(p, LineAddr(l), w, false);
        assert!(
            class == MissClass::TrueShare || class == MissClass::FalseShare,
            "{class:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Agreement with the model checker's reference interpreter (lrc_sim::refint).
//
// A random data-race-free micro script (every data access inside a lock-0
// critical section) is serialized by a random but program-order-respecting
// grant order. Walking that serialization drives the classifier exactly the
// way the machine does (miss → classify, write → record + invalidate other
// copies, random evictions) while an oracle tracks the last WriteId per word
// — the same symbolic values the checker compares. Two properties follow:
//
//  * the reference interpreter, replaying the script under the recorded
//    grant order, must reproduce the oracle's final memory exactly;
//  * every sharing verdict of the classifier must coincide with a genuine
//    WriteId change: TrueShare iff the missed word's last writer changed
//    while the processor did not hold the line.
// ---------------------------------------------------------------------------

mod refint_agreement {
    use lrc_classify::Classifier;
    use lrc_sim::refint::{self, WriteId};
    use lrc_sim::{LineAddr, MissClass, Op, Rng, Script};
    use std::collections::{BTreeMap, BTreeSet};

    const LINE_SIZE: usize = 16;
    const WORD_SIZE: usize = 4;
    const WORDS: u64 = 4;
    const LINES: u64 = 2;

    /// One data access inside a critical section.
    #[derive(Clone, Copy)]
    struct Access {
        write: bool,
        line: u64,
        word: u64,
    }

    fn random_cs(rng: &mut Rng) -> Vec<Access> {
        let n = 1 + rng.below(3) as usize;
        (0..n)
            .map(|_| Access {
                write: rng.chance(0.5),
                line: rng.below(LINES),
                word: rng.below(WORDS),
            })
            .collect()
    }

    /// Per-processor critical sections plus the script they compile to.
    fn random_program(rng: &mut Rng, procs: usize) -> (Vec<Vec<Vec<Access>>>, Script) {
        let cs: Vec<Vec<Vec<Access>>> = (0..procs)
            .map(|_| (0..1 + rng.below(3) as usize).map(|_| random_cs(rng)).collect())
            .collect();
        let streams = cs
            .iter()
            .map(|sections| {
                let mut ops = Vec::new();
                for sec in sections {
                    ops.push(Op::Acquire(0));
                    for a in sec {
                        let addr = a.line * LINE_SIZE as u64 + a.word * WORD_SIZE as u64;
                        ops.push(if a.write { Op::Write(addr) } else { Op::Read(addr) });
                    }
                    ops.push(Op::Release(0));
                }
                ops
            })
            .collect();
        (cs, Script::new("micro", streams))
    }

    /// A random interleaving of whole critical sections that respects each
    /// processor's program order.
    fn random_serialization(rng: &mut Rng, cs: &[Vec<Vec<Access>>]) -> Vec<usize> {
        let mut remaining: Vec<usize> = cs.iter().map(Vec::len).collect();
        let mut order = Vec::new();
        while remaining.iter().any(|&r| r > 0) {
            let live: Vec<usize> =
                (0..cs.len()).filter(|&p| remaining[p] > 0).collect();
            let p = live[rng.below(live.len() as u64) as usize];
            order.push(p);
            remaining[p] -= 1;
        }
        order
    }

    /// How a processor last lost a line, plus the line's symbolic contents
    /// at that moment.
    enum Lost {
        Invalidated(BTreeMap<u64, WriteId>),
        Evicted(BTreeMap<u64, WriteId>),
    }

    #[test]
    fn classifier_and_reference_interpreter_agree_on_micro_scripts() {
        let mut rng = Rng::new(0x5eed_0c03);
        for iter in 0..200 {
            let procs = 2 + rng.below(2) as usize;
            let (cs, script) = random_program(&mut rng, procs);
            let order = random_serialization(&mut rng, &cs);
            let grant_order: Vec<(u32, usize)> = order.iter().map(|&p| (0u32, p)).collect();

            let mut classifier = Classifier::new(procs, LINE_SIZE / WORD_SIZE);
            let mut oracle: BTreeMap<(u64, u64), WriteId> = BTreeMap::new();
            let mut seq = vec![0u64; procs];
            let mut cached: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); procs];
            let mut ever_cached: BTreeSet<(usize, u64)> = BTreeSet::new();
            let mut lost: BTreeMap<(usize, u64), Lost> = BTreeMap::new();
            let mut next_cs = vec![0usize; procs];

            let line_words = |oracle: &BTreeMap<(u64, u64), WriteId>, l: u64| {
                oracle
                    .range((l, 0)..(l, WORDS))
                    .map(|(&(_, w), &id)| (w, id))
                    .collect::<BTreeMap<u64, WriteId>>()
            };

            for &p in &order {
                let section = &cs[p][next_cs[p]];
                next_cs[p] += 1;
                for a in section {
                    // Random replacement pressure to exercise the eviction
                    // class.
                    if rng.chance(0.15) {
                        if let Some(&victim) = cached[p].iter().next() {
                            classifier.on_evict(p, LineAddr(victim));
                            cached[p].remove(&victim);
                            lost.insert((p, victim), Lost::Evicted(line_words(&oracle, victim)));
                        }
                    }

                    if !cached[p].contains(&a.line) {
                        let got =
                            classifier.classify_miss(p, LineAddr(a.line), a.word as usize, false);
                        let expected = match lost.remove(&(p, a.line)) {
                            _ if !ever_cached.contains(&(p, a.line)) => MissClass::Cold,
                            Some(Lost::Invalidated(snap)) => {
                                if snap.get(&a.word) != oracle.get(&(a.line, a.word)) {
                                    MissClass::TrueShare
                                } else {
                                    MissClass::FalseShare
                                }
                            }
                            Some(Lost::Evicted(snap)) => {
                                if snap.get(&a.word) != oracle.get(&(a.line, a.word)) {
                                    MissClass::TrueShare
                                } else {
                                    MissClass::Eviction
                                }
                            }
                            None => unreachable!("missing line was never lost"),
                        };
                        assert_eq!(got, expected, "iter {iter}: P{p} miss on {:?}", (a.line, a.word));
                        cached[p].insert(a.line);
                        ever_cached.insert((p, a.line));
                    }

                    if a.write {
                        classifier.record_write(p, LineAddr(a.line), a.word as usize);
                        seq[p] += 1;
                        oracle.insert((a.line, a.word), WriteId { proc: p, seq: seq[p] });
                        for (q, qcached) in cached.iter_mut().enumerate() {
                            if q != p && qcached.remove(&a.line) {
                                classifier.on_invalidate(q, LineAddr(a.line));
                                lost.insert((q, a.line), Lost::Invalidated(line_words(&oracle, a.line)));
                            }
                        }
                    }
                }
            }

            // The reference interpreter must reproduce the oracle's final
            // memory when replaying the script under the observed grant
            // order.
            let ref_mem = refint::interpret(&script, LINE_SIZE, WORD_SIZE, &grant_order)
                .unwrap_or_else(|e| panic!("iter {iter}: {e}"));
            let oracle_mem: BTreeMap<(u64, usize), WriteId> =
                oracle.iter().map(|(&(l, w), &id)| ((l, w as usize), id)).collect();
            assert_eq!(ref_mem, oracle_mem, "iter {iter}: reference/oracle divergence");
        }
    }

    #[test]
    fn reference_interpreter_is_grant_order_sensitive() {
        // Two writers to the same word under one lock: the grant order
        // decides the final WriteId, and the interpreter must follow it.
        let script = || {
            Script::new(
                "wlock",
                vec![
                    vec![Op::Acquire(0), Op::Write(0), Op::Release(0)],
                    vec![Op::Acquire(0), Op::Write(0), Op::Release(0)],
                ],
            )
        };
        let a = refint::interpret(&script(), LINE_SIZE, WORD_SIZE, &[(0u32, 0usize), (0, 1)]).unwrap();
        let b = refint::interpret(&script(), LINE_SIZE, WORD_SIZE, &[(0u32, 1usize), (0, 0)]).unwrap();
        assert_eq!(a[&(0, 0)], WriteId { proc: 1, seq: 1 });
        assert_eq!(b[&(0, 0)], WriteId { proc: 0, seq: 1 });
    }
}

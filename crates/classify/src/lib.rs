//! `lrc-classify` — online miss classification in the style of Bianchini &
//! Kontothanassis (paper reference [3]), producing the five categories of
//! the paper's Table 2: **cold**, **true-sharing**, **false-sharing**,
//! **eviction**, and **write** (upgrade) misses.
//!
//! # Classification rules
//!
//! Every block keeps, per word, the identity of the last writer and a global
//! write version; and, per processor, whether the processor has ever cached
//! the block and how it last lost it (replacement vs. invalidation). A miss
//! by processor `P` on word `w` is then classified with the following
//! priority:
//!
//! 1. **Write (upgrade)** — the block is present read-only and only write
//!    permission is missing (no data transfer happens).
//! 2. **Cold** — `P` has never cached the block.
//! 3. Block was lost to an **invalidation**: if some other processor wrote
//!    `w` after the loss, the miss is **true-sharing**; otherwise the
//!    invalidation was caused purely by writes to other words and the miss
//!    is **false-sharing**.
//! 4. Block was lost to a **replacement**: if some other processor wrote `w`
//!    after the loss the data is genuinely new and we report
//!    **true-sharing**; otherwise **eviction**.
//!
//! The classifier is protocol-agnostic: the machine reports writes,
//! invalidations, evictions, and misses; the classifier never influences
//! timing. It is optional (Table-2 runs enable it; performance runs skip it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

use lrc_sim::{LineAddr, MissClass, ProcId};
use std::collections::HashMap;

const NO_WRITER: u8 = u8::MAX;

#[derive(Debug, Clone, Copy)]
struct WordInfo {
    version: u32,
    writer: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)]
enum Lost {
    /// Currently cached (or never cached — see `ever_cached`).
    NotLost,
    Evicted { at_version: u32 },
    Invalidated { at_version: u32 },
}

#[derive(Debug, Clone, Copy)]
struct ProcView {
    ever_cached: bool,
    lost: Lost,
}

#[derive(Debug, Clone)]
struct BlockInfo {
    words: Box<[WordInfo]>,
    procs: Box<[ProcView]>,
}

/// Online miss classifier. One instance observes one simulation run.
#[derive(Debug, Clone)]
pub struct Classifier {
    num_procs: usize,
    words_per_line: usize,
    version: u32,
    blocks: HashMap<u64, BlockInfo>,
}

impl Classifier {
    /// Classifier for `num_procs` processors and `words_per_line` words per
    /// cache line.
    pub fn new(num_procs: usize, words_per_line: usize) -> Self {
        assert!(num_procs < NO_WRITER as usize);
        assert!(words_per_line > 0 && words_per_line <= 64);
        Classifier { num_procs, words_per_line, version: 0, blocks: HashMap::new() }
    }

    fn block(&mut self, line: LineAddr) -> &mut BlockInfo {
        let (np, wpl) = (self.num_procs, self.words_per_line);
        self.blocks.entry(line.0).or_insert_with(|| BlockInfo {
            words: vec![WordInfo { version: 0, writer: NO_WRITER }; wpl].into_boxed_slice(),
            procs: vec![ProcView { ever_cached: false, lost: Lost::NotLost }; np].into_boxed_slice(),
        })
    }

    /// Record that `proc` wrote word `word` of `line`.
    pub fn record_write(&mut self, proc: ProcId, line: LineAddr, word: usize) {
        debug_assert!(word < self.words_per_line);
        self.version += 1;
        let v = self.version;
        let b = self.block(line);
        b.words[word] = WordInfo { version: v, writer: proc as u8 };
    }

    /// Record that `proc` lost `line` to a capacity/conflict replacement.
    pub fn on_evict(&mut self, proc: ProcId, line: LineAddr) {
        let v = self.version;
        let b = self.block(line);
        b.procs[proc].lost = Lost::Evicted { at_version: v };
    }

    /// Record that `proc`'s copy of `line` was invalidated by the coherence
    /// protocol (eager invalidation or acquire-time invalidation).
    pub fn on_invalidate(&mut self, proc: ProcId, line: LineAddr) {
        let v = self.version;
        let b = self.block(line);
        b.procs[proc].lost = Lost::Invalidated { at_version: v };
    }

    /// Classify a miss by `proc` on `word` of `line`.
    ///
    /// `upgrade_only` is true when the block is present read-only and the
    /// miss is purely for write permission. Calling this marks the block
    /// cached by `proc` again.
    pub fn classify_miss(
        &mut self,
        proc: ProcId,
        line: LineAddr,
        word: usize,
        upgrade_only: bool,
    ) -> MissClass {
        debug_assert!(word < self.words_per_line);
        let b = self.block(line);
        let view = b.procs[proc];
        let class = if upgrade_only {
            MissClass::Upgrade
        } else if !view.ever_cached {
            MissClass::Cold
        } else {
            let w = b.words[word];
            let remote_wrote_since =
                |at: u32| w.writer != NO_WRITER && w.writer as usize != proc && w.version > at;
            match view.lost {
                Lost::Invalidated { at_version } => {
                    if remote_wrote_since(at_version) {
                        MissClass::TrueShare
                    } else {
                        MissClass::FalseShare
                    }
                }
                Lost::Evicted { at_version } => {
                    if remote_wrote_since(at_version) {
                        MissClass::TrueShare
                    } else {
                        MissClass::Eviction
                    }
                }
                // Never lost but missing: can happen if the protocol dropped
                // the line without telling us (shouldn't); treat as eviction.
                Lost::NotLost => MissClass::Eviction,
            }
        };
        b.procs[proc].ever_cached = true;
        b.procs[proc].lost = Lost::NotLost;
        class
    }

    /// Number of blocks the classifier has metadata for.
    pub fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn first_access_is_cold() {
        let mut c = Classifier::new(4, 32);
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::Cold);
        // Second processor's first access is also cold.
        assert_eq!(c.classify_miss(1, l(1), 0, false), MissClass::Cold);
    }

    #[test]
    fn upgrade_wins_over_everything() {
        let mut c = Classifier::new(4, 32);
        assert_eq!(c.classify_miss(0, l(1), 0, true), MissClass::Upgrade);
    }

    #[test]
    fn true_sharing_after_remote_write_to_same_word() {
        let mut c = Classifier::new(4, 32);
        c.classify_miss(0, l(1), 0, false); // P0 caches it (cold)
        c.on_invalidate(0, l(1)); // ...loses it to an invalidation
        c.record_write(1, l(1), 0); // P1 writes the word P0 will read
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::TrueShare);
    }

    #[test]
    fn false_sharing_when_other_word_written() {
        let mut c = Classifier::new(4, 32);
        c.classify_miss(0, l(1), 0, false);
        c.on_invalidate(0, l(1));
        c.record_write(1, l(1), 5); // different word
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::FalseShare);
    }

    #[test]
    fn write_before_loss_does_not_count() {
        let mut c = Classifier::new(4, 32);
        c.record_write(1, l(1), 0); // remote write BEFORE P0 loses the block
        c.classify_miss(0, l(1), 0, false); // cold
        c.on_invalidate(0, l(1));
        // No writes since the invalidation → false sharing.
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::FalseShare);
    }

    #[test]
    fn eviction_miss_when_no_remote_write() {
        let mut c = Classifier::new(4, 32);
        c.classify_miss(0, l(1), 0, false);
        c.on_evict(0, l(1));
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::Eviction);
    }

    #[test]
    fn evicted_then_remotely_written_is_true_sharing() {
        let mut c = Classifier::new(4, 32);
        c.classify_miss(0, l(1), 0, false);
        c.on_evict(0, l(1));
        c.record_write(2, l(1), 0);
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::TrueShare);
    }

    #[test]
    fn own_writes_never_cause_sharing() {
        let mut c = Classifier::new(4, 32);
        c.classify_miss(0, l(1), 0, false);
        c.on_invalidate(0, l(1));
        c.record_write(0, l(1), 0); // own write (e.g. before the inval took effect)
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::FalseShare);
    }

    #[test]
    fn reacquire_resets_loss_state() {
        let mut c = Classifier::new(4, 32);
        c.classify_miss(0, l(1), 0, false);
        c.on_invalidate(0, l(1));
        c.record_write(1, l(1), 0);
        c.classify_miss(0, l(1), 0, false); // true share; re-cached now
        c.on_evict(0, l(1));
        // Nothing written since the eviction → plain eviction miss.
        assert_eq!(c.classify_miss(0, l(1), 0, false), MissClass::Eviction);
    }

    #[test]
    fn blocks_are_tracked_lazily() {
        let mut c = Classifier::new(2, 32);
        assert_eq!(c.tracked_blocks(), 0);
        c.record_write(0, l(10), 0);
        c.classify_miss(1, l(20), 0, false);
        assert_eq!(c.tracked_blocks(), 2);
    }

    #[test]
    fn per_word_granularity_distinguishes_words() {
        let mut c = Classifier::new(4, 32);
        c.classify_miss(0, l(1), 3, false);
        c.on_invalidate(0, l(1));
        c.record_write(1, l(1), 3);
        c.record_write(1, l(1), 4);
        // Miss on word 4 (remotely written) → true.
        assert_eq!(c.classify_miss(0, l(1), 4, false), MissClass::TrueShare);
        c.on_invalidate(0, l(1));
        // Miss on word 9 (never written remotely) → false.
        assert_eq!(c.classify_miss(0, l(1), 9, false), MissClass::FalseShare);
    }
}

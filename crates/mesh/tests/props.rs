//! Property tests for the mesh interconnect, driven by the simulation
//! kernel's deterministic PRNG.

use lrc_mesh::{FaultPlan, Mesh, MsgClass, Network};
use lrc_sim::{MachineConfig, Rng};

/// Hop distance is a metric: identity, symmetry, triangle inequality.
#[test]
fn hops_is_a_metric() {
    let mut rng = Rng::new(0x5eed_0f01);
    for _ in 0..200 {
        let n = 1 + rng.below(63) as usize;
        let m = Mesh::new(n);
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        let c = rng.below(n as u64) as usize;
        assert_eq!(m.hops(a, a), 0);
        assert_eq!(m.hops(a, b), m.hops(b, a));
        assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
        assert!(m.hops(a, b) <= m.diameter());
    }
}

/// Delivery times never decrease for messages sent later on the same
/// src→dst pair, and are at least the contention-free latency.
#[test]
fn network_delivery_is_causal() {
    let mut rng = Rng::new(0x5eed_0f02);
    for _ in 0..40 {
        let sends = 1 + rng.below(100) as usize;
        let cfg = MachineConfig::paper_default(16);
        let mut net = Network::new(&cfg);
        let mut now = 0;
        let mut last_arrival: std::collections::HashMap<(usize, usize), u64> = Default::default();
        for _ in 0..sends {
            let src = rng.below(16) as usize;
            let dst = rng.below(16) as usize;
            let bytes = 1 + rng.below(255);
            now += 3;
            let arrival = net.send(now, src, dst, bytes).expect("in-range nodes");
            let floor = if src == dst { 1 } else { net.base_latency(src, dst, bytes) };
            assert!(arrival >= now + floor || src == dst);
            if src != dst {
                if let Some(&prev) = last_arrival.get(&(src, dst)) {
                    assert!(arrival >= prev, "FIFO per channel");
                }
                last_arrival.insert((src, dst), arrival);
            }
        }
    }
}

/// Under any fault plan, every delivered copy still obeys the timing
/// model's floor (never earlier than the contention-free latency plus any
/// injected delay is *at least* the base latency), and injected-fault
/// counters never exceed transmissions.
#[test]
fn faulty_delivery_respects_timing_floor() {
    let mut rng = Rng::new(0x5eed_0f03);
    for round in 0..20 {
        let cfg = MachineConfig::paper_default(16);
        let plan = FaultPlan::uniform(0.1 + 0.02 * round as f64, 0xFA_0000 + round);
        let mut net = Network::new(&cfg).with_faults(plan);
        let mut sends = 0u64;
        let mut now = 0;
        for _ in 0..200 {
            let src = rng.below(16) as usize;
            let dst = rng.below(16) as usize;
            let bytes = 1 + rng.below(255);
            let class = MsgClass::ALL[rng.below(5) as usize];
            now += 3;
            let floor = net.base_latency(src, dst, bytes);
            let d = net.send_classed(now, src, dst, bytes, class).expect("in range");
            if src != dst {
                sends += 1;
            }
            for a in [d.first, d.dup].into_iter().flatten() {
                assert!(a.at >= now + floor || src == dst);
            }
        }
        let c = net.fault_counters();
        assert!(c.dropped + c.duplicated <= sends);
        assert!(c.delayed <= sends && c.corrupted <= sends);
    }
}

//! Property tests for the mesh interconnect.

use lrc_mesh::{Mesh, Network};
use lrc_sim::MachineConfig;
use proptest::prelude::*;

proptest! {
    /// Hop distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn hops_is_a_metric(n in 1usize..64, seed in any::<u64>()) {
        let m = Mesh::new(n);
        let a = (seed as usize) % n;
        let b = (seed as usize / 64) % n;
        let c = (seed as usize / 4096) % n;
        prop_assert_eq!(m.hops(a, a), 0);
        prop_assert_eq!(m.hops(a, b), m.hops(b, a));
        prop_assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
        prop_assert!(m.hops(a, b) <= m.diameter());
    }

    /// Delivery times never decrease for messages sent later on the same
    /// src→dst pair, and are at least the contention-free latency.
    #[test]
    fn network_delivery_is_causal(
        sends in prop::collection::vec((0usize..16, 0usize..16, 1u64..256), 1..100)
    ) {
        let cfg = MachineConfig::paper_default(16);
        let mut net = Network::new(&cfg);
        let mut now = 0;
        let mut last_arrival: std::collections::HashMap<(usize, usize), u64> = Default::default();
        for (src, dst, bytes) in sends {
            now += 3;
            let arrival = net.send(now, src, dst, bytes);
            let floor = if src == dst { 1 } else { net.base_latency(src, dst, bytes) };
            prop_assert!(arrival >= now + floor || src == dst);
            if src != dst {
                if let Some(&prev) = last_arrival.get(&(src, dst)) {
                    prop_assert!(arrival >= prev, "FIFO per channel");
                }
                last_arrival.insert((src, dst), arrival);
            }
        }
    }
}

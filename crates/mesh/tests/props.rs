//! Property tests for the mesh interconnect, driven by the simulation
//! kernel's deterministic PRNG.

use lrc_mesh::{Mesh, Network};
use lrc_sim::{MachineConfig, Rng};

/// Hop distance is a metric: identity, symmetry, triangle inequality.
#[test]
fn hops_is_a_metric() {
    let mut rng = Rng::new(0x5eed_0f01);
    for _ in 0..200 {
        let n = 1 + rng.below(63) as usize;
        let m = Mesh::new(n);
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        let c = rng.below(n as u64) as usize;
        assert_eq!(m.hops(a, a), 0);
        assert_eq!(m.hops(a, b), m.hops(b, a));
        assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
        assert!(m.hops(a, b) <= m.diameter());
    }
}

/// Delivery times never decrease for messages sent later on the same
/// src→dst pair, and are at least the contention-free latency.
#[test]
fn network_delivery_is_causal() {
    let mut rng = Rng::new(0x5eed_0f02);
    for _ in 0..40 {
        let sends = 1 + rng.below(100) as usize;
        let cfg = MachineConfig::paper_default(16);
        let mut net = Network::new(&cfg);
        let mut now = 0;
        let mut last_arrival: std::collections::HashMap<(usize, usize), u64> = Default::default();
        for _ in 0..sends {
            let src = rng.below(16) as usize;
            let dst = rng.below(16) as usize;
            let bytes = 1 + rng.below(255);
            now += 3;
            let arrival = net.send(now, src, dst, bytes);
            let floor = if src == dst { 1 } else { net.base_latency(src, dst, bytes) };
            assert!(arrival >= now + floor || src == dst);
            if src != dst {
                if let Some(&prev) = last_arrival.get(&(src, dst)) {
                    assert!(arrival >= prev, "FIFO per channel");
                }
                last_arrival.insert((src, dst), arrival);
            }
        }
    }
}

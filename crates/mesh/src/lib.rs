//! `lrc-mesh` — the interconnect substrate: a 2D mesh topology with
//! dimension-order routing distance and a timing model with endpoint
//! (NI-port) contention, matching the methodology of Section 3 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

pub mod fault;
pub mod network;
pub mod topology;

pub use fault::{
    Arrival, CrashPlan, Delivery, FaultCounters, FaultPlan, FaultRates, InjectorState, MsgClass,
};
pub use network::{NetError, Network, NetworkState, NiBusy, NiSnapshot};
pub use topology::Mesh;

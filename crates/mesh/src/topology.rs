//! 2D mesh topology with dimension-order (XY) routing distance.

use lrc_sim::NodeId;

/// A `width × height` mesh of nodes, numbered row-major.
///
/// For `n` nodes the mesh is as square as possible: `width = ⌈√n⌉`,
/// `height = ⌈n / width⌉`; the last row may be partially populated. The
/// paper simulates a mesh-connected multiprocessor with up to 64 nodes
/// (an 8×8 mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
    nodes: usize,
}

impl Mesh {
    /// Mesh for `nodes` nodes (≥ 1).
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "mesh needs at least one node");
        let width = (nodes as f64).sqrt().ceil() as usize;
        let height = nodes.div_ceil(width);
        Mesh { width, height, nodes }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(x, y)` coordinates of `node`.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        debug_assert!(node < self.nodes);
        // Routing distance is computed per message; square power-of-two
        // meshes (4×4, 8×8 — every paper configuration) shift instead of
        // dividing.
        if self.width.is_power_of_two() {
            let shift = self.width.trailing_zeros();
            (node & (self.width - 1), node >> shift)
        } else {
            (node % self.width, node / self.width)
        }
    }

    /// Dimension-order routing distance (Manhattan hops) between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Network diameter in hops.
    pub fn diameter(&self) -> u64 {
        (self.width - 1 + (self.height - 1)) as u64
    }

    /// Mean hop distance over all ordered pairs of distinct nodes.
    pub fn mean_hops(&self) -> f64 {
        if self.nodes < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for a in 0..self.nodes {
            for b in 0..self.nodes {
                total += self.hops(a, b);
            }
        }
        total as f64 / (self.nodes * (self.nodes - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_four_nodes_is_8x8() {
        let m = Mesh::new(64);
        assert_eq!((m.width(), m.height()), (8, 8));
        assert_eq!(m.diameter(), 14);
    }

    #[test]
    fn coords_row_major() {
        let m = Mesh::new(16);
        assert_eq!(m.coords(0), (0, 0));
        assert_eq!(m.coords(3), (3, 0));
        assert_eq!(m.coords(4), (0, 1));
        assert_eq!(m.coords(15), (3, 3));
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let m = Mesh::new(64);
        for a in 0..64 {
            assert_eq!(m.hops(a, a), 0);
            for b in 0..64 {
                assert_eq!(m.hops(a, b), m.hops(b, a));
                for c in 0..64usize {
                    assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
                }
            }
        }
    }

    #[test]
    fn corner_to_corner() {
        let m = Mesh::new(64);
        assert_eq!(m.hops(0, 63), 14);
        assert_eq!(m.hops(0, 7), 7);
        assert_eq!(m.hops(0, 56), 7);
    }

    #[test]
    fn non_square_counts() {
        let m = Mesh::new(6);
        assert_eq!((m.width(), m.height()), (3, 2));
        assert_eq!(m.nodes(), 6);
        let m = Mesh::new(1);
        assert_eq!(m.diameter(), 0);
        assert_eq!(m.mean_hops(), 0.0);
    }

    #[test]
    fn mean_hops_reasonable_for_8x8() {
        // Mean Manhattan distance on an 8x8 grid over ordered distinct pairs
        // is 2*(64*... ) ≈ 5.33; the paper's worked example uses 10 hops as a
        // generous distance.
        let m = Mesh::new(64);
        let mean = m.mean_hops();
        assert!(mean > 5.0 && mean < 6.0, "mean {mean}");
    }
}

//! Timing model for message delivery over the mesh.
//!
//! Matching the paper's methodology (Section 3): latency is
//! distance-dependent — `hops × (switch + wire)` for the head flit plus
//! `size / bandwidth` serialization — and **contention is modelled at the
//! end nodes only**, not at intermediate switches. Each node has one
//! outbound network-interface port, occupied for the serialization time of
//! each message it injects; receiver-side contention is modelled where the
//! message is consumed (the destination's protocol processor and memory
//! occupancy, charged by the machine's handlers). That makes an arrival
//! time a pure function of sender-local state — the property the parallel
//! engine's conservative lookahead depends on: a shard can bound every
//! future cross-shard arrival without consulting receiver state.
//!
//! The network optionally carries a [`FaultPlan`]: when one is installed
//! and active, [`Network::send_classed`] consults the deterministic
//! injector and may drop, duplicate, delay, or corrupt a message. With no
//! plan (or an all-zero one) the timing arithmetic is bit-identical to the
//! plain path.

use crate::fault::{Delivery, FaultCounters, FaultPlan, Injector, InjectorState, MsgClass};
use crate::topology::Mesh;
use lrc_sim::{Cycle, MachineConfig, NodeId};
use std::collections::VecDeque;

/// A message was addressed outside this machine: the source or destination
/// `NodeId` does not exist in a `nodes`-node network. This is how a
/// config/workload mismatch (e.g. a message built for a larger machine)
/// surfaces — as a typed error, not an index panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetError {
    /// Sending node as addressed.
    pub src: NodeId,
    /// Destination node as addressed.
    pub dst: NodeId,
    /// Nodes this network actually has.
    pub nodes: usize,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bad = if self.src >= self.nodes { ("src", self.src) } else { ("dst", self.dst) };
        write!(
            f,
            "message {} -> {} addresses a node outside this machine: {} node {} >= {} nodes \
             (config/workload mismatch?)",
            self.src, self.dst, bad.0, bad.1, self.nodes
        )
    }
}

impl std::error::Error for NetError {}

/// A send rejected by a full NI queue: the backpressure signal. The caller
/// (the machine) turns this into a retry with capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiBusy {
    /// The node whose queue is full.
    pub node: NodeId,
    /// True when the *ingress* (receive) queue at the destination is full;
    /// false when the *egress* (send) queue at the source is.
    pub ingress: bool,
    /// Occupancy at the moment of rejection (= `cap`).
    pub occupancy: usize,
    /// The configured capacity.
    pub cap: usize,
}

/// Finite NI queue occupancy. Each accepted message holds one egress slot
/// at its source until its tail leaves the outbound port, and one ingress
/// slot at its destination until reception completes. Egress completion
/// times are monotone nondecreasing per node (the outbound port is FIFO:
/// `depart = max(now, send_free)` never runs backwards); ingress times
/// from different senders can interleave, so [`NiState::hold_ingress`]
/// inserts in sorted position. Either way a slot expires exactly when the
/// front entry's time passes — no scanning, amortized O(1) per message.
///
/// Lives behind an `Option<Box<_>>` on [`Network`] so the unbounded
/// (default) hot path pays exactly one pointer test.
#[derive(Debug, Clone)]
struct NiState {
    ingress_cap: usize,
    egress_cap: usize,
    /// Per-source completion times of accepted, not-yet-departed messages.
    egress: Vec<VecDeque<Cycle>>,
    /// Per-destination completion times of accepted, not-yet-received
    /// messages.
    ingress: Vec<VecDeque<Cycle>>,
    peak_ingress: usize,
    peak_egress: usize,
}

impl NiState {
    fn new(nodes: usize, ingress_cap: Option<usize>, egress_cap: Option<usize>) -> Self {
        NiState {
            ingress_cap: ingress_cap.unwrap_or(usize::MAX),
            egress_cap: egress_cap.unwrap_or(usize::MAX),
            egress: vec![VecDeque::new(); nodes],
            ingress: vec![VecDeque::new(); nodes],
            peak_ingress: 0,
            peak_egress: 0,
        }
    }

    /// Drop every slot whose occupant has fully crossed its port.
    fn expire(q: &mut VecDeque<Cycle>, now: Cycle) {
        while q.front().is_some_and(|&t| t <= now) {
            q.pop_front();
        }
    }

    /// Full-queue check for a `src -> dst` send at `now`, egress first.
    fn busy(&mut self, now: Cycle, src: NodeId, dst: NodeId) -> Option<NiBusy> {
        Self::expire(&mut self.egress[src], now);
        let occ = self.egress[src].len();
        if occ >= self.egress_cap {
            return Some(NiBusy { node: src, ingress: false, occupancy: occ, cap: self.egress_cap });
        }
        Self::expire(&mut self.ingress[dst], now);
        let occ = self.ingress[dst].len();
        if occ >= self.ingress_cap {
            return Some(NiBusy { node: dst, ingress: true, occupancy: occ, cap: self.ingress_cap });
        }
        None
    }

    fn hold_egress(&mut self, src: NodeId, until: Cycle) {
        self.egress[src].push_back(until);
        self.peak_egress = self.peak_egress.max(self.egress[src].len());
    }

    fn hold_ingress(&mut self, dst: NodeId, until: Cycle) {
        // Sorted insert keeps `expire`'s front-first invariant: arrivals
        // from different senders are not monotone in send-call order.
        let q = &mut self.ingress[dst];
        let mut at = q.len();
        while at > 0 && q[at - 1] > until {
            at -= 1;
        }
        q.insert(at, until);
        self.peak_ingress = self.peak_ingress.max(q.len());
    }
}

/// Checkpointed NI queue occupancy (see [`NiState`]): per-node completion
/// times of held slots, front-sorted as the live queues keep them, plus
/// the lifetime peaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiSnapshot {
    /// Per-destination held ingress slots (completion times, sorted).
    pub ingress: Vec<Vec<Cycle>>,
    /// Per-source held egress slots (completion times, nondecreasing).
    pub egress: Vec<Vec<Cycle>>,
    /// Lifetime peak ingress occupancy.
    pub peak_ingress: usize,
    /// Lifetime peak egress occupancy.
    pub peak_egress: usize,
}

/// Checkpointed network state, produced by [`Network::save_state`] and
/// consumed by [`Network::restore_state`]. Pure data — serialization lives
/// with the machine-level snapshot code.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkState {
    /// Per-node outbound-port free times.
    pub send_free: Vec<Cycle>,
    /// Messages injected so far.
    pub msgs: u64,
    /// Bytes injected so far.
    pub bytes_total: u64,
    /// Finite NI queue state, when limits are installed.
    pub ni: Option<NiSnapshot>,
    /// Fault-injector decision state, when an active plan is installed.
    pub injector: Option<InjectorState>,
}

/// Stateful network timing model: owns the per-node NI port availability.
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    switch: u64,
    wire: u64,
    bytes_per_cycle: u64,
    send_free: Vec<Cycle>,
    /// Messages sent (diagnostics).
    msgs: u64,
    /// Bytes sent (diagnostics).
    bytes_total: u64,
    /// Fault injector; `None` when no active plan is installed, which is
    /// the only thing the fault-free hot path ever branches on.
    injector: Option<Box<Injector>>,
    /// Finite NI queues; `None` when both directions are unbounded (the
    /// default), which is the only thing the hot path ever branches on.
    ni: Option<Box<NiState>>,
}

impl Network {
    /// Build the network for `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let n = cfg.num_procs;
        Network {
            mesh: Mesh::new(n),
            switch: cfg.switch_latency,
            wire: cfg.wire_latency,
            bytes_per_cycle: cfg.net_bytes_per_cycle,
            send_free: vec![0; n],
            msgs: 0,
            bytes_total: 0,
            injector: None,
            ni: (cfg.resources.ni_ingress.is_some() || cfg.resources.ni_egress.is_some())
                .then(|| Box::new(NiState::new(n, cfg.resources.ni_ingress, cfg.resources.ni_egress))),
        }
    }

    /// Install `plan`. An inactive plan (all rates zero, no `drop_nth`)
    /// installs nothing, keeping the fault-free path bit-identical.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.injector = plan.is_active().then(|| Box::new(Injector::new(plan)));
        self
    }

    /// True when an active fault plan is installed.
    pub fn faults_active(&self) -> bool {
        self.injector.is_some()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(|i| i.plan())
    }

    /// Counts of faults injected so far (zero when no plan is active).
    pub fn fault_counters(&self) -> FaultCounters {
        self.injector.as_ref().map(|i| i.counters()).unwrap_or_default()
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Serialization time of a `bytes`-byte message on one link.
    pub fn occupancy(&self, bytes: u64) -> u64 {
        MachineConfig::transfer_cycles(bytes, self.bytes_per_cycle)
    }

    /// Pure (contention-free) latency from `src` to `dst` for `bytes`.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, bytes: u64) -> u64 {
        if src == dst {
            return 1;
        }
        self.mesh.hops(src, dst) * (self.switch + self.wire) + self.occupancy(bytes)
    }

    /// Conservative lower bound on the delivery latency of any cross-node
    /// message of at least `min_bytes`: one hop of head latency plus the
    /// minimum serialization time. Every cross-node send issued at `t`
    /// completes no earlier than `t + min_cross_latency(..)` — the
    /// parallel engine's lookahead window.
    pub fn min_cross_latency(&self, min_bytes: u64) -> u64 {
        self.switch + self.wire + self.occupancy(min_bytes)
    }

    /// Validate that both endpoints exist in this machine.
    #[inline]
    fn check_nodes(&self, src: NodeId, dst: NodeId) -> Result<(), NetError> {
        let nodes = self.send_free.len();
        if src >= nodes || dst >= nodes {
            return Err(NetError { src, dst, nodes });
        }
        Ok(())
    }

    /// Charge the outbound port at `src`: the message starts flowing when
    /// the port frees up.
    #[inline]
    fn depart_at(&mut self, now: Cycle, src: NodeId, bytes: u64) -> Cycle {
        let occ = self.occupancy(bytes);
        let depart = now.max(self.send_free[src]);
        self.send_free[src] = depart + occ;
        depart
    }

    /// Fabric traversal plus inbound serialization for one copy that left
    /// `src` at `depart`, with `extra` cycles of injected fabric delay.
    /// Wormhole-style pipelining: the head arrives after the per-hop
    /// latency, the tail `occ` cycles later. Pure — an arrival depends
    /// only on the departure and the path, never on receiver state.
    #[inline]
    fn receive_at(&self, depart: Cycle, src: NodeId, dst: NodeId, bytes: u64, extra: Cycle) -> Cycle {
        depart + self.mesh.hops(src, dst) * (self.switch + self.wire) + extra + self.occupancy(bytes)
    }

    /// Send a message at time `now`; returns the cycle at which the message
    /// has been fully received and accepted at `dst`, or a [`NetError`]
    /// when either endpoint lies outside the machine.
    ///
    /// Node-local "messages" (src == dst, e.g. a request to the local
    /// directory) bypass the network entirely and are delivered the next
    /// cycle; the caller charges protocol-processor and memory costs.
    ///
    /// This path never consults the fault injector — it is the reliable
    /// fabric the fault-free simulator runs on.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, bytes: u64) -> Result<Cycle, NetError> {
        self.check_nodes(src, dst)?;
        self.msgs += 1;
        self.bytes_total += bytes;
        if src == dst {
            return Ok(now + 1);
        }
        let depart = self.depart_at(now, src, bytes);
        Ok(self.receive_at(depart, src, dst, bytes, 0))
    }

    /// True when finite NI queues are installed. Callers that care about
    /// backpressure route sends through [`Network::try_send`] when this
    /// holds.
    pub fn ni_limited(&self) -> bool {
        self.ni.is_some()
    }

    /// Would a `src -> dst` send at `now` be rejected by a full NI queue?
    /// `None` when unbounded, node-local, or both queues have room.
    pub fn ni_busy(&mut self, now: Cycle, src: NodeId, dst: NodeId) -> Option<NiBusy> {
        let ni = self.ni.as_deref_mut()?;
        if src == dst || src >= self.send_free.len() || dst >= self.send_free.len() {
            return None;
        }
        ni.busy(now, src, dst)
    }

    /// [`Network::send`] with NI backpressure: `Ok(Ok(done))` when the
    /// message was accepted (delivery completes at `done`), `Ok(Err(busy))`
    /// when a full NI queue rejected it — nothing is charged and the caller
    /// retries after a backoff — and `Err` for out-of-machine endpoints.
    /// With no limits installed this is exactly [`Network::send`].
    pub fn try_send(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> Result<Result<Cycle, NiBusy>, NetError> {
        if let Some(busy) = self.ni_busy(now, src, dst) {
            self.check_nodes(src, dst)?;
            return Ok(Err(busy));
        }
        let done = self.send(now, src, dst, bytes)?;
        if src != dst {
            if let Some(ni) = self.ni.as_deref_mut() {
                // The egress slot frees when the tail leaves the outbound
                // port (= the port's new free time), the ingress slot when
                // reception completes.
                ni.hold_egress(src, self.send_free[src]);
                ni.hold_ingress(dst, done);
            }
        }
        Ok(Ok(done))
    }

    /// Peak NI queue occupancies seen so far, `(ingress, egress)`. Both
    /// zero when no limits are installed.
    pub fn ni_peaks(&self) -> (usize, usize) {
        self.ni.as_deref().map_or((0, 0), |ni| (ni.peak_ingress, ni.peak_egress))
    }

    /// Current NI queue occupancy at `node` as of `now`, `(ingress,
    /// egress)`. Expires completed slots first, so a metrics sampler sees
    /// the same occupancy a send at `now` would. Both zero when no limits
    /// are installed.
    pub fn ni_occupancy(&mut self, now: Cycle, node: NodeId) -> (usize, usize) {
        match self.ni.as_deref_mut() {
            None => (0, 0),
            Some(ni) => {
                NiState::expire(&mut ni.ingress[node], now);
                NiState::expire(&mut ni.egress[node], now);
                (ni.ingress[node].len(), ni.egress[node].len())
            }
        }
    }

    /// Send a message of `class` through the (possibly faulty) fabric.
    /// With no active plan this is exactly [`Network::send`] wrapped in a
    /// clean single-arrival [`Delivery`]. With one, the injector decides:
    ///
    /// * **drop** — the NI still transmits (outbound port charged) but no
    ///   copy arrives;
    /// * **duplicate** — a second copy arrives, serialized after the first
    ///   at the receiving port;
    /// * **delay** — the copy spends [`FaultPlan::delay_cycles`] extra in
    ///   the fabric;
    /// * **corrupt** — the copy arrives but its checksum fails at the
    ///   receiving NI (flagged on the [`Delivery`]).
    ///
    /// Node-local messages bypass the network and are never faulted.
    pub fn send_classed(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        class: MsgClass,
    ) -> Result<Delivery, NetError> {
        if self.injector.is_none() || src == dst {
            return self.send(now, src, dst, bytes).map(Delivery::clean);
        }
        self.check_nodes(src, dst)?;
        self.msgs += 1;
        self.bytes_total += bytes;
        let v = self.injector.as_mut().expect("checked above").decide(class);
        let depart = self.depart_at(now, src, bytes);
        // Finite NI queues track this path too, except link-layer control
        // (acks/nacks ride dedicated credits — exempting them keeps the
        // retry machinery itself immune to the backpressure it resolves).
        let track_ni = self.ni.is_some() && class != MsgClass::Link;
        if track_ni {
            let until = self.send_free[src];
            self.ni.as_deref_mut().expect("checked above").hold_egress(src, until);
        }
        if v.drop {
            // Dropped in the fabric: the egress slot was consumed, no
            // ingress slot ever is.
            return Ok(Delivery::default());
        }
        let first = crate::fault::Arrival {
            at: self.receive_at(depart, src, dst, bytes, v.delay),
            corrupt: v.corrupt,
        };
        let dup = v.duplicate.then(|| {
            self.msgs += 1;
            self.bytes_total += bytes;
            // The copy trails the original through the receiving NI: one
            // extra serialization time behind the first arrival.
            crate::fault::Arrival { at: first.at + self.occupancy(bytes), corrupt: false }
        });
        if track_ni {
            let ni = self.ni.as_deref_mut().expect("checked above");
            ni.hold_ingress(dst, first.at);
            if let Some(d) = dup {
                ni.hold_ingress(dst, d.at);
            }
        }
        Ok(Delivery { first: Some(first), dup })
    }

    /// Checkpoint every piece of live network state: port availability,
    /// traffic counters, NI queue occupancy, and the fault injector's
    /// decision streams. Topology and timing parameters are excluded — a
    /// restore target is built from the same [`MachineConfig`] (and plan)
    /// and [`Network::restore_state`] checks the shapes line up.
    pub fn save_state(&self) -> NetworkState {
        NetworkState {
            send_free: self.send_free.clone(),
            msgs: self.msgs,
            bytes_total: self.bytes_total,
            ni: self.ni.as_deref().map(|ni| NiSnapshot {
                ingress: ni.ingress.iter().map(|q| q.iter().copied().collect()).collect(),
                egress: ni.egress.iter().map(|q| q.iter().copied().collect()).collect(),
                peak_ingress: ni.peak_ingress,
                peak_egress: ni.peak_egress,
            }),
            injector: self.injector.as_deref().map(|inj| inj.save_state()),
        }
    }

    /// Restore a checkpoint taken by [`Network::save_state`] into a network
    /// built from the same config (and fault plan). Fails — leaving the
    /// network partially untouched only in the error cases, which the
    /// caller treats as fatal — when the node count, NI-limit presence, or
    /// injector presence disagrees with this network's construction.
    pub fn restore_state(&mut self, st: &NetworkState) -> Result<(), String> {
        if st.send_free.len() != self.send_free.len() {
            return Err(format!(
                "network checkpoint has {} nodes, this machine has {}",
                st.send_free.len(),
                self.send_free.len()
            ));
        }
        match (self.ni.as_deref_mut(), st.ni.as_ref()) {
            (None, None) => {}
            (Some(ni), Some(snap)) => {
                if snap.ingress.len() != ni.ingress.len() || snap.egress.len() != ni.egress.len() {
                    return Err("NI queue checkpoint has a different node count".into());
                }
                for (dst, q) in ni.ingress.iter_mut().zip(&snap.ingress) {
                    dst.clear();
                    dst.extend(q.iter().copied());
                }
                for (dst, q) in ni.egress.iter_mut().zip(&snap.egress) {
                    dst.clear();
                    dst.extend(q.iter().copied());
                }
                ni.peak_ingress = snap.peak_ingress;
                ni.peak_egress = snap.peak_egress;
            }
            (have, _) => {
                return Err(format!(
                    "NI limits mismatch: checkpoint {} NI state, this network {}",
                    if st.ni.is_some() { "has" } else { "lacks" },
                    if have.is_some() { "has limits installed" } else { "is unbounded" }
                ));
            }
        }
        match (self.injector.as_deref_mut(), st.injector.as_ref()) {
            (None, None) => {}
            (Some(inj), Some(snap)) => inj.restore_state(snap),
            (have, _) => {
                return Err(format!(
                    "fault-plan mismatch: checkpoint {} injector state, this network {}",
                    if st.injector.is_some() { "has" } else { "lacks" },
                    if have.is_some() { "has an active plan" } else { "has none" }
                ));
            }
        }
        self.send_free.copy_from_slice(&st.send_free);
        self.msgs = st.msgs;
        self.bytes_total = st.bytes_total;
        Ok(())
    }

    /// Total messages injected so far.
    pub fn messages_sent(&self) -> u64 {
        self.msgs
    }

    /// Total bytes injected so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> MachineConfig {
        MachineConfig::paper_default(n)
    }

    #[test]
    fn paper_worked_example_request_leg() {
        // Section 3: a control request over 10 hops costs (2+1)*10 = 30
        // cycles (8-byte header adds 4 cycles of serialization in our model;
        // the paper's arithmetic ignores header serialization, so check the
        // hop component separately).
        let net = Network::new(&cfg(64));
        // (0,0) to (5,5) is 10 hops on the 8x8 mesh: node 5*8+5 = 45.
        assert_eq!(net.mesh().hops(0, 45), 10);
        let lat = net.base_latency(0, 45, 0);
        assert_eq!(lat, 30);
        // Data reply: 30 + 128/2 = 94 with a full line payload.
        assert_eq!(net.base_latency(0, 45, 128), 94);
    }

    #[test]
    fn local_messages_bypass_network() {
        let mut net = Network::new(&cfg(4));
        assert_eq!(net.send(100, 2, 2, 128), Ok(101));
        // Port untouched.
        assert_eq!(net.send_free[2], 0);
    }

    #[test]
    fn sender_port_serializes_back_to_back_sends() {
        let mut net = Network::new(&cfg(16));
        let occ = net.occupancy(128); // 64 cycles
        let t1 = net.send(0, 0, 15, 128).unwrap();
        let t2 = net.send(0, 0, 15, 128).unwrap();
        // Second message departs only after the first has left the port.
        assert!(t2 >= t1 + occ);
    }

    #[test]
    fn arrival_depends_only_on_the_sender() {
        // Two different senders converging on node 5 arrive independently:
        // fabric arrival is a pure function of the departure and the path
        // (receiver-side contention is charged at the consuming protocol
        // processor, not in the fabric model).
        let mut net = Network::new(&cfg(16));
        let t1 = net.send(0, 1, 5, 128).unwrap();
        let t2 = net.send(0, 2, 5, 128).unwrap();
        assert_eq!(t1, net.base_latency(1, 5, 128));
        assert_eq!(t2, net.base_latency(2, 5, 128));
        // And every cross-node arrival respects the lookahead bound.
        let w = net.min_cross_latency(128);
        assert!(t1 >= w && t2 >= w);
    }

    #[test]
    fn farther_is_slower() {
        let mut a = Network::new(&cfg(64));
        let mut b = Network::new(&cfg(64));
        let near = a.send(0, 0, 1, 8).unwrap();
        let far = b.send(0, 0, 63, 8).unwrap();
        assert!(far > near);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = Network::new(&cfg(4));
        net.send(0, 0, 1, 8).unwrap();
        net.send(0, 1, 2, 136).unwrap();
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.bytes_sent(), 144);
    }

    #[test]
    fn future_machine_is_faster_per_byte() {
        let slow = Network::new(&MachineConfig::paper_default(64));
        let fast = Network::new(&MachineConfig::future_machine(64));
        assert!(fast.occupancy(256) < slow.occupancy(256) * 2);
        assert_eq!(slow.occupancy(128), 64);
        assert_eq!(fast.occupancy(256), 64);
    }

    #[test]
    fn out_of_range_nodes_are_a_typed_error() {
        let mut net = Network::new(&cfg(4));
        let err = net.send(0, 0, 7, 8).unwrap_err();
        assert_eq!(err, NetError { src: 0, dst: 7, nodes: 4 });
        assert!(err.to_string().contains("dst node 7 >= 4 nodes"));
        let err = net.send(0, 9, 1, 8).unwrap_err();
        assert!(err.to_string().contains("src node 9 >= 4 nodes"));
        // Classed path checks too, with and without a plan installed.
        assert!(net.send_classed(0, 4, 0, 8, MsgClass::Request).is_err());
        let mut faulty = Network::new(&cfg(4)).with_faults(FaultPlan::uniform(0.5, 1));
        assert!(faulty.send_classed(0, 4, 0, 8, MsgClass::Request).is_err());
        // Port state untouched by rejected sends.
        assert!(net.send_free.iter().all(|&t| t == 0));
    }

    #[test]
    fn classed_send_without_plan_matches_plain_send() {
        let mut a = Network::new(&cfg(16));
        let mut b = Network::new(&cfg(16));
        for i in 0..20u64 {
            let (src, dst) = ((i % 16) as usize, ((i * 7 + 3) % 16) as usize);
            let t1 = a.send(i * 3, src, dst, 8 + i).unwrap();
            let d = b.send_classed(i * 3, src, dst, 8 + i, MsgClass::Request).unwrap();
            assert_eq!(d, Delivery::clean(t1));
        }
        assert_eq!(a.send_free, b.send_free);
    }

    #[test]
    fn inactive_plan_installs_nothing() {
        let net = Network::new(&cfg(4)).with_faults(FaultPlan::off(99));
        assert!(!net.faults_active());
        assert_eq!(net.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn dropped_messages_still_charge_the_sender_port() {
        let mut net =
            Network::new(&cfg(4)).with_faults(FaultPlan::drop_nth(MsgClass::Request, 0));
        let d = net.send_classed(0, 0, 1, 128, MsgClass::Request).unwrap();
        assert_eq!(d, Delivery::default());
        assert_eq!(net.fault_counters().dropped, 1);
        assert_eq!(net.send_free[0], net.occupancy(128));
        // The next request of that class flows normally.
        let d = net.send_classed(0, 0, 1, 128, MsgClass::Request).unwrap();
        assert!(d.first.is_some() && d.dup.is_none());
    }

    #[test]
    fn duplicates_serialize_at_the_receiver() {
        let mut plan = FaultPlan::off(5);
        plan.rates[MsgClass::Response.index()].duplicate = 1.0;
        let mut net = Network::new(&cfg(16)).with_faults(plan);
        let d = net.send_classed(0, 1, 2, 128, MsgClass::Response).unwrap();
        let (a, b) = (d.first.unwrap(), d.dup.unwrap());
        assert!(b.at >= a.at + net.occupancy(128));
        assert_eq!(net.fault_counters().duplicated, 1);
    }

    #[test]
    fn delay_and_corrupt_faults_mark_the_arrival() {
        let mut plan = FaultPlan::off(5);
        plan.rates[MsgClass::Sync.index()].delay = 1.0;
        plan.rates[MsgClass::Sync.index()].corrupt = 1.0;
        let delay = plan.delay_cycles;
        let mut clean = Network::new(&cfg(16));
        let mut faulty = Network::new(&cfg(16)).with_faults(plan);
        let t = clean.send(0, 3, 9, 8).unwrap();
        let d = faulty.send_classed(0, 3, 9, 8, MsgClass::Sync).unwrap();
        let a = d.first.unwrap();
        assert!(a.corrupt);
        assert_eq!(a.at, t + delay);
        let c = faulty.fault_counters();
        assert_eq!((c.delayed, c.corrupted), (1, 1));
    }

    fn bounded_cfg(n: usize, ingress: Option<usize>, egress: Option<usize>) -> MachineConfig {
        let mut c = cfg(n);
        c.resources.ni_ingress = ingress;
        c.resources.ni_egress = egress;
        c
    }

    #[test]
    fn unbounded_network_installs_no_ni_state() {
        let mut net = Network::new(&cfg(4));
        assert!(!net.ni_limited());
        assert!(net.ni_busy(0, 0, 1).is_none());
        assert_eq!(net.ni_peaks(), (0, 0));
        // try_send degenerates to send.
        let mut plain = Network::new(&cfg(4));
        let a = plain.send(7, 0, 3, 128).unwrap();
        let b = net.try_send(7, 0, 3, 128).unwrap().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roomy_ni_queues_change_no_timing() {
        let mut plain = Network::new(&cfg(16));
        let mut bounded = Network::new(&bounded_cfg(16, Some(64), Some(64)));
        for i in 0..50u64 {
            let (src, dst) = ((i % 16) as usize, ((i * 7 + 3) % 16) as usize);
            if src == dst {
                continue;
            }
            let a = plain.send(i * 2, src, dst, 8 + i).unwrap();
            let b = bounded.try_send(i * 2, src, dst, 8 + i).unwrap().unwrap();
            assert_eq!(a, b);
        }
        let (pi, pe) = bounded.ni_peaks();
        assert!(pi >= 1 && pe >= 1);
    }

    #[test]
    fn full_egress_queue_rejects_without_charging() {
        let mut net = Network::new(&bounded_cfg(16, None, Some(1)));
        let done = net.try_send(0, 0, 15, 128).unwrap().unwrap();
        // The port is busy serializing the first message: slot still held.
        let busy = net.try_send(1, 0, 9, 8).unwrap().unwrap_err();
        assert_eq!(busy, NiBusy { node: 0, ingress: false, occupancy: 1, cap: 1 });
        let free_after = net.send_free[0];
        // Rejection charged nothing.
        assert_eq!(net.send_free[0], free_after);
        assert_eq!(net.messages_sent(), 1);
        // Once the tail has left the port the slot frees and sends flow.
        assert!(net.try_send(free_after, 0, 9, 8).unwrap().is_ok());
        assert!(done > 0);
    }

    #[test]
    fn full_ingress_queue_rejects_the_sender() {
        let mut net = Network::new(&bounded_cfg(16, Some(1), None));
        let done = net.try_send(0, 1, 5, 128).unwrap().unwrap();
        let busy = net.try_send(0, 2, 5, 8).unwrap().unwrap_err();
        assert_eq!(busy, NiBusy { node: 5, ingress: true, occupancy: 1, cap: 1 });
        // After reception completes the slot frees.
        assert!(net.try_send(done, 2, 5, 8).unwrap().is_ok());
        assert_eq!(net.ni_peaks().0, 1);
    }

    #[test]
    fn local_sends_bypass_ni_queues() {
        let mut net = Network::new(&bounded_cfg(4, Some(1), Some(1)));
        for t in 0..10 {
            assert!(net.try_send(t, 2, 2, 128).unwrap().is_ok());
        }
        assert_eq!(net.ni_peaks(), (0, 0));
    }

    #[test]
    fn try_send_still_rejects_bad_nodes() {
        let mut net = Network::new(&bounded_cfg(4, Some(1), Some(1)));
        assert!(net.try_send(0, 0, 7, 8).is_err());
    }

    #[test]
    fn classed_sends_occupy_ni_slots_except_link_class() {
        // An active plan that will never actually fire, to route sends
        // through the injector path.
        let mut net = Network::new(&bounded_cfg(16, Some(4), Some(4)))
            .with_faults(FaultPlan::drop_nth(MsgClass::Sync, u64::MAX));
        net.send_classed(0, 0, 1, 8, MsgClass::Link).unwrap();
        assert_eq!(net.ni_peaks(), (0, 0), "link-layer control rides dedicated credits");
        net.send_classed(0, 0, 1, 8, MsgClass::Request).unwrap();
        let (pi, pe) = net.ni_peaks();
        assert_eq!((pi, pe), (1, 1));
    }

    #[test]
    fn dropped_classed_sends_occupy_egress_only() {
        let mut net = Network::new(&bounded_cfg(16, Some(4), Some(4)))
            .with_faults(FaultPlan::drop_nth(MsgClass::Request, 0));
        let d = net.send_classed(0, 0, 1, 128, MsgClass::Request).unwrap();
        assert_eq!(d, Delivery::default());
        assert_eq!(net.ni_peaks(), (0, 1));
    }

    #[test]
    fn faulty_delivery_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(&cfg(16)).with_faults(FaultPlan::uniform(0.2, seed));
            let mut log = Vec::new();
            for i in 0..300u64 {
                let (src, dst) = ((i % 16) as usize, ((i * 5 + 1) % 16) as usize);
                let class = MsgClass::ALL[(i % 5) as usize];
                log.push(net.send_classed(i * 2, src, dst, 8, class).unwrap());
            }
            (log, net.fault_counters())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).1, run(78).1);
    }
}

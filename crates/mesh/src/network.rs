//! Timing model for message delivery over the mesh.
//!
//! Matching the paper's methodology (Section 3): latency is
//! distance-dependent — `hops × (switch + wire)` for the head flit plus
//! `size / bandwidth` serialization — and **contention is modelled at the
//! sending and receiving nodes only**, not at intermediate switches. Each
//! node has one outbound and one inbound network-interface port; a port
//! is occupied for the serialization time of each message that crosses it.
//!
//! The network optionally carries a [`FaultPlan`]: when one is installed
//! and active, [`Network::send_classed`] consults the deterministic
//! injector and may drop, duplicate, delay, or corrupt a message. With no
//! plan (or an all-zero one) the timing arithmetic is bit-identical to the
//! plain path.

use crate::fault::{Delivery, FaultCounters, FaultPlan, Injector, MsgClass};
use crate::topology::Mesh;
use lrc_sim::{Cycle, MachineConfig, NodeId};

/// A message was addressed outside this machine: the source or destination
/// `NodeId` does not exist in a `nodes`-node network. This is how a
/// config/workload mismatch (e.g. a message built for a larger machine)
/// surfaces — as a typed error, not an index panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetError {
    /// Sending node as addressed.
    pub src: NodeId,
    /// Destination node as addressed.
    pub dst: NodeId,
    /// Nodes this network actually has.
    pub nodes: usize,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bad = if self.src >= self.nodes { ("src", self.src) } else { ("dst", self.dst) };
        write!(
            f,
            "message {} -> {} addresses a node outside this machine: {} node {} >= {} nodes \
             (config/workload mismatch?)",
            self.src, self.dst, bad.0, bad.1, self.nodes
        )
    }
}

impl std::error::Error for NetError {}

/// Stateful network timing model: owns the per-node NI port availability.
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    switch: u64,
    wire: u64,
    bytes_per_cycle: u64,
    send_free: Vec<Cycle>,
    recv_free: Vec<Cycle>,
    /// Messages sent (diagnostics).
    msgs: u64,
    /// Bytes sent (diagnostics).
    bytes_total: u64,
    /// Fault injector; `None` when no active plan is installed, which is
    /// the only thing the fault-free hot path ever branches on.
    injector: Option<Box<Injector>>,
}

impl Network {
    /// Build the network for `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let n = cfg.num_procs;
        Network {
            mesh: Mesh::new(n),
            switch: cfg.switch_latency,
            wire: cfg.wire_latency,
            bytes_per_cycle: cfg.net_bytes_per_cycle,
            send_free: vec![0; n],
            recv_free: vec![0; n],
            msgs: 0,
            bytes_total: 0,
            injector: None,
        }
    }

    /// Install `plan`. An inactive plan (all rates zero, no `drop_nth`)
    /// installs nothing, keeping the fault-free path bit-identical.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.injector = plan.is_active().then(|| Box::new(Injector::new(plan)));
        self
    }

    /// True when an active fault plan is installed.
    pub fn faults_active(&self) -> bool {
        self.injector.is_some()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(|i| i.plan())
    }

    /// Counts of faults injected so far (zero when no plan is active).
    pub fn fault_counters(&self) -> FaultCounters {
        self.injector.as_ref().map(|i| i.counters()).unwrap_or_default()
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Serialization time of a `bytes`-byte message on one link.
    pub fn occupancy(&self, bytes: u64) -> u64 {
        MachineConfig::transfer_cycles(bytes, self.bytes_per_cycle)
    }

    /// Pure (contention-free) latency from `src` to `dst` for `bytes`.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, bytes: u64) -> u64 {
        if src == dst {
            return 1;
        }
        self.mesh.hops(src, dst) * (self.switch + self.wire) + self.occupancy(bytes)
    }

    /// Validate that both endpoints exist in this machine.
    #[inline]
    fn check_nodes(&self, src: NodeId, dst: NodeId) -> Result<(), NetError> {
        let nodes = self.send_free.len();
        if src >= nodes || dst >= nodes {
            return Err(NetError { src, dst, nodes });
        }
        Ok(())
    }

    /// Charge the outbound port at `src`: the message starts flowing when
    /// the port frees up.
    #[inline]
    fn depart_at(&mut self, now: Cycle, src: NodeId, bytes: u64) -> Cycle {
        let occ = self.occupancy(bytes);
        let depart = now.max(self.send_free[src]);
        self.send_free[src] = depart + occ;
        depart
    }

    /// Fabric traversal plus inbound-port serialization for one copy that
    /// left `src` at `depart`, with `extra` cycles of injected fabric
    /// delay. Wormhole-style pipelining: the head arrives after the
    /// per-hop latency, the tail `occ` cycles later.
    #[inline]
    fn receive_at(&mut self, depart: Cycle, src: NodeId, dst: NodeId, bytes: u64, extra: Cycle) -> Cycle {
        let occ = self.occupancy(bytes);
        let head_arrives = depart + self.mesh.hops(src, dst) * (self.switch + self.wire) + extra;
        // Inbound port: reception can't start before the port is free.
        let start_recv = head_arrives.max(self.recv_free[dst]);
        let done = start_recv + occ;
        self.recv_free[dst] = done;
        done
    }

    /// Send a message at time `now`; returns the cycle at which the message
    /// has been fully received and accepted at `dst`, or a [`NetError`]
    /// when either endpoint lies outside the machine.
    ///
    /// Node-local "messages" (src == dst, e.g. a request to the local
    /// directory) bypass the network entirely and are delivered the next
    /// cycle; the caller charges protocol-processor and memory costs.
    ///
    /// This path never consults the fault injector — it is the reliable
    /// fabric the fault-free simulator runs on.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, bytes: u64) -> Result<Cycle, NetError> {
        self.check_nodes(src, dst)?;
        self.msgs += 1;
        self.bytes_total += bytes;
        if src == dst {
            return Ok(now + 1);
        }
        let depart = self.depart_at(now, src, bytes);
        Ok(self.receive_at(depart, src, dst, bytes, 0))
    }

    /// Send a message of `class` through the (possibly faulty) fabric.
    /// With no active plan this is exactly [`Network::send`] wrapped in a
    /// clean single-arrival [`Delivery`]. With one, the injector decides:
    ///
    /// * **drop** — the NI still transmits (outbound port charged) but no
    ///   copy arrives;
    /// * **duplicate** — a second copy arrives, serialized after the first
    ///   at the receiving port;
    /// * **delay** — the copy spends [`FaultPlan::delay_cycles`] extra in
    ///   the fabric;
    /// * **corrupt** — the copy arrives but its checksum fails at the
    ///   receiving NI (flagged on the [`Delivery`]).
    ///
    /// Node-local messages bypass the network and are never faulted.
    pub fn send_classed(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        class: MsgClass,
    ) -> Result<Delivery, NetError> {
        if self.injector.is_none() || src == dst {
            return self.send(now, src, dst, bytes).map(Delivery::clean);
        }
        self.check_nodes(src, dst)?;
        self.msgs += 1;
        self.bytes_total += bytes;
        let v = self.injector.as_mut().expect("checked above").decide(class);
        let depart = self.depart_at(now, src, bytes);
        if v.drop {
            return Ok(Delivery::default());
        }
        let first = crate::fault::Arrival {
            at: self.receive_at(depart, src, dst, bytes, v.delay),
            corrupt: v.corrupt,
        };
        let dup = v.duplicate.then(|| {
            self.msgs += 1;
            self.bytes_total += bytes;
            crate::fault::Arrival {
                at: self.receive_at(depart, src, dst, bytes, v.delay),
                corrupt: false,
            }
        });
        Ok(Delivery { first: Some(first), dup })
    }

    /// Total messages injected so far.
    pub fn messages_sent(&self) -> u64 {
        self.msgs
    }

    /// Total bytes injected so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> MachineConfig {
        MachineConfig::paper_default(n)
    }

    #[test]
    fn paper_worked_example_request_leg() {
        // Section 3: a control request over 10 hops costs (2+1)*10 = 30
        // cycles (8-byte header adds 4 cycles of serialization in our model;
        // the paper's arithmetic ignores header serialization, so check the
        // hop component separately).
        let net = Network::new(&cfg(64));
        // (0,0) to (5,5) is 10 hops on the 8x8 mesh: node 5*8+5 = 45.
        assert_eq!(net.mesh().hops(0, 45), 10);
        let lat = net.base_latency(0, 45, 0);
        assert_eq!(lat, 30);
        // Data reply: 30 + 128/2 = 94 with a full line payload.
        assert_eq!(net.base_latency(0, 45, 128), 94);
    }

    #[test]
    fn local_messages_bypass_network() {
        let mut net = Network::new(&cfg(4));
        assert_eq!(net.send(100, 2, 2, 128), Ok(101));
        // Ports untouched.
        assert_eq!(net.send_free[2], 0);
        assert_eq!(net.recv_free[2], 0);
    }

    #[test]
    fn sender_port_serializes_back_to_back_sends() {
        let mut net = Network::new(&cfg(16));
        let occ = net.occupancy(128); // 64 cycles
        let t1 = net.send(0, 0, 15, 128).unwrap();
        let t2 = net.send(0, 0, 15, 128).unwrap();
        // Second message departs only after the first has left the port, and
        // the receiver port additionally serializes reception.
        assert!(t2 >= t1 + occ);
    }

    #[test]
    fn receiver_port_contention() {
        let mut net = Network::new(&cfg(16));
        // Two different senders converge on node 5 at the same time.
        let t1 = net.send(0, 1, 5, 128).unwrap();
        let t2 = net.send(0, 2, 5, 128).unwrap();
        let occ = net.occupancy(128);
        assert!((t2 as i64 - t1 as i64).unsigned_abs() >= occ, "receptions must serialize: {t1} {t2}");
    }

    #[test]
    fn farther_is_slower() {
        let mut a = Network::new(&cfg(64));
        let mut b = Network::new(&cfg(64));
        let near = a.send(0, 0, 1, 8).unwrap();
        let far = b.send(0, 0, 63, 8).unwrap();
        assert!(far > near);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = Network::new(&cfg(4));
        net.send(0, 0, 1, 8).unwrap();
        net.send(0, 1, 2, 136).unwrap();
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.bytes_sent(), 144);
    }

    #[test]
    fn future_machine_is_faster_per_byte() {
        let slow = Network::new(&MachineConfig::paper_default(64));
        let fast = Network::new(&MachineConfig::future_machine(64));
        assert!(fast.occupancy(256) < slow.occupancy(256) * 2);
        assert_eq!(slow.occupancy(128), 64);
        assert_eq!(fast.occupancy(256), 64);
    }

    #[test]
    fn out_of_range_nodes_are_a_typed_error() {
        let mut net = Network::new(&cfg(4));
        let err = net.send(0, 0, 7, 8).unwrap_err();
        assert_eq!(err, NetError { src: 0, dst: 7, nodes: 4 });
        assert!(err.to_string().contains("dst node 7 >= 4 nodes"));
        let err = net.send(0, 9, 1, 8).unwrap_err();
        assert!(err.to_string().contains("src node 9 >= 4 nodes"));
        // Classed path checks too, with and without a plan installed.
        assert!(net.send_classed(0, 4, 0, 8, MsgClass::Request).is_err());
        let mut faulty = Network::new(&cfg(4)).with_faults(FaultPlan::uniform(0.5, 1));
        assert!(faulty.send_classed(0, 4, 0, 8, MsgClass::Request).is_err());
        // Port state untouched by rejected sends.
        assert!(net.send_free.iter().all(|&t| t == 0));
    }

    #[test]
    fn classed_send_without_plan_matches_plain_send() {
        let mut a = Network::new(&cfg(16));
        let mut b = Network::new(&cfg(16));
        for i in 0..20u64 {
            let (src, dst) = ((i % 16) as usize, ((i * 7 + 3) % 16) as usize);
            let t1 = a.send(i * 3, src, dst, 8 + i).unwrap();
            let d = b.send_classed(i * 3, src, dst, 8 + i, MsgClass::Request).unwrap();
            assert_eq!(d, Delivery::clean(t1));
        }
        assert_eq!(a.send_free, b.send_free);
        assert_eq!(a.recv_free, b.recv_free);
    }

    #[test]
    fn inactive_plan_installs_nothing() {
        let net = Network::new(&cfg(4)).with_faults(FaultPlan::off(99));
        assert!(!net.faults_active());
        assert_eq!(net.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn dropped_messages_still_charge_the_sender_port() {
        let mut net =
            Network::new(&cfg(4)).with_faults(FaultPlan::drop_nth(MsgClass::Request, 0));
        let d = net.send_classed(0, 0, 1, 128, MsgClass::Request).unwrap();
        assert_eq!(d, Delivery::default());
        assert_eq!(net.fault_counters().dropped, 1);
        assert_eq!(net.send_free[0], net.occupancy(128));
        assert_eq!(net.recv_free[1], 0, "a dropped message never reaches the receiver");
        // The next request of that class flows normally.
        let d = net.send_classed(0, 0, 1, 128, MsgClass::Request).unwrap();
        assert!(d.first.is_some() && d.dup.is_none());
    }

    #[test]
    fn duplicates_serialize_at_the_receiver() {
        let mut plan = FaultPlan::off(5);
        plan.rates[MsgClass::Response.index()].duplicate = 1.0;
        let mut net = Network::new(&cfg(16)).with_faults(plan);
        let d = net.send_classed(0, 1, 2, 128, MsgClass::Response).unwrap();
        let (a, b) = (d.first.unwrap(), d.dup.unwrap());
        assert!(b.at >= a.at + net.occupancy(128));
        assert_eq!(net.fault_counters().duplicated, 1);
    }

    #[test]
    fn delay_and_corrupt_faults_mark_the_arrival() {
        let mut plan = FaultPlan::off(5);
        plan.rates[MsgClass::Sync.index()].delay = 1.0;
        plan.rates[MsgClass::Sync.index()].corrupt = 1.0;
        let delay = plan.delay_cycles;
        let mut clean = Network::new(&cfg(16));
        let mut faulty = Network::new(&cfg(16)).with_faults(plan);
        let t = clean.send(0, 3, 9, 8).unwrap();
        let d = faulty.send_classed(0, 3, 9, 8, MsgClass::Sync).unwrap();
        let a = d.first.unwrap();
        assert!(a.corrupt);
        assert_eq!(a.at, t + delay);
        let c = faulty.fault_counters();
        assert_eq!((c.delayed, c.corrupted), (1, 1));
    }

    #[test]
    fn faulty_delivery_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(&cfg(16)).with_faults(FaultPlan::uniform(0.2, seed));
            let mut log = Vec::new();
            for i in 0..300u64 {
                let (src, dst) = ((i % 16) as usize, ((i * 5 + 1) % 16) as usize);
                let class = MsgClass::ALL[(i % 5) as usize];
                log.push(net.send_classed(i * 2, src, dst, 8, class).unwrap());
            }
            (log, net.fault_counters())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).1, run(78).1);
    }
}

//! Timing model for message delivery over the mesh.
//!
//! Matching the paper's methodology (Section 3): latency is
//! distance-dependent — `hops × (switch + wire)` for the head flit plus
//! `size / bandwidth` serialization — and **contention is modelled at the
//! sending and receiving nodes only**, not at intermediate switches. Each
//! node has one outbound and one inbound network-interface port; a port
//! is occupied for the serialization time of each message that crosses it.

use crate::topology::Mesh;
use lrc_sim::{Cycle, MachineConfig, NodeId};

/// Stateful network timing model: owns the per-node NI port availability.
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    switch: u64,
    wire: u64,
    bytes_per_cycle: u64,
    send_free: Vec<Cycle>,
    recv_free: Vec<Cycle>,
    /// Messages sent (diagnostics).
    msgs: u64,
    /// Bytes sent (diagnostics).
    bytes_total: u64,
}

impl Network {
    /// Build the network for `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let n = cfg.num_procs;
        Network {
            mesh: Mesh::new(n),
            switch: cfg.switch_latency,
            wire: cfg.wire_latency,
            bytes_per_cycle: cfg.net_bytes_per_cycle,
            send_free: vec![0; n],
            recv_free: vec![0; n],
            msgs: 0,
            bytes_total: 0,
        }
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Serialization time of a `bytes`-byte message on one link.
    pub fn occupancy(&self, bytes: u64) -> u64 {
        MachineConfig::transfer_cycles(bytes, self.bytes_per_cycle)
    }

    /// Pure (contention-free) latency from `src` to `dst` for `bytes`.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, bytes: u64) -> u64 {
        if src == dst {
            return 1;
        }
        self.mesh.hops(src, dst) * (self.switch + self.wire) + self.occupancy(bytes)
    }

    /// Send a message at time `now`; returns the cycle at which the message
    /// has been fully received and accepted at `dst`.
    ///
    /// Node-local "messages" (src == dst, e.g. a request to the local
    /// directory) bypass the network entirely and are delivered the next
    /// cycle; the caller charges protocol-processor and memory costs.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, bytes: u64) -> Cycle {
        self.msgs += 1;
        self.bytes_total += bytes;
        if src == dst {
            return now + 1;
        }
        let occ = self.occupancy(bytes);
        // Outbound port: the message starts flowing when the port frees up.
        let depart = now.max(self.send_free[src]);
        self.send_free[src] = depart + occ;
        // Wormhole-style pipelining: head arrives after the per-hop latency,
        // the tail `occ` cycles later.
        let head_arrives = depart + self.mesh.hops(src, dst) * (self.switch + self.wire);
        // Inbound port: reception can't start before the port is free.
        let start_recv = head_arrives.max(self.recv_free[dst]);
        let done = start_recv + occ;
        self.recv_free[dst] = done;
        done
    }

    /// Total messages injected so far.
    pub fn messages_sent(&self) -> u64 {
        self.msgs
    }

    /// Total bytes injected so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> MachineConfig {
        MachineConfig::paper_default(n)
    }

    #[test]
    fn paper_worked_example_request_leg() {
        // Section 3: a control request over 10 hops costs (2+1)*10 = 30
        // cycles (8-byte header adds 4 cycles of serialization in our model;
        // the paper's arithmetic ignores header serialization, so check the
        // hop component separately).
        let net = Network::new(&cfg(64));
        let hops10_pair = (0usize, 58usize); // (0,0) -> (2,7): 2+7 = 9... pick explicit pair below
        let _ = hops10_pair;
        // (0,0) to (5,5) is 10 hops on the 8x8 mesh: node 5*8+5 = 45.
        assert_eq!(net.mesh().hops(0, 45), 10);
        let lat = net.base_latency(0, 45, 0);
        assert_eq!(lat, 30);
        // Data reply: 30 + 128/2 = 94 with a full line payload.
        assert_eq!(net.base_latency(0, 45, 128), 94);
    }

    #[test]
    fn local_messages_bypass_network() {
        let mut net = Network::new(&cfg(4));
        assert_eq!(net.send(100, 2, 2, 128), 101);
        // Ports untouched.
        assert_eq!(net.send_free[2], 0);
        assert_eq!(net.recv_free[2], 0);
    }

    #[test]
    fn sender_port_serializes_back_to_back_sends() {
        let mut net = Network::new(&cfg(16));
        let occ = net.occupancy(128); // 64 cycles
        let t1 = net.send(0, 0, 15, 128);
        let t2 = net.send(0, 0, 15, 128);
        // Second message departs only after the first has left the port, and
        // the receiver port additionally serializes reception.
        assert!(t2 >= t1 + occ);
    }

    #[test]
    fn receiver_port_contention() {
        let mut net = Network::new(&cfg(16));
        // Two different senders converge on node 5 at the same time.
        let t1 = net.send(0, 1, 5, 128);
        let t2 = net.send(0, 2, 5, 128);
        let occ = net.occupancy(128);
        assert!(t2 >= t1.min(t2)); // trivially true; real check below
        assert!((t2 as i64 - t1 as i64).unsigned_abs() >= occ, "receptions must serialize: {t1} {t2}");
    }

    #[test]
    fn farther_is_slower() {
        let mut a = Network::new(&cfg(64));
        let mut b = Network::new(&cfg(64));
        let near = a.send(0, 0, 1, 8);
        let far = b.send(0, 0, 63, 8);
        assert!(far > near);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = Network::new(&cfg(4));
        net.send(0, 0, 1, 8);
        net.send(0, 1, 2, 136);
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.bytes_sent(), 144);
    }

    #[test]
    fn future_machine_is_faster_per_byte() {
        let slow = Network::new(&MachineConfig::paper_default(64));
        let fast = Network::new(&MachineConfig::future_machine(64));
        assert!(fast.occupancy(256) < slow.occupancy(256) * 2);
        assert_eq!(slow.occupancy(128), 64);
        assert_eq!(fast.occupancy(256), 64);
    }
}

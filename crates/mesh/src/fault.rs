//! Deterministic fault injection at the network-interface ports.
//!
//! A [`FaultPlan`] describes, per message class, the probability that the
//! fabric drops, duplicates, delays, or corrupts a message. Decisions are
//! drawn from dedicated [`lrc_sim::Rng`] streams forked from the plan's
//! seed — one stream per class — so a given `(seed, plan)` pair produces
//! the same fault pattern on every run regardless of what else the
//! simulator does, and fingerprints stay reproducible per seed.
//!
//! The plan also carries the link-layer recovery knobs (retransmit timeout,
//! backoff bound) consumed by `lrc-core`'s reliable-delivery layer, and a
//! deterministic `drop_nth` mode so the model checker can kill exactly one
//! chosen message without any randomness at all.

use lrc_sim::{Cycle, NodeId, Rng};

/// Coarse class of a message for per-class fault rates. The mesh does not
/// know protocol payloads; `lrc-core` maps its `MsgKind` onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Requester → home control requests (read/write/flush requests).
    Request,
    /// Home → requester replies and acknowledgements.
    Response,
    /// Home → third-party traffic (invalidations, write notices, forwards)
    /// and third-party responses to it.
    Notice,
    /// Lock and barrier traffic.
    Sync,
    /// Link-layer control (delivery acks/nacks themselves).
    Link,
}

impl MsgClass {
    /// Number of classes (array dimension for per-class tables).
    pub const COUNT: usize = 5;

    /// All classes, in `index()` order.
    pub const ALL: [MsgClass; MsgClass::COUNT] = [
        MsgClass::Request,
        MsgClass::Response,
        MsgClass::Notice,
        MsgClass::Sync,
        MsgClass::Link,
    ];

    /// Dense index of this class.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgClass::Request => 0,
            MsgClass::Response => 1,
            MsgClass::Notice => 2,
            MsgClass::Sync => 3,
            MsgClass::Link => 4,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Request => "request",
            MsgClass::Response => "response",
            MsgClass::Notice => "notice",
            MsgClass::Sync => "sync",
            MsgClass::Link => "link",
        }
    }
}

/// Per-class fault probabilities (each an independent Bernoulli per
/// message transmission).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability the message vanishes in the fabric.
    pub drop: f64,
    /// Probability the fabric delivers a second copy.
    pub duplicate: f64,
    /// Probability delivery is delayed by [`FaultPlan::delay_cycles`].
    pub delay: f64,
    /// Probability the payload arrives corrupted (checksum failure at the
    /// receiving NI).
    pub corrupt: f64,
}

impl FaultRates {
    /// All four probabilities set to `p`.
    pub fn uniform(p: f64) -> Self {
        FaultRates { drop: p, duplicate: p, delay: p, corrupt: p }
    }

    /// True when every probability is zero.
    pub fn is_zero(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.delay == 0.0 && self.corrupt == 0.0
    }
}

/// Crash-stop failure schedule: deterministic node deaths plus the
/// lease/heartbeat parameters survivors use to detect them.
///
/// A crashed node's NI queues, in-flight messages, and all local state
/// vanish at the crash cycle; peers see permanent silence and declare the
/// node dead once its lease expires. A plan with no victims still arms the
/// heartbeat/lease machinery — useful for asserting that slow-but-alive
/// nodes are *not* declared dead under message delay faults.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPlan {
    /// Nodes to kill, as `(node, at_cycle)` pairs. Deterministic: the same
    /// plan produces the same deaths on every run.
    pub victims: Vec<(NodeId, Cycle)>,
    /// Checker mode: kill `node` after exactly `n` handled events instead
    /// of at a wall-clock cycle, with instantaneous failure detection.
    /// This makes crash timing a deterministic choice point the model
    /// checker can place anywhere in an interleaving (the crash-stop
    /// analogue of [`FaultPlan::drop_nth`]).
    pub crash_nth: Option<(NodeId, u64)>,
    /// Heartbeat period: every live node pings every peer this often.
    pub heartbeat_every: Cycle,
    /// Lease bound: a peer silent for longer than this is declared dead.
    /// Must comfortably exceed the heartbeat period plus the worst-case
    /// fabric delay (including injected delay faults), or slow-but-alive
    /// nodes are falsely declared dead.
    pub lease_timeout: Cycle,
}

impl CrashPlan {
    /// A plan that kills `node` at `at_cycle`, with default lease timing.
    pub fn kill(node: NodeId, at_cycle: Cycle) -> Self {
        CrashPlan { victims: vec![(node, at_cycle)], ..CrashPlan::detection_only() }
    }

    /// Checker mode: kill `node` after exactly `n` handled events.
    pub fn kill_nth(node: NodeId, n: u64) -> Self {
        CrashPlan { crash_nth: Some((node, n)), ..CrashPlan::detection_only() }
    }

    /// Heartbeats and leases armed, nobody dies. The detector must stay
    /// quiet for the whole run.
    pub fn detection_only() -> Self {
        CrashPlan {
            victims: Vec::new(),
            crash_nth: None,
            heartbeat_every: 5_000,
            lease_timeout: 60_000,
        }
    }

    /// True when some node actually dies under this plan.
    pub fn has_victims(&self) -> bool {
        !self.victims.is_empty() || self.crash_nth.is_some()
    }
}

/// A complete, seeded description of the faults to inject during one run,
/// plus the link-layer recovery parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-class decision streams.
    pub seed: u64,
    /// Fault probabilities, indexed by [`MsgClass::index`].
    pub rates: [FaultRates; MsgClass::COUNT],
    /// Extra fabric latency applied by a delay fault.
    pub delay_cycles: Cycle,
    /// Deterministic mode: drop exactly the `n`-th (0-based) transmission
    /// of the given class, nothing else. Used by the model checker.
    pub drop_nth: Option<(MsgClass, u64)>,
    /// Base retransmit timeout for the link layer (doubles per attempt,
    /// capped at [`FaultPlan::BACKOFF_CAP`] doublings).
    pub retry_timeout: Cycle,
    /// Retransmissions attempted before the link layer gives a message up
    /// for lost (the protocol then wedges and the watchdog diagnoses it).
    pub max_retries: u32,
    /// Crash-stop failure schedule (`None` = nobody dies, no heartbeats).
    /// Orthogonal to the message faults: a crash-only plan does **not**
    /// activate the injector or link layer — see [`FaultPlan::is_active`].
    pub crash: Option<CrashPlan>,
}

impl FaultPlan {
    /// Maximum exponential-backoff doublings of `retry_timeout`.
    pub const BACKOFF_CAP: u32 = 6;

    /// An inactive plan: all rates zero. Installing it is exactly
    /// equivalent to not installing a plan at all.
    pub fn off(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [FaultRates::default(); MsgClass::COUNT],
            delay_cycles: 500,
            drop_nth: None,
            retry_timeout: 10_000,
            max_retries: 12,
            crash: None,
        }
    }

    /// Every fault type at probability `p` for every class.
    pub fn uniform(p: f64, seed: u64) -> Self {
        FaultPlan { rates: [FaultRates::uniform(p); MsgClass::COUNT], ..FaultPlan::off(seed) }
    }

    /// Deterministically drop only the `n`-th message of `class`.
    pub fn drop_nth(class: MsgClass, n: u64) -> Self {
        FaultPlan { drop_nth: Some((class, n)), ..FaultPlan::off(0) }
    }

    /// True when the plan can affect any message — deliberately *excluding*
    /// the crash schedule, which arms its own machinery in the machine layer
    /// instead of the injector/link layer. Inactive plans cost the hot path
    /// exactly one branch.
    pub fn is_active(&self) -> bool {
        self.drop_nth.is_some() || self.rates.iter().any(|r| !r.is_zero())
    }

    /// Attach a crash schedule to this plan.
    pub fn with_crash(mut self, crash: CrashPlan) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Retransmit timeout for the `attempt`-th retry (exponential backoff,
    /// capped).
    #[inline]
    pub fn backoff(&self, attempt: u32) -> Cycle {
        self.retry_timeout << attempt.min(Self::BACKOFF_CAP)
    }
}

/// What actually happened to one transmitted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Cycle at which the copy is fully received at the destination.
    pub at: Cycle,
    /// The receiving NI's checksum check fails for this copy.
    pub corrupt: bool,
}

/// Delivery outcome of one send through a faulty fabric: zero (dropped),
/// one, or two (duplicated) arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Delivery {
    /// Primary copy, `None` when the fabric dropped the message.
    pub first: Option<Arrival>,
    /// Duplicate copy, when the fabric replicated the message.
    pub dup: Option<Arrival>,
}

impl Delivery {
    /// A clean single delivery at `at`.
    pub fn clean(at: Cycle) -> Self {
        Delivery { first: Some(Arrival { at, corrupt: false }), dup: None }
    }
}

/// Counts of injected faults, reported into `MachineStats` at end of run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages the fabric swallowed.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages delivered late.
    pub delayed: u64,
    /// Messages delivered with a failing checksum.
    pub corrupted: u64,
}

impl FaultCounters {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.corrupted
    }
}

/// Checkpointed injector state: raw decision-stream positions, per-class
/// transmission counts, and the fault counters. The plan itself is not
/// included — the restoring caller reinstalls it and must supply the same
/// one for the resumed fault pattern to match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectorState {
    /// Raw [`Rng::state`] of each per-class decision stream.
    pub streams: [u64; MsgClass::COUNT],
    /// Transmissions seen per class (drives `drop_nth`).
    pub sent: [u64; MsgClass::COUNT],
    /// Faults injected so far.
    pub counters: FaultCounters,
}

/// The injector: the plan plus its live decision streams and counters.
#[derive(Debug, Clone)]
pub(crate) struct Injector {
    plan: FaultPlan,
    /// One decision stream per class, forked from the plan seed.
    streams: [Rng; MsgClass::COUNT],
    /// Transmissions seen per class (drives `drop_nth`).
    sent: [u64; MsgClass::COUNT],
    counters: FaultCounters,
}

/// Fault verdict for one transmission, before timing is applied.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Verdict {
    pub drop: bool,
    pub duplicate: bool,
    pub delay: Cycle,
    pub corrupt: bool,
}

impl Injector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let mut root = Rng::new(plan.seed);
        let streams = [
            root.fork(1),
            root.fork(2),
            root.fork(3),
            root.fork(4),
            root.fork(5),
        ];
        Injector { plan, streams, sent: [0; MsgClass::COUNT], counters: FaultCounters::default() }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Checkpoint the live decision state.
    pub(crate) fn save_state(&self) -> InjectorState {
        InjectorState {
            streams: std::array::from_fn(|i| self.streams[i].state()),
            sent: self.sent,
            counters: self.counters,
        }
    }

    /// Restore a checkpoint taken by [`Injector::save_state`]; the plan is
    /// left untouched.
    pub(crate) fn restore_state(&mut self, st: &InjectorState) {
        self.streams = std::array::from_fn(|i| Rng::from_state(st.streams[i]));
        self.sent = st.sent;
        self.counters = st.counters;
    }

    /// Decide the fate of one transmission of `class`. Always draws the
    /// same number of variates per call so the per-class streams stay in
    /// lockstep regardless of outcomes.
    pub(crate) fn decide(&mut self, class: MsgClass) -> Verdict {
        let i = class.index();
        let n = self.sent[i];
        self.sent[i] += 1;
        let r = &self.plan.rates[i];
        let rng = &mut self.streams[i];
        // Fixed draw order: stream position is a function of the send
        // count alone, never of earlier outcomes.
        let drop_hit = r.drop > 0.0 && rng.chance(r.drop);
        let dup_hit = r.duplicate > 0.0 && rng.chance(r.duplicate);
        let delay_hit = r.delay > 0.0 && rng.chance(r.delay);
        let corrupt_hit = r.corrupt > 0.0 && rng.chance(r.corrupt);
        let nth_drop = self.plan.drop_nth == Some((class, n));
        let v = Verdict {
            drop: drop_hit || nth_drop,
            duplicate: dup_hit && !(drop_hit || nth_drop),
            delay: if delay_hit { self.plan.delay_cycles } else { 0 },
            corrupt: corrupt_hit,
        };
        if v.drop {
            self.counters.dropped += 1;
        }
        if v.duplicate {
            self.counters.duplicated += 1;
        }
        if v.delay > 0 && !v.drop {
            self.counters.delayed += 1;
        }
        if v.corrupt && !v.drop {
            self.counters.corrupted += 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_inactive() {
        assert!(!FaultPlan::off(7).is_active());
        assert!(FaultPlan::uniform(1e-3, 7).is_active());
        assert!(FaultPlan::drop_nth(MsgClass::Request, 0).is_active());
        let mut p = FaultPlan::off(7);
        p.rates[MsgClass::Sync.index()].corrupt = 0.5;
        assert!(p.is_active());
    }

    #[test]
    fn crash_plans_do_not_activate_the_injector() {
        // A crash-only plan must leave the message-fault machinery off:
        // crashes arm their own subsystem in the machine layer.
        let p = FaultPlan::off(3).with_crash(CrashPlan::kill(2, 10_000));
        assert!(!p.is_active());
        assert!(p.crash.as_ref().is_some_and(CrashPlan::has_victims));
        assert!(!CrashPlan::detection_only().has_victims());
        assert!(CrashPlan::kill_nth(1, 500).has_victims());
    }

    #[test]
    fn backoff_is_capped() {
        let p = FaultPlan::off(0);
        assert_eq!(p.backoff(0), p.retry_timeout);
        assert_eq!(p.backoff(1), p.retry_timeout * 2);
        assert_eq!(p.backoff(40), p.retry_timeout << FaultPlan::BACKOFF_CAP);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = Injector::new(FaultPlan::uniform(0.3, seed));
            (0..200)
                .map(|i| {
                    let v = inj.decide(MsgClass::ALL[i % MsgClass::COUNT]);
                    (v.drop, v.duplicate, v.delay, v.corrupt)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn class_streams_are_independent() {
        // Interleaving decisions for other classes must not perturb the
        // sequence a given class sees.
        let mut a = Injector::new(FaultPlan::uniform(0.3, 9));
        let mut b = Injector::new(FaultPlan::uniform(0.3, 9));
        let seq_a: Vec<bool> = (0..50).map(|_| a.decide(MsgClass::Request).drop).collect();
        let seq_b: Vec<bool> = (0..50)
            .map(|_| {
                b.decide(MsgClass::Sync);
                b.decide(MsgClass::Link);
                b.decide(MsgClass::Request).drop
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn drop_nth_hits_exactly_one_message() {
        let mut inj = Injector::new(FaultPlan::drop_nth(MsgClass::Notice, 2));
        let drops: Vec<bool> = (0..6).map(|_| inj.decide(MsgClass::Notice).drop).collect();
        assert_eq!(drops, vec![false, false, true, false, false, false]);
        // Other classes untouched.
        assert!(!inj.decide(MsgClass::Request).drop);
        assert_eq!(inj.counters().dropped, 1);
    }
}

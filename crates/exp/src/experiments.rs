//! The experiment catalogue: one function per table/figure of the paper.
//!
//! Each function assembles the runs it needs (through the memoizing
//! [`Runner`], so shared combinations are simulated once), renders a
//! paper-style text table with the published numbers alongside, and
//! returns a machine-readable [`Report`].

use crate::paper_ref;
use crate::report::{bar, miss_pct, ratio, Report, Table};
use crate::runner::{Runner, RunSpec};
use lrc_core::{CrashPlan, FaultPlan, Machine, MsgClass, RunResult, TraceFilter};
use lrc_sim::{table1_rows, MachineConfig, MissClass, Protocol};
use lrc_trace::export;
use lrc_workloads::{quality_experiment_seeded, Scale, WorkloadKind};
use lrc_json::{json, ToJson, Value};

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Input scale for every workload.
    pub scale: Scale,
    /// Processor count (the paper: 64).
    pub procs: usize,
    /// Workload input seed (0 = the canonical, golden-fingerprint input;
    /// other seeds give statistically equivalent inputs for the
    /// cross-seed statistics layer).
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params { scale: Scale::Small, procs: 64, seed: 0 }
    }
}

impl Params {
    /// The manifest `params` record for a run of these parameters.
    pub fn to_json(&self) -> Value {
        json!({ "scale": self.scale.name(), "procs": self.procs, "seed": self.seed })
    }
}

fn spec(p: Params, proto: Protocol, w: WorkloadKind) -> RunSpec {
    RunSpec::new(proto, w, p.scale, p.procs).with_seed(p.seed)
}

fn future_spec(p: Params, proto: Protocol, w: WorkloadKind) -> RunSpec {
    let mut s = spec(p, proto, w);
    s.config = Some(MachineConfig::future_machine(p.procs));
    s
}

/// Table 1: the default system parameters.
pub fn table1(_r: &Runner, p: Params) -> Report {
    let cfg = MachineConfig::paper_default(p.procs);
    let mut t = Table::new(vec!["System Constant Name", "Default Value"]);
    for (k, v) in table1_rows(&cfg) {
        t.row(vec![k, v]);
    }
    Report {
        id: "table1".into(),
        title: "Default values for system parameters".into(),
        text: t.render(),
        json: cfg.to_json(),
    }
}

/// Table 2 (paper Figure 2): classification of misses under eager release
/// consistency. Paper values in parentheses.
pub fn table2(r: &Runner, p: Params) -> Report {
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .iter()
        .map(|&w| {
            let mut s = spec(p, Protocol::Erc, w);
            s.classify = true;
            s
        })
        .collect();
    let results = r.run_all(&specs);

    let mut t = Table::new(vec!["Application", "Cold", "True", "False", "Eviction", "Write"]);
    let mut rows = Vec::new();
    for (res, w) in results.iter().zip(WorkloadKind::ALL) {
        let m = res.stats.aggregate_misses();
        let paper = paper_ref::table2_row(w.name()).expect("paper row");
        let classes = [
            MissClass::Cold,
            MissClass::TrueShare,
            MissClass::FalseShare,
            MissClass::Eviction,
            MissClass::Upgrade,
        ];
        let mut cells = vec![w.paper_name().to_string()];
        let mut jrow = vec![];
        for (i, c) in classes.iter().enumerate() {
            let v = m.percent(*c);
            cells.push(format!("{:.1}% ({:.1}%)", v, paper[i]));
            jrow.push(v);
        }
        t.row(cells);
        rows.push(json!({ "app": w.name(), "measured": jrow, "paper": paper }));
    }
    Report {
        id: "table2".into(),
        title: "Classification of misses under eager release consistency — measured (paper)"
            .into(),
        text: t.render(),
        json: json!({ "rows": rows, "scale": p.scale.name(), "procs": p.procs }),
    }
}

/// Table 3 (paper Figure 3): miss rates under the three RC implementations.
pub fn table3(r: &Runner, p: Params) -> Report {
    let protos = [Protocol::Erc, Protocol::Lrc, Protocol::LrcExt];
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .iter()
        .flat_map(|&w| protos.iter().map(move |&proto| spec(p, proto, w)))
        .collect();
    let results = r.run_all(&specs);

    let mut t = Table::new(vec!["Application", "Eager", "Lazy", "Lazy-ext"]);
    let mut rows = Vec::new();
    for (i, w) in WorkloadKind::ALL.iter().enumerate() {
        let paper = paper_ref::table3_row(w.name()).expect("paper row");
        let mut cells = vec![w.paper_name().to_string()];
        let mut measured = vec![];
        for j in 0..3 {
            let res = &results[i * 3 + j];
            let v = res.stats.miss_rate();
            cells.push(format!("{} ({:.2}%)", miss_pct(v), paper[j]));
            measured.push(100.0 * v);
        }
        t.row(cells);
        rows.push(json!({ "app": w.name(), "measured": measured, "paper": paper }));
    }
    Report {
        id: "table3".into(),
        title: "Miss rates for the implementations of release consistency — measured (paper)"
            .into(),
        text: t.render(),
        json: json!({ "rows": rows, "scale": p.scale.name(), "procs": p.procs }),
    }
}

/// Normalized execution times for a set of protocols against the SC run on
/// the same machine config. Shared by figs 4, 6, and 8.
fn exec_time_report(
    r: &Runner,
    p: Params,
    id: &str,
    title: &str,
    protos: &[Protocol],
    future: bool,
    paper_gain: &[(&str, f64)],
) -> Report {
    let mk = |proto: Protocol, w: WorkloadKind| {
        if future {
            future_spec(p, proto, w)
        } else {
            spec(p, proto, w)
        }
    };
    let mut all = vec![];
    for &w in &WorkloadKind::ALL {
        all.push(mk(Protocol::Sc, w));
        for &proto in protos {
            all.push(mk(proto, w));
        }
    }
    let results = r.run_all(&all);

    let mut headers = vec!["Application".to_string()];
    headers.extend(protos.iter().map(|pr| format!("{pr} (norm)")));
    headers.push("lazy vs eager (paper)".into());
    let mut t = Table::new(headers);
    let mut rows = Vec::new();
    let stride = protos.len() + 1;
    for (i, w) in WorkloadKind::ALL.iter().enumerate() {
        let sc = &results[i * stride];
        let sc_cycles = sc.stats.total_cycles.max(1);
        let mut cells = vec![w.paper_name().to_string()];
        let mut norms = vec![];
        for j in 0..protos.len() {
            let res: &RunResult = &results[i * stride + 1 + j];
            let norm = res.stats.total_cycles as f64 / sc_cycles as f64;
            cells.push(ratio(norm));
            norms.push(norm);
        }
        // lazy-vs-eager gain when both present.
        let gain = match (protos.iter().position(|&x| x == Protocol::Lrc)
            .or_else(|| protos.iter().position(|&x| x == Protocol::LrcExt)),
            protos.iter().position(|&x| x == Protocol::Erc))
        {
            (Some(l), Some(e)) => {
                let g = 100.0 * (1.0 - norms[l] / norms[e]);
                let paper = paper_gain
                    .iter()
                    .find(|(n, _)| *n == w.name())
                    .map(|(_, v)| *v)
                    .unwrap_or(f64::NAN);
                format!("{g:+.1}% ({paper:+.1}%)")
            }
            _ => "-".to_string(),
        };
        cells.push(gain.clone());
        t.row(cells);
        rows.push(json!({
            "app": w.name(),
            "sc_cycles": sc_cycles,
            "protocols": protos.iter().map(|pr| pr.name()).collect::<Vec<_>>(),
            "normalized": norms,
        }));
    }
    // Figure-style bar chart: one bar per (app, protocol), normalized to
    // the SC baseline marked with '|'.
    let mut chart = String::new();
    chart.push_str("\nnormalized execution time (| = sequentially consistent baseline):\n");
    for row in &rows {
        let app = row["app"].as_str().unwrap_or("?");
        let norms = row["normalized"].as_array().cloned().unwrap_or_default();
        for (j, pr) in protos.iter().enumerate() {
            let v = norms.get(j).and_then(|x| x.as_f64()).unwrap_or(0.0);
            chart.push_str(&format!("{:>11} {:>9} {} {:.2}\n", app, pr.name(), bar(v, 40), v));
        }
    }
    Report {
        id: id.into(),
        title: title.into(),
        text: format!("{}{}", t.render(), chart),
        json: json!({ "rows": rows, "scale": p.scale.name(), "procs": p.procs, "future": future }),
    }
}

/// Overhead breakdowns (cpu/read/write/sync as a fraction of the SC run's
/// aggregate cycles). Shared by figs 5, 7, and 9.
fn overhead_report(
    r: &Runner,
    p: Params,
    id: &str,
    title: &str,
    protos: &[Protocol],
    future: bool,
) -> Report {
    let mk = |proto: Protocol, w: WorkloadKind| {
        if future {
            future_spec(p, proto, w)
        } else {
            spec(p, proto, w)
        }
    };
    let mut all = vec![];
    for &w in &WorkloadKind::ALL {
        all.push(mk(Protocol::Sc, w));
        for &proto in protos {
            if proto != Protocol::Sc {
                all.push(mk(proto, w));
            }
        }
    }
    let results = r.run_all(&all);

    let mut t = Table::new(vec!["Application", "Protocol", "cpu", "read", "write", "sync", "total"]);
    let mut rows = Vec::new();
    let extra: Vec<Protocol> = protos.iter().copied().filter(|&x| x != Protocol::Sc).collect();
    let stride = extra.len() + 1;
    for (i, w) in WorkloadKind::ALL.iter().enumerate() {
        let sc = &results[i * stride];
        let sc_total = sc.stats.aggregate_breakdown().total().max(1);
        let mut order: Vec<(&RunResult, Protocol)> = Vec::new();
        for (j, &proto) in extra.iter().enumerate() {
            order.push((&results[i * stride + 1 + j], proto));
        }
        if protos.contains(&Protocol::Sc) {
            order.push((sc, Protocol::Sc));
        }
        for (res, proto) in order {
            let b = res.stats.aggregate_breakdown();
            let n = b.normalized(sc_total);
            t.row(vec![
                w.paper_name().to_string(),
                proto.name().to_string(),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
                format!("{:.3}", n[3]),
                format!("{:.3}", n.iter().sum::<f64>()),
            ]);
            rows.push(json!({
                "app": w.name(),
                "protocol": proto.name(),
                "cpu": n[0], "read": n[1], "write": n[2], "sync": n[3],
            }));
        }
    }
    Report {
        id: id.into(),
        title: title.into(),
        text: t.render(),
        json: json!({ "rows": rows, "scale": p.scale.name(), "procs": p.procs, "future": future }),
    }
}

/// Figure 4: normalized execution time for lazy and eager RC.
pub fn fig4(r: &Runner, p: Params) -> Report {
    exec_time_report(
        r,
        p,
        "fig4",
        "Normalized execution time for lazy-release and eager-release consistency",
        &[Protocol::Erc, Protocol::Lrc],
        false,
        &paper_ref::FIG4_LAZY_VS_EAGER_PCT,
    )
}

/// Figure 5: overhead analysis for lazy, eager, and sequential consistency.
pub fn fig5(r: &Runner, p: Params) -> Report {
    overhead_report(
        r,
        p,
        "fig5",
        "Overhead analysis for lazy-release, eager-release, and sequential consistency",
        &[Protocol::Lrc, Protocol::Erc, Protocol::Sc],
        false,
    )
}

/// Figure 6: normalized execution time for lazy and lazy-extended.
pub fn fig6(r: &Runner, p: Params) -> Report {
    exec_time_report(
        r,
        p,
        "fig6",
        "Normalized execution time for lazy and lazy-extended consistency",
        &[Protocol::Lrc, Protocol::LrcExt],
        false,
        &[],
    )
}

/// Figure 7: overhead analysis for lazy, lazy-extended, and SC.
pub fn fig7(r: &Runner, p: Params) -> Report {
    overhead_report(
        r,
        p,
        "fig7",
        "Overhead analysis for lazy, lazy-extended, and sequential consistency",
        &[Protocol::Lrc, Protocol::LrcExt, Protocol::Sc],
        false,
    )
}

/// Figure 8: execution-time trends on the future machine.
pub fn fig8(r: &Runner, p: Params) -> Report {
    exec_time_report(
        r,
        p,
        "fig8",
        "Performance trends for lazy, lazier, and eager release consistency (future machine)",
        &[Protocol::Erc, Protocol::Lrc, Protocol::LrcExt],
        true,
        &paper_ref::FIG8_LAZY_VS_EAGER_PCT,
    )
}

/// Figure 9: overhead trends on the future machine.
pub fn fig9(r: &Runner, p: Params) -> Report {
    overhead_report(
        r,
        p,
        "fig9",
        "Performance trends overhead analysis (future machine)",
        &[Protocol::Lrc, Protocol::LrcExt, Protocol::Erc, Protocol::Sc],
        true,
    )
}

/// Section 4.3 sweeps: latency, bandwidth, and line size.
pub fn sweep(r: &Runner, p: Params) -> Report {
    let apps = [WorkloadKind::Blu, WorkloadKind::Gauss, WorkloadKind::Mp3d];
    // (label, mem_setup, bytes/cycle, line size)
    let points: [(&str, u64, u64, usize); 6] = [
        ("base (20cyc, 2B/c, 128B)", 20, 2, 128),
        ("short lines (64B)", 20, 2, 64),
        ("long lines (256B)", 20, 2, 256),
        ("high latency (40cyc)", 40, 2, 128),
        ("high bandwidth (4B/c)", 20, 4, 128),
        ("future (40cyc, 4B/c, 256B)", 40, 4, 256),
    ];
    let mut specs = Vec::new();
    for &(_, setup, bw, line) in &points {
        for &w in &apps {
            for proto in [Protocol::Erc, Protocol::Lrc] {
                let mut cfg = MachineConfig::paper_default(p.procs);
                cfg.mem_setup = setup;
                cfg.mem_bytes_per_cycle = bw;
                cfg.bus_bytes_per_cycle = bw;
                cfg.net_bytes_per_cycle = bw;
                cfg.line_size = line;
                let mut s = RunSpec::new(proto, w, p.scale, p.procs).with_seed(p.seed);
                s.config = Some(cfg);
                specs.push(s);
            }
        }
    }
    let results = r.run_all(&specs);

    let mut headers = vec!["Configuration".to_string()];
    headers.extend(apps.iter().map(|w| format!("{} lazy/eager", w.name())));
    let mut t = Table::new(headers);
    let mut rows = Vec::new();
    for (pi, &(label, ..)) in points.iter().enumerate() {
        let mut cells = vec![label.to_string()];
        let mut jr = vec![];
        for ai in 0..apps.len() {
            let base = pi * apps.len() * 2 + ai * 2;
            let eager = results[base].stats.total_cycles as f64;
            let lazy = results[base + 1].stats.total_cycles as f64;
            cells.push(ratio(lazy / eager));
            jr.push(lazy / eager);
        }
        t.row(cells);
        rows.push(json!({ "config": label, "lazy_over_eager": jr }));
    }
    Report {
        id: "sweep".into(),
        title: "Sensitivity sweep (Section 4.3): lazy/eager execution-time ratio (< 1 = lazy wins)"
            .into(),
        text: t.render(),
        json: json!({ "rows": rows, "apps": apps.iter().map(|w| w.name()).collect::<Vec<_>>() }),
    }
}

/// Extension: per-protocol network traffic breakdown (the paper argues
/// write-through with a coalescing buffer keeps lazy traffic near
/// write-back levels — this table quantifies it).
pub fn traffic(r: &Runner, p: Params) -> Report {
    let protos = [Protocol::Sc, Protocol::Erc, Protocol::Lrc, Protocol::LrcExt];
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .iter()
        .flat_map(|&w| protos.iter().map(move |&proto| spec(p, proto, w)))
        .collect();
    let results = r.run_all(&specs);

    let mut t = Table::new(vec![
        "Application",
        "Protocol",
        "ctrl msgs",
        "data msgs",
        "write msgs",
        "MB on wire",
        "vs eager",
    ]);
    let mut rows = Vec::new();
    for (i, w) in WorkloadKind::ALL.iter().enumerate() {
        let eager_bytes = results[i * 4 + 1].stats.aggregate_traffic().bytes.max(1);
        for (j, proto) in protos.iter().enumerate() {
            let tr = results[i * 4 + j].stats.aggregate_traffic();
            t.row(vec![
                w.paper_name().to_string(),
                proto.name().to_string(),
                tr.control_msgs.to_string(),
                tr.data_msgs.to_string(),
                tr.write_data_msgs.to_string(),
                format!("{:.1}", tr.bytes as f64 / 1e6),
                ratio(tr.bytes as f64 / eager_bytes as f64),
            ]);
            rows.push(json!({
                "app": w.name(),
                "protocol": proto.name(),
                "control": tr.control_msgs,
                "data": tr.data_msgs,
                "write_data": tr.write_data_msgs,
                "bytes": tr.bytes,
            }));
        }
    }
    Report {
        id: "traffic".into(),
        title: "Network traffic by message class (write-through vs write-back data volume)"
            .into(),
        text: t.render(),
        json: json!({ "rows": rows, "scale": p.scale.name(), "procs": p.procs }),
    }
}

/// Extension: machine-size scaling — how the protocol gaps evolve from 4
/// to 64 processors (the paper reports 64 only).
pub fn scaling(r: &Runner, p: Params) -> Report {
    let apps = [WorkloadKind::Gauss, WorkloadKind::Mp3d];
    let sizes = [4usize, 16, 64];
    let mut specs = Vec::new();
    for &procs in &sizes {
        for &w in &apps {
            for proto in [Protocol::Sc, Protocol::Erc, Protocol::Lrc] {
                let mut s = RunSpec::new(proto, w, p.scale, procs).with_seed(p.seed);
                s.config = Some(MachineConfig::paper_default(procs));
                specs.push(s);
            }
        }
    }
    let results = r.run_all(&specs);

    let mut t = Table::new(vec![
        "procs", "app", "sc cycles", "eager/sc", "lazy/sc", "lazy vs eager",
    ]);
    let mut rows = Vec::new();
    let mut i = 0;
    for &procs in &sizes {
        for &w in &apps {
            let sc = results[i].stats.total_cycles.max(1);
            let eager = results[i + 1].stats.total_cycles;
            let lazy = results[i + 2].stats.total_cycles;
            i += 3;
            let gain = 100.0 * (1.0 - lazy as f64 / eager as f64);
            t.row(vec![
                procs.to_string(),
                w.name().to_string(),
                sc.to_string(),
                ratio(eager as f64 / sc as f64),
                ratio(lazy as f64 / sc as f64),
                format!("{gain:+.1}%"),
            ]);
            rows.push(json!({
                "procs": procs, "app": w.name(),
                "sc": sc, "eager": eager, "lazy": lazy,
            }));
        }
    }
    Report {
        id: "scaling".into(),
        title: "Protocol gaps vs machine size (4 → 64 processors)".into(),
        text: t.render(),
        json: json!({ "rows": rows, "scale": p.scale.name() }),
    }
}

/// Section 4.2: the mp3d solution-quality experiment.
pub fn quality(_r: &Runner, p: Params) -> Report {
    // The paper's check runs 10 time steps regardless of input size.
    let (particles, _) = lrc_workloads::mp3d::size(p.scale);
    let steps = 10;
    let q = quality_experiment_seeded(particles, steps, p.procs, p.seed);
    let mut t = Table::new(vec!["Axis", "SC total", "Lazy total", "divergence", "paper"]);
    for (k, axis) in ["X", "Y", "Z"].iter().enumerate() {
        t.row(vec![
            axis.to_string(),
            format!("{:.3}", q.sc[k]),
            format!("{:.3}", q.lazy[k]),
            format!("{:.3}%", q.divergence_pct[k]),
            format!("{}{}%", if k == 0 { "" } else { "< " }, paper_ref::QUALITY_DIVERGENCE_PCT[k]),
        ]);
    }
    Report {
        id: "quality".into(),
        title: "Cumulative velocity divergence, SC vs lazy visibility (mp3d)".into(),
        text: t.render(),
        json: json!({
            "sc": q.sc, "lazy": q.lazy, "divergence_pct": q.divergence_pct,
            "particles": particles, "steps": steps,
        }),
    }
}

/// Observability demo: one fully instrumented paper workload (mp3d under
/// lazy RC) — structured trace exported as a Perfetto-loadable Chrome trace
/// and JSONL, latency histograms, and the interval metrics time series.
/// The trace and series artifacts ride in the report JSON; the CLI's
/// `--trace-dir` flag splits them into standalone files.
pub fn observe(_r: &Runner, p: Params) -> Report {
    let workload = WorkloadKind::Mp3d;
    let proto = Protocol::Lrc;
    // Bounded capture: recent-most 64K records. Sampling cadence scales
    // with the input so tiny CI runs still produce a multi-row series.
    let trace_cap = 1 << 16;
    let interval = if p.scale == Scale::Tiny { 2_000 } else { 10_000 };
    let w = workload.build_seeded(p.procs, p.scale, p.seed);
    let m = Machine::new(MachineConfig::paper_default(p.procs), proto)
        .with_max_cycles(200_000_000_000)
        .with_trace_filter(TraceFilter::all(), trace_cap)
        .with_latency_histograms()
        .with_sampler(interval)
        .with_flight_recorder(64);
    let (result, m) = m.run_keep(w);

    let records = m.trace_records();
    let chrome = export::chrome_trace(&records);
    export::validate_chrome_trace(&chrome).expect("exported chrome trace is well-formed");
    // Serialization round-trip: what we write is what a consumer parses.
    let reparsed = lrc_json::parse(&chrome.dump()).expect("chrome trace reparses");
    export::validate_chrome_trace(&reparsed).expect("chrome trace survives a round-trip");
    let jsonl = export::jsonl(&records);
    let series = m.time_series().expect("sampler was configured");

    let mut t = Table::new(vec!["latency", "count", "mean", "p50", "p95", "max"]);
    let mut lat_rows = Vec::new();
    for (name, h) in result.stats.latencies.iter() {
        t.row(vec![
            name.to_string(),
            h.count.to_string(),
            format!("{:.1}", h.mean()),
            h.percentile(50.0).to_string(),
            h.percentile(95.0).to_string(),
            h.max.to_string(),
        ]);
        lat_rows.push(json!({
            "name": name,
            "count": h.count,
            "mean": h.mean(),
            "p50": h.percentile(50.0),
            "p95": h.percentile(95.0),
            "max": h.max,
        }));
    }
    let text = format!(
        "{}\ntrace: {} records captured (cap {}), {} perfetto events\n\
         series: {} samples every {} cycles, {} columns\n\
         run: {} total cycles ({} / {})\n",
        t.render(),
        records.len(),
        trace_cap,
        chrome["traceEvents"].as_array().map(|a| a.len()).unwrap_or(0),
        series.len(),
        interval,
        series.columns().len(),
        result.stats.total_cycles,
        workload.name(),
        proto.name(),
    );
    Report {
        id: "observe".into(),
        title: "Full-observability run: Perfetto trace, latency histograms, metrics time series"
            .into(),
        text,
        json: json!({
            "workload": workload.name(),
            "protocol": proto.name(),
            "scale": p.scale.name(),
            "procs": p.procs,
            "total_cycles": result.stats.total_cycles,
            "records": records.len(),
            "latency": lat_rows,
            "perfetto": chrome,
            "jsonl": jsonl,
            "timeseries": series.to_json(),
            "timeseries_csv": series.to_csv(),
        }),
    }
}

/// Snapshot-forked divergence hunt. One machine per protocol is warmed to
/// a fixed cycle and frozen into a [`lrc_core::MachineSnapshot`]; that one
/// frozen state is then forked into a baseline continuation (link layer
/// armed, faults never fire) and several fault-plan continuations.
/// Architectural-state fingerprints are compared at aligned cycles to
/// locate the first point a faulted history separates from the baseline.
/// The warmup is simulated exactly once per protocol — every fork
/// fast-forwards into the warm state through the snapshot's workload
/// replay instead of re-simulating it.
pub fn diverge(_r: &Runner, p: Params) -> Report {
    let workload = WorkloadKind::Mp3d;
    let (warmup, stride) = if p.scale == Scale::Tiny { (4_000u64, 1_000u64) } else {
        (50_000u64, 10_000u64)
    };
    let steps = 8u64;
    let rates = [1e-4, 1e-3, 1e-2];
    let seed = 0xD1CE;

    let mut t = Table::new(vec!["Protocol", "Fork", "First divergence", "Cycles after fork"]);
    let mut rows = Vec::new();
    for proto in Protocol::ALL {
        // Warm up once, then freeze.
        let mut m = Machine::new(MachineConfig::paper_default(p.procs), proto)
            .with_max_cycles(200_000_000_000);
        m.start_run(workload.build_seeded(p.procs, p.scale, p.seed));
        let running = m.run_until(warmup).expect("warmup must not stall");
        assert!(running, "workload finished before the warmup cycle; shrink the warmup");
        let snap = m.snapshot().expect("warmup snapshot");
        drop(m);

        let fork = || {
            snap.restore(workload.build_seeded(p.procs, p.scale, p.seed)).expect("fork restores")
        };
        // The baseline fork carries a plan that arms the link layer
        // (framing, ACKs, retry timers) but can never fire: any active
        // plan reshapes timing through that machinery alone, so comparing
        // a faulted fork against a *bare* baseline would measure the cost
        // of fault tolerance, not the faults. Against this null plan, the
        // first fingerprint divergence isolates the injected faults.
        let null_plan = FaultPlan {
            drop_nth: Some((MsgClass::Request, u64::MAX)),
            ..FaultPlan::off(seed)
        };
        let base =
            fingerprint_stream(fork().with_fault_plan(null_plan), warmup, stride, steps);
        for &rate in &rates {
            let faulted = fork().with_fault_plan(FaultPlan::uniform(rate, seed));
            let stream = fingerprint_stream(faulted, warmup, stride, steps);
            let first = (0..steps as usize).find(|&i| stream[i] != base[i]);
            let (at_cell, after_cell) = match first {
                Some(i) => {
                    let lag = (i as u64 + 1) * stride;
                    (format!("<= cycle {}", warmup + lag), format!("<= {lag}"))
                }
                None => ("none within horizon".into(), "-".into()),
            };
            t.row(vec![proto.name().into(), format!("faults {rate}"), at_cell, after_cell]);
            rows.push(json!({
                "protocol": proto.name(),
                "rate": rate,
                "first_divergence": match first {
                    Some(i) => Value::from(warmup + (i as u64 + 1) * stride),
                    None => Value::Null,
                },
            }));
        }
    }
    let text = format!(
        "{}\nEach protocol simulated its warmup once, frozen at cycle {warmup}; {} forks \
         (1 baseline + {} fault plans) fast-forwarded from the same snapshot.\n\
         Fingerprints cover processors, caches, buffers, and the directory — fault\n\
         machinery is excluded, so only genuine simulated-state divergence registers.\n",
        t.render(),
        rates.len() + 1,
        rates.len(),
    );
    Report {
        id: "diverge".into(),
        title: "Snapshot-forked divergence: first cycle a faulted fork departs its baseline"
            .into(),
        text,
        json: json!({
            "workload": workload.name(),
            "scale": p.scale.name(),
            "procs": p.procs,
            "warmup": warmup,
            "stride": stride,
            "steps": steps,
            "fault_seed": seed,
            "rows": rows,
        }),
    }
}

/// Architectural-state fingerprints at `steps` aligned cycles past
/// `warmup`: an FNV-1a hash over the snapshot serialization of the
/// machine's simulated state (workload progress, nodes, directory, parked
/// set, page homes, busy slots). Fault counters, the injector, and
/// link-layer retry state are deliberately left out of the hash so a
/// faulted fork only "diverges" once the simulated history itself departs,
/// not merely because a fault plan is attached.
fn fingerprint_stream(mut m: Machine, warmup: u64, stride: u64, steps: u64) -> Vec<u64> {
    (1..=steps)
        .map(|i| {
            let target = warmup + i * stride;
            if let Err(diag) = m.run_until(target) {
                panic!("fork stalled before cycle {target}: {diag}");
            }
            let snap = m.snapshot().expect("fork fingerprint snapshot");
            let doc = lrc_json::parse(&snap.to_json_string()).expect("snapshot reparses");
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for key in ["workload", "nodes", "dir", "parked", "page_home", "busy_info"] {
                for b in doc[key].dump().bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
            h
        })
        .collect()
}

/// Availability under a crash-stop failure. One node is killed mid-run
/// and the machine must degrade, not die: for each protocol the table
/// compares a control run (lease-based detection armed, nobody dies)
/// against a crashed run of the same workload, reporting the reclamation
/// work and degraded-mode traffic behind the survivors' completion. The
/// control rows double as the overhead check — an armed detector must
/// never suspect a live node.
pub fn avail(_r: &Runner, p: Params) -> Report {
    let workload = WorkloadKind::Mp3d;
    let victim = p.procs / 2;
    // Heartbeats are all-to-all, so their NI load — and the worst-case
    // queueing delay a lease must outlive — grows with machine size.
    // Scale both timers linearly from the 8-proc baseline (500 / 4 000,
    // proven delay-tolerant in tests/crash_faults.rs) so the armed
    // control detector stays false-positive-free at 64 nodes too.
    let timer_scale = (p.procs as u64 / 8).max(1);
    let plan = move |kill: bool| {
        let mut cp = CrashPlan::detection_only();
        cp.heartbeat_every = 500 * timer_scale;
        cp.lease_timeout = 4_000 * timer_scale;
        if kill {
            cp.victims.push((victim, 2_000));
        }
        FaultPlan::off(0xA7A1).with_crash(cp)
    };

    let mut t = Table::new(vec![
        "Protocol",
        "Run",
        "Cycles",
        "Finished",
        "Suspicions",
        "Dirty lost",
        "Clean reclaimed",
        "Degraded ops",
    ]);
    let mut rows = Vec::new();
    for proto in Protocol::ALL {
        for (label, kill) in [("control", false), ("crash", true)] {
            let res = Machine::new(MachineConfig::paper_default(p.procs), proto)
                .with_max_cycles(200_000_000_000)
                .with_watchdog(10_000_000)
                .with_fault_plan(plan(kill))
                .try_run(workload.build_seeded(p.procs, p.scale, p.seed))
                .unwrap_or_else(|d| {
                    panic!("{} {label}: survivors wedged after the crash: {d}", proto.name())
                });
            let c = &res.stats.crashes;
            if !kill {
                assert_eq!(c.crashes, 0, "{}: control run lost a node", proto.name());
                assert_eq!(
                    c.suspicions,
                    0,
                    "{}: the armed detector suspected a live node",
                    proto.name()
                );
            }
            let finished = res.stats.procs.iter().filter(|ps| ps.finish_time > 0).count();
            let degraded = c.degraded_fills
                + c.degraded_lock_grants
                + c.degraded_barrier_releases
                + c.forged_acks;
            t.row(vec![
                proto.name().into(),
                label.into(),
                res.stats.total_cycles.to_string(),
                format!("{finished}/{}", p.procs),
                c.suspicions.to_string(),
                c.dirty_lines_lost.to_string(),
                c.clean_lines_reclaimed.to_string(),
                degraded.to_string(),
            ]);
            rows.push(json!({
                "protocol": proto.name(),
                "run": label,
                "cycles": res.stats.total_cycles,
                "finished": finished,
                "suspicions": c.suspicions,
                "dirty_lines_lost": c.dirty_lines_lost,
                "clean_lines_reclaimed": c.clean_lines_reclaimed,
                "degraded_ops": degraded,
            }));
        }
    }
    let text = format!(
        "{}\nOne crash-stop failure (node {victim} at cycle 2000, heartbeat {hb}, lease {lease})\n\
         against a detection-armed control; survivors complete on every protocol, lost\n\
         updates surface as typed DataLoss events, and degraded ops count the forged\n\
         grants that kept the machine moving.\n",
        t.render(),
        hb = 500 * timer_scale,
        lease = 4_000 * timer_scale,
    );
    Report {
        id: "avail".into(),
        title: "Availability under a crash-stop node failure — control vs crashed run".into(),
        text,
        json: json!({
            "workload": workload.name(),
            "scale": p.scale.name(),
            "procs": p.procs,
            "victim": victim,
            "crash_cycle": 2000,
            "heartbeat_every": 500 * timer_scale,
            "lease_timeout": 4_000 * timer_scale,
            "rows": rows,
        }),
    }
}

/// All experiment ids, in paper order, followed by the extensions.
pub const ALL_IDS: [&str; 18] = [
    "table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "sweep",
    "quality", "traffic", "scaling", "ablate", "fences", "observe", "diverge", "avail",
];

/// Run an experiment by id.
pub fn run_by_id(id: &str, r: &Runner, p: Params) -> Option<Report> {
    Some(match id {
        "table1" => table1(r, p),
        "table2" => table2(r, p),
        "table3" => table3(r, p),
        "fig4" => fig4(r, p),
        "fig5" => fig5(r, p),
        "fig6" => fig6(r, p),
        "fig7" => fig7(r, p),
        "fig8" => fig8(r, p),
        "fig9" => fig9(r, p),
        "sweep" => sweep(r, p),
        "quality" => quality(r, p),
        "traffic" => traffic(r, p),
        "scaling" => scaling(r, p),
        "ablate" => crate::ablate::ablate(p),
        "fences" => crate::ablate::fences(p),
        "observe" => observe(r, p),
        "diverge" => diverge(r, p),
        "avail" => avail(r, p),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params { scale: Scale::Tiny, procs: 8, seed: 0 }
    }

    #[test]
    fn table1_renders() {
        let r = Runner::new(1, false);
        let rep = table1(&r, tiny());
        assert!(rep.text.contains("Cache line size"));
        assert!(rep.text.contains("128 bytes"));
    }

    #[test]
    fn avail_survivors_complete_on_every_protocol() {
        let r = Runner::new(0, false);
        let rep = avail(&r, tiny());
        let rows = rep.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 2 * Protocol::ALL.len());
        for row in rows {
            let expect = if row["run"].as_str() == Some("crash") { 7 } else { 8 };
            assert_eq!(row["finished"].as_u64(), Some(expect), "{}", row.dump());
        }
    }

    #[test]
    fn quality_report_has_three_axes() {
        let r = Runner::new(1, false);
        let rep = quality(&r, tiny());
        assert!(rep.text.contains('X') && rep.text.contains('Z'));
    }

    #[test]
    fn fig4_normalizes_against_sc() {
        let r = Runner::new(0, false);
        let rep = fig4(&r, tiny());
        let rows = rep.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 7);
        for row in rows {
            for v in row["normalized"].as_array().unwrap() {
                let x = v.as_f64().unwrap();
                assert!(x > 0.1 && x < 10.0, "suspicious normalization {x}");
            }
        }
    }

    #[test]
    fn run_by_id_covers_all() {
        let r = Runner::new(0, false);
        assert!(run_by_id("table1", &r, tiny()).is_some());
        assert!(run_by_id("nope", &r, tiny()).is_none());
    }

    /// The divergence hunt forks one snapshot per protocol: every
    /// (protocol, rate) pair reports a row, and a faulted fork never
    /// diverges *before* the fork point.
    #[test]
    fn diverge_reports_every_fork() {
        let r = Runner::new(1, false);
        let rep = diverge(&r, tiny());
        let rows = rep.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), Protocol::ALL.len() * 3);
        let warmup = rep.json["warmup"].as_u64().unwrap();
        for row in rows {
            let d = &row["first_divergence"];
            if let Some(c) = d.as_u64() {
                assert!(c > warmup, "divergence at {c} not after fork point {warmup}");
            }
        }
    }
}

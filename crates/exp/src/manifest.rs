//! Run manifests: the provenance record behind every stored artifact.
//!
//! A manifest answers "which commit, configuration, and seed produced this
//! table cell?" — the question a reviewer asks of any number in the paper
//! report. It carries a hash of the exact experiment configuration
//! (canonical JSON, so field order is irrelevant), the git commit and tool
//! version that ran it, host facts that matter for interpreting wall-clock
//! numbers (`host_cpus` — see results/README.md for why), and the seed the
//! run used. Manifests are stored as content-addressed blobs next to the
//! artifacts they describe (see [`crate::store`]).

use crate::sha::sha256_hex;
use lrc_json::{canonical_dump, json, json_struct, Value};

/// Manifest schema tag; bump on incompatible layout changes.
pub const MANIFEST_SCHEMA: &str = "lrc-exp-manifest-v1";

/// Sentinel for provenance fields a migrated legacy artifact cannot know.
pub const UNKNOWN: &str = "unknown";

/// Facts about the machine that executed the run. Simulated results are
/// deterministic and host-independent; these matter for wall-clock
/// readings and for auditing where a result came from.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFacts {
    /// `std::thread::available_parallelism` at run time (0 = unknown).
    pub host_cpus: u64,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
}

json_struct!(HostFacts { host_cpus, os });

impl HostFacts {
    /// Capture the current host.
    pub fn capture() -> HostFacts {
        HostFacts {
            host_cpus: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0),
            os: std::env::consts::OS.to_string(),
        }
    }

    /// The all-unknown host (migrated artifacts).
    pub fn unknown() -> HostFacts {
        HostFacts { host_cpus: 0, os: UNKNOWN.to_string() }
    }
}

/// The provenance record for one stored artifact.
///
/// Field order is pinned by the `json_struct!` listing below; the manifest
/// itself is stored canonically, so reordering these fields changes
/// nothing on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// Experiment id (`table3`, `fig4`, …).
    pub experiment: String,
    /// `lrc-exp` crate version that produced the artifact.
    pub tool_version: String,
    /// Short git commit of the producing tree (or [`UNKNOWN`]).
    pub git_commit: String,
    /// Unix seconds, passed in by the harness (`--timestamp` /
    /// `LRC_TIMESTAMP`) so committed stores stay reproducible; 0 for
    /// migrated artifacts.
    pub timestamp: u64,
    /// The executing host.
    pub host: HostFacts,
    /// Run parameters: `{"scale","procs","seed"}` (plus anything a future
    /// experiment needs). Kept as JSON so the manifest schema survives
    /// parameter growth.
    pub params: Value,
    /// The canonicalized base machine configuration (Table-1 defaults for
    /// the run's processor count); `null` for migrated artifacts.
    pub config: Value,
    /// [`config_hash`] over (experiment, params, config), or [`UNKNOWN`]
    /// for migrated artifacts.
    pub config_hash: String,
    /// Content hash of the artifact blob this manifest describes.
    pub artifact: String,
    /// True when synthesized by `lrc-exp migrate` for a pre-store result:
    /// provenance fields are placeholders and the staleness checker only
    /// verifies integrity, not freshness.
    pub migrated: bool,
}

json_struct!(RunManifest {
    schema,
    experiment,
    tool_version,
    git_commit,
    timestamp,
    host,
    params,
    config,
    config_hash,
    artifact,
    migrated,
});

/// The configuration hash: SHA-256 over the canonical JSON of the triple
/// that determines a deterministic run's output. Invariant under field
/// reordering in `params`/`config` (canonicalization sorts keys).
pub fn config_hash(experiment: &str, params: &Value, config: &Value) -> String {
    let doc = json!({
        "experiment": experiment,
        "params": params.clone(),
        "config": config.clone(),
    });
    sha256_hex(canonical_dump(&doc).as_bytes())
}

impl RunManifest {
    /// A fresh manifest for an artifact just produced by this tool.
    pub fn new(
        experiment: &str,
        params: Value,
        config: Value,
        artifact_hash: &str,
        timestamp: u64,
    ) -> RunManifest {
        let config_hash = config_hash(experiment, &params, &config);
        RunManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            experiment: experiment.to_string(),
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            git_commit: git_commit(),
            timestamp,
            host: HostFacts::capture(),
            params,
            config,
            config_hash,
            artifact: artifact_hash.to_string(),
            migrated: false,
        }
    }

    /// A synthesized manifest for a legacy artifact with unknown
    /// provenance (`lrc-exp migrate`).
    pub fn migrated(experiment: &str, params: Value, artifact_hash: &str) -> RunManifest {
        RunManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            experiment: experiment.to_string(),
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            git_commit: UNKNOWN.to_string(),
            timestamp: 0,
            host: HostFacts::unknown(),
            params,
            config: Value::Null,
            config_hash: UNKNOWN.to_string(),
            artifact: artifact_hash.to_string(),
            migrated: true,
        }
    }
}

/// Best-effort `git rev-parse --short HEAD`; [`UNKNOWN`] outside a
/// checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| UNKNOWN.to_string())
}

/// The manifest timestamp: an explicit harness value wins, then the
/// `LRC_TIMESTAMP` environment variable, then the system clock. The
/// explicit paths keep committed stores and CI runs byte-reproducible.
pub fn resolve_timestamp(explicit: Option<u64>) -> u64 {
    if let Some(t) = explicit {
        return t;
    }
    if let Some(t) = std::env::var("LRC_TIMESTAMP").ok().and_then(|s| s.parse().ok()) {
        return t;
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_ignores_field_order() {
        let p1 = json!({ "scale": "tiny", "procs": 8, "seed": 1 });
        let p2 = json!({ "seed": 1, "procs": 8, "scale": "tiny" });
        let c = json!({ "line_size": 128, "procs": 8 });
        assert_eq!(config_hash("fig4", &p1, &c), config_hash("fig4", &p2, &c));
        assert_ne!(config_hash("fig4", &p1, &c), config_hash("fig5", &p1, &c));
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = RunManifest::new(
            "table3",
            json!({ "scale": "tiny", "procs": 8, "seed": 0 }),
            json!({ "line_size": 128 }),
            "abc123",
            1_754_784_000,
        );
        let v = lrc_json::ToJson::to_json(&m);
        let back = RunManifest::from_json_detailed(&v).expect("roundtrip");
        assert_eq!(back, m);
        assert_eq!(back.schema, MANIFEST_SCHEMA);
        assert!(!back.migrated);
    }

    #[test]
    fn migrated_manifest_marks_unknown_provenance() {
        let m = RunManifest::migrated("fig4", json!({ "scale": "paper" }), "deadbeef");
        assert!(m.migrated);
        assert_eq!(m.git_commit, UNKNOWN);
        assert_eq!(m.config_hash, UNKNOWN);
        assert_eq!(m.timestamp, 0);
        assert!(m.config.is_null());
    }
}

//! `lrc-soak` — the chaos soak harness: fault-injection sweeps with value
//! verification.
//!
//! Sweeps a grid of fault rates × protocols × seeds over randomly generated
//! (seeded, reproducible) data-race-free programs, with the link layer's
//! NACK/retry/timeout machinery recovering every injected fault. Each cell:
//!
//! 1. runs under a [`FaultPlan`] with uniform per-class fault rates and the
//!    progress watchdog armed — a wedge surfaces as a structured
//!    [`StallDiagnosis`], never a hang;
//! 2. verifies values: the machine's final memory must equal the reference
//!    sequentially consistent execution replayed over the observed lock
//!    grant order (DRF ⇒ SC, faults or not). The premise of that
//!    implication is *checked*, not assumed: every cell runs with the
//!    happens-before race detector armed, and the value comparison only
//!    applies once the detector certifies the run race-free;
//! 3. runs again and requires bit-identical statistics — the fault pattern,
//!    and hence the whole simulation (race reports included), is a pure
//!    function of `(seed, plan)`.
//!
//! After the sweep, an *unrecoverable* stage drops messages with retries
//! disabled and demonstrates that the failure mode is a structured
//! diagnosis naming the abandoned deliveries, not silent corruption.
//!
//! ```text
//! lrc-soak [--smoke] [--capacity-sweep] [--races] [--availability]
//!          [--procs N] [--seeds N] [--phases N] [--rates R1,R2,...]
//!          [--watchdog CYCLES] [--checkpoint-dir DIR] [--resume DIR]
//!          [--replay FILE] [--quiet]
//! ```
//!
//! `--smoke` is the CI profile: tiny programs, rates {0, 1e-3}, one seed,
//! all four protocols. The default profile sweeps rates {0, 1e-4, 1e-3}
//! across three seeds. Exit status is non-zero on any verification failure
//! or on a wedge at a recoverable rate.
//!
//! The fault-grid sweep is **crash-resumable**: `--checkpoint-dir DIR`
//! journals each completed cell (atomically, after its verdict), and
//! `--resume DIR` replays journaled cells without rerunning them — a
//! sweep killed at any instant and resumed produces output and exit
//! status identical to an uninterrupted one. A wedged cell auto-dumps the
//! stalled machine's snapshot next to the journal with ready-to-paste
//! `--replay` / `--resume` commands in the report; `--replay FILE`
//! restores such a dump and reproduces the stall in isolation.
//!
//! `--capacity-sweep` replaces the fault grid with a *finite-resource* grid:
//! NI queue depth × write-notice budget × protocol, fault-free. Every cell
//! must complete (backpressure and the overflow fallback degrade timing,
//! never progress), verify against the reference SC execution, and rerun
//! bit-identically; the sweep as a whole must exercise real pressure
//! (nonzero NACK / reject / overflow counters in at least one cell).
//!
//! `--availability` replaces the fault grid with a *crash-stop* grid:
//! crash rate (the fraction of nodes killed, at seeded early-run cycles)
//! × protocol × seed, fault-free links, lease-based detection armed in
//! every cell. Surviving nodes must complete their programs, the typed
//! crash counters must match the plan, and every cell must rerun with
//! bit-identical statistics. The rate-0 cells are the control: the armed
//! detector must stay silent and the full value verification applies.
//! Availability sweeps are crash-resumable like the fault grid, and the
//! sweep manifest records the crash-plan shape so a `--resume` under a
//! different plan is a fatal mismatch instead of silently mixed cells.
//!
//! `--races` replaces the fault grid with a race-detection sweep over the
//! application suite: the five data-race-free SPLASH-style generators
//! (barnes, blu, cholesky, fft, gauss) must come back clean under every
//! protocol, the deliberately racy programs (mp3d and locusroute — the two
//! the paper singles out as violating the release-consistency model — plus
//! the planted `racy` micro workload) must be flagged, and every cell must
//! rerun with bit-identical statistics, race reports included.

#![forbid(unsafe_code)]

use lrc_core::{CrashPlan, FaultPlan, FaultRates, Machine, MachineSnapshot, MsgClass, StallDiagnosis};
use lrc_json::Value;
use lrc_sim::refint;
use lrc_sim::{MachineConfig, MachineStats, Op, Protocol, ResourceLimits, Rng, Script};
use std::fs;
use std::path::{Path, PathBuf};

/// Locks protecting the shared region; shared line `l` belongs to lock
/// `l % N_LOCKS`, and is only touched inside that lock's critical sections,
/// which keeps every generated program data-race-free by construction.
const N_LOCKS: u64 = 4;
/// Shared lines per lock.
const LINES_PER_LOCK: u64 = 4;
/// First private line; processor `p` owns `[PRIVATE_BASE + 8p, +8)`.
const PRIVATE_BASE: u64 = 512;

/// Generate a seeded, reproducible DRF program: barrier-separated phases of
/// lock-protected shared-line critical sections interleaved with private
/// accesses and computes.
fn soak_script(seed: u64, procs: usize, phases: usize, csecs: usize, cfg: &MachineConfig) -> Script {
    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(0x50a4));
    let line = |l: u64, word: u64| l * cfg.line_size as u64 + word * cfg.word_size as u64;
    let words = (cfg.line_size / cfg.word_size) as u64;
    let mut streams: Vec<Vec<Op>> = Vec::with_capacity(procs);
    for p in 0..procs {
        let mut ops = Vec::new();
        for _ in 0..phases {
            for _ in 0..csecs {
                // Private work between critical sections.
                match rng.below(3) {
                    0 => ops.push(Op::Compute(1 + rng.below(20) as u32)),
                    1 => ops.push(Op::Read(line(PRIVATE_BASE + 8 * p as u64 + rng.below(8), 0))),
                    _ => ops.push(Op::Write(line(PRIVATE_BASE + 8 * p as u64 + rng.below(8), 0))),
                }
                let lock = rng.below(N_LOCKS);
                ops.push(Op::Acquire(lock as u32));
                for _ in 0..1 + rng.below(3) {
                    let l = lock + N_LOCKS * rng.below(LINES_PER_LOCK);
                    let addr = line(l, rng.below(words));
                    if rng.below(2) == 0 {
                        ops.push(Op::Read(addr));
                    }
                    ops.push(Op::Write(addr));
                }
                ops.push(Op::Release(lock as u32));
            }
            ops.push(Op::Barrier(0));
        }
        streams.push(ops);
    }
    Script::new("soak", streams)
}

/// Check a completed machine's values against the reference SC execution:
/// no liveness residue, no write races, final memory equal to the
/// reference interpreter replaying the observed grant order.
fn verify_values(m: &Machine, script: &Script) -> Result<(), String> {
    let stuck = m.stuck_states();
    if !stuck.is_empty() {
        let rendered: Vec<String> = stuck.iter().map(|s| s.to_string()).collect();
        return Err(format!("liveness residue: {}", rendered.join("; ")));
    }
    // DRF ⇒ SC is an implication; establish the premise before comparing
    // values. The soak generator is DRF by construction, so a reported race
    // here is itself a failure — of the generator or the detector — and the
    // value comparison below would be meaningless noise on top of it.
    if let Some(rs) = m.race_stats() {
        if !rs.race_free() {
            let first = rs.reports.first().map_or(String::new(), |r| format!(" — {}", r.render()));
            return Err(format!(
                "race detector found {} race(s) in a supposedly DRF program{first}",
                rs.races_found
            ));
        }
    }
    let (mem, conflicts) = m.final_memory().ok_or("value tracking was not enabled")?;
    if !conflicts.is_empty() {
        return Err(format!("conflicting unflushed writes at quiescence: {conflicts:?}"));
    }
    let cfg = m.config();
    let ref_mem = refint::interpret(script, cfg.line_size, cfg.word_size, m.grant_log())
        .map_err(|e| e.to_string())?;
    if mem != ref_mem {
        let diffs = ref_mem
            .iter()
            .filter(|(k, v)| mem.get(k) != Some(v))
            .count()
            + mem.keys().filter(|k| !ref_mem.contains_key(k)).count();
        return Err(format!("final memory differs from the reference SC execution ({diffs} words)"));
    }
    Ok(())
}

/// One sweep cell's machine, built fresh per repetition. The race detector
/// rides along in every cell so [`verify_values`]'s DRF ⇒ SC comparison
/// rests on a checked verdict instead of the generator's promise.
fn build(cfg: &MachineConfig, proto: Protocol, plan: FaultPlan, watchdog: u64) -> Machine {
    Machine::new(cfg.clone(), proto)
        .with_fault_plan(plan)
        .with_value_tracking()
        .with_race_detection()
        .with_watchdog(watchdog)
        .with_max_cycles(50_000_000_000)
}

enum CellOutcome {
    /// Completed and verified; carries the stats of the (reproduced) run.
    Ok(Box<MachineStats>),
    /// Completed but failed value verification or reproduction.
    Failed(String),
    /// Wedged with a structured diagnosis (a failure at recoverable rates),
    /// carrying the wedged machine itself so the caller can dump its
    /// snapshot next to the report for offline replay.
    Wedged(Box<StallDiagnosis>, Box<Machine>),
}

fn run_cell(
    cfg: &MachineConfig,
    proto: Protocol,
    rate: f64,
    seed: u64,
    phases: usize,
    csecs: usize,
    watchdog: u64,
) -> CellOutcome {
    let script = soak_script(seed, cfg.num_procs, phases, csecs, cfg);
    let plan = FaultPlan::uniform(rate, seed);
    let (first, m) =
        match build(cfg, proto, plan.clone(), watchdog).try_run_wedge(Box::new(script.clone())) {
            Ok(pair) => pair,
            Err((diag, wedged)) => return CellOutcome::Wedged(diag, wedged),
        };
    if let Err(e) = verify_values(&m, &script) {
        return CellOutcome::Failed(e);
    }
    // Reproduce: same (seed, plan) must yield bit-identical statistics.
    match build(cfg, proto, plan, watchdog).try_run(Box::new(script)) {
        Ok(second) if second.stats == first.stats => CellOutcome::Ok(Box::new(first.stats)),
        Ok(_) => CellOutcome::Failed("rerun with the same (seed, plan) diverged".into()),
        Err(diag) => CellOutcome::Failed(format!("rerun wedged where the first run completed: {diag}")),
    }
}

/// One capacity-sweep cell: fault-free, finite resources from `cfg`.
/// Completes (or wedges — a failure), verifies values against the reference
/// SC execution, and reruns for bit-identical statistics.
fn capacity_cell(
    cfg: &MachineConfig,
    proto: Protocol,
    seed: u64,
    phases: usize,
    csecs: usize,
    watchdog: u64,
) -> CellOutcome {
    let script = soak_script(seed, cfg.num_procs, phases, csecs, cfg);
    let build = || {
        Machine::new(cfg.clone(), proto)
            .with_value_tracking()
            .with_race_detection()
            .with_watchdog(watchdog)
            .with_max_cycles(50_000_000_000)
    };
    let (first, m) = match build().try_run_wedge(Box::new(script.clone())) {
        Ok(pair) => pair,
        Err((diag, wedged)) => return CellOutcome::Wedged(diag, wedged),
    };
    if let Err(e) = verify_values(&m, &script) {
        return CellOutcome::Failed(e);
    }
    match build().try_run(Box::new(script)) {
        Ok(second) if second.stats == first.stats => CellOutcome::Ok(Box::new(first.stats)),
        Ok(_) => CellOutcome::Failed("rerun with the same capacities diverged".into()),
        Err(diag) => {
            CellOutcome::Failed(format!("rerun wedged where the first run completed: {diag}"))
        }
    }
}

/// The finite-resource sweep: NI queue depth (which also bounds directory
/// request slots) × write-notice budget × protocol × seed. Returns the
/// number of failed cells.
fn capacity_sweep(
    base: &MachineConfig,
    smoke: bool,
    seeds: u64,
    phases: usize,
    csecs: usize,
    watchdog: u64,
    quiet: bool,
) -> usize {
    let depths: &[Option<usize>] = if smoke { &[None, Some(2)] } else { &[None, Some(8), Some(2)] };
    let budgets: &[Option<usize>] = if smoke { &[None, Some(1)] } else { &[None, Some(16), Some(1)] };
    let fmt = |c: Option<usize>| c.map_or("inf".to_string(), |v| v.to_string());

    let mut cells = 0usize;
    let mut failures = 0usize;
    let mut pressure = 0u64;
    for &depth in depths {
        for &budget in budgets {
            let mut cfg = base.clone();
            cfg.resources = ResourceLimits {
                ni_ingress: depth,
                ni_egress: depth,
                dir_request_slots: depth,
                write_notice_buffer: budget,
                ..ResourceLimits::unbounded()
            };
            for &proto in &Protocol::ALL {
                for seed in 1..=seeds {
                    cells += 1;
                    let tag = format!(
                        "{:<8} depth={:<3} wn={:<3} seed={seed}",
                        proto.name(),
                        fmt(depth),
                        fmt(budget)
                    );
                    match capacity_cell(&cfg, proto, seed, phases, csecs, watchdog) {
                        CellOutcome::Ok(stats) => {
                            let r = &stats.resources;
                            pressure += r.busy_nacks + r.ni_rejects + r.wn_overflows;
                            if !quiet {
                                eprintln!(
                                    "  ok {tag}  {:>10} cycles  {:>7} refs  \
                                     {:>4} nacks  {:>4} rejects  {:>3} overflows",
                                    stats.total_cycles,
                                    stats.total_refs(),
                                    r.busy_nacks,
                                    r.ni_rejects,
                                    r.wn_overflows,
                                );
                            }
                        }
                        CellOutcome::Failed(e) => {
                            failures += 1;
                            eprintln!("FAIL {tag}: {e}");
                        }
                        CellOutcome::Wedged(diag, _) => {
                            failures += 1;
                            eprintln!("FAIL {tag}: wedged under finite capacities: {diag}");
                        }
                    }
                }
            }
        }
    }
    if pressure == 0 {
        failures += 1;
        eprintln!("FAIL capacity sweep: no cell ever NACKed, rejected, or overflowed");
    }
    if failures == 0 {
        eprintln!(
            "lrc-soak --capacity-sweep: all {cells} cells verified \
             ({pressure} pressure events, every run value-correct and reproducible)"
        );
    }
    failures
}

/// The `--races` sweep: run the application suite (plus the planted
/// positive control) under every protocol with the detector armed. The
/// five DRF generators must come back clean; mp3d, locusroute, and the
/// `racy` micro workload must be flagged; and every cell must reproduce
/// bit-identically — race reports included, since they live in
/// [`MachineStats`]. Returns the number of failed cells.
fn races_sweep(base: &MachineConfig, smoke: bool, watchdog: u64, quiet: bool) -> usize {
    use lrc_workloads::{racy, Scale, WorkloadKind};

    let scale = if smoke { Scale::Tiny } else { Scale::Small };
    // (name, builder, expected racy?). mp3d and locusroute are racy *by
    // construction* — the paper names them as the two programs that do not
    // obey the release-consistency model — so they double as organic
    // positive controls alongside the planted one.
    type Builder = Box<dyn Fn() -> Box<dyn lrc_sim::Workload>>;
    let mut cells_spec: Vec<(String, Builder, bool)> = Vec::new();
    for kind in WorkloadKind::ALL {
        let expected_racy = matches!(kind, WorkloadKind::Mp3d | WorkloadKind::Locusroute);
        let procs = base.num_procs;
        cells_spec.push((
            kind.name().to_string(),
            Box::new(move || kind.build(procs, scale)),
            expected_racy,
        ));
    }
    let procs = base.num_procs;
    cells_spec.push(("racy".to_string(), Box::new(move || Box::new(racy::build(procs, 3))), true));

    let mut failures = 0usize;
    let mut cells = 0usize;
    for (name, build_w, expected_racy) in &cells_spec {
        for &proto in &Protocol::ALL {
            cells += 1;
            let tag = format!("{:<10} {:<8}", name, proto.name());
            let run = || {
                Machine::new(base.clone(), proto)
                    .with_race_detection()
                    .with_watchdog(watchdog)
                    .with_max_cycles(50_000_000_000)
                    .try_run(build_w())
            };
            let first = match run() {
                Ok(r) => r,
                Err(diag) => {
                    failures += 1;
                    eprintln!("FAIL {tag}: wedged: {diag}");
                    continue;
                }
            };
            let races = &first.stats.races;
            if *expected_racy && races.race_free() {
                failures += 1;
                eprintln!("FAIL {tag}: known-racy program came back clean");
                continue;
            }
            if !*expected_racy && !races.race_free() {
                failures += 1;
                let first_report =
                    races.reports.first().map_or(String::new(), |r| format!(" — {}", r.render()));
                eprintln!(
                    "FAIL {tag}: {} race(s) in a DRF generator{first_report}",
                    races.races_found
                );
                continue;
            }
            match run() {
                Ok(second) if second.stats == first.stats => {
                    if !quiet {
                        eprintln!(
                            "  ok {tag}  {:>10} cycles  {:>9} words monitored  \
                             {:>3} race(s){}",
                            first.stats.total_cycles,
                            races.words_monitored,
                            races.races_found,
                            if *expected_racy { "  (expected racy)" } else { "" },
                        );
                    }
                }
                Ok(_) => {
                    failures += 1;
                    eprintln!("FAIL {tag}: rerun diverged (race reports must be bit-identical)");
                }
                Err(diag) => {
                    failures += 1;
                    eprintln!("FAIL {tag}: rerun wedged where the first run completed: {diag}");
                }
            }
        }
    }
    if failures == 0 {
        eprintln!(
            "lrc-soak --races: all {cells} cells verified (5 DRF generators clean, \
             mp3d/locusroute/racy flagged, every report reproducible)"
        );
    }
    failures
}

/// Heartbeat period for every availability cell. Recorded in the sweep
/// manifest: resuming under a different period is a fatal mismatch.
const AVAIL_HEARTBEAT: u64 = 500;
/// Lease bound for every availability cell. Comfortably dominates the
/// heartbeat period plus the worst-case NI queueing delay, so no
/// slow-but-alive node is ever falsely declared dead.
const AVAIL_LEASE: u64 = 4_000;

/// The availability sweep's crash plan for one cell: `ceil(rate × procs)`
/// distinct seeded victims, each killed at a seeded early-run cycle (the
/// generated programs barrier every phase, so survivors provably depend
/// on reclamation to finish). At most `procs - 1` nodes die; rate 0 keeps
/// detection armed with nobody on the kill list.
fn avail_plan(rate: f64, procs: usize, seed: u64) -> FaultPlan {
    let n = ((rate * procs as f64).ceil() as usize).min(procs.saturating_sub(1));
    let mut cp = CrashPlan::detection_only();
    cp.heartbeat_every = AVAIL_HEARTBEAT;
    cp.lease_timeout = AVAIL_LEASE;
    let mut rng = Rng::new(seed.wrapping_mul(0x6b43_a9b5).wrapping_add(0xD1ED));
    while cp.victims.len() < n {
        let v = rng.below(procs as u64) as usize;
        if cp.victims.iter().all(|&(w, _)| w != v) {
            cp.victims.push((v, 1_000 + 250 * rng.below(6)));
        }
    }
    FaultPlan::off(seed).with_crash(cp)
}

/// One availability cell. Rate-0 control cells get the full soak
/// verification (values against the reference SC execution, detector
/// provably silent); crashed cells assert surviving-node completion,
/// plan-matching typed crash counters, and a bit-identical rerun.
fn availability_cell(
    cfg: &MachineConfig,
    proto: Protocol,
    rate: f64,
    seed: u64,
    phases: usize,
    csecs: usize,
    watchdog: u64,
) -> CellOutcome {
    let script = soak_script(seed, cfg.num_procs, phases, csecs, cfg);
    let plan = avail_plan(rate, cfg.num_procs, seed);
    let victims: Vec<usize> =
        plan.crash.as_ref().map_or(Vec::new(), |c| c.victims.iter().map(|&(v, _)| v).collect());

    if victims.is_empty() {
        let (first, m) =
            match build(cfg, proto, plan.clone(), watchdog).try_run_wedge(Box::new(script.clone())) {
                Ok(pair) => pair,
                Err((diag, wedged)) => return CellOutcome::Wedged(diag, wedged),
            };
        let c = &first.stats.crashes;
        if c.heartbeats_sent == 0 {
            return CellOutcome::Failed(format!("detection was never armed: {c:?}"));
        }
        if c.crashes != 0 || c.suspicions != 0 {
            return CellOutcome::Failed(format!(
                "the armed detector perturbed a healthy run: {c:?}"
            ));
        }
        if let Err(e) = verify_values(&m, &script) {
            return CellOutcome::Failed(e);
        }
        return match build(cfg, proto, plan, watchdog).try_run(Box::new(script)) {
            Ok(second) if second.stats == first.stats => CellOutcome::Ok(Box::new(first.stats)),
            Ok(_) => CellOutcome::Failed("rerun with the same (seed, plan) diverged".into()),
            Err(diag) => {
                CellOutcome::Failed(format!("rerun wedged where the first run completed: {diag}"))
            }
        };
    }

    // Crashed cells: dirty lines can die with their owners, so the value
    // comparison against the reference SC execution no longer applies;
    // the cell's contract is completion, typed accounting, determinism.
    let run = || {
        Machine::new(cfg.clone(), proto)
            .with_fault_plan(plan.clone())
            .with_watchdog(watchdog)
            .with_max_cycles(50_000_000_000)
    };
    let (first, _m) = match run().try_run_wedge(Box::new(script.clone())) {
        Ok(pair) => pair,
        Err((diag, wedged)) => return CellOutcome::Wedged(diag, wedged),
    };
    let c = &first.stats.crashes;
    if c.crashes != victims.len() as u64 {
        return CellOutcome::Failed(format!(
            "{} node(s) on the kill list but {} died: {c:?}",
            victims.len(),
            c.crashes
        ));
    }
    if c.suspicions == 0 {
        return CellOutcome::Failed(format!("nobody ever suspected the dead node(s): {c:?}"));
    }
    for (p, ps) in first.stats.procs.iter().enumerate() {
        if victims.contains(&p) {
            if ps.finish_time != 0 {
                return CellOutcome::Failed(format!("dead node {p} finished its program"));
            }
        } else if ps.finish_time == 0 {
            return CellOutcome::Failed(format!("surviving node {p} never finished"));
        }
    }
    match run().try_run(Box::new(script)) {
        Ok(second) if second.stats == first.stats => CellOutcome::Ok(Box::new(first.stats)),
        Ok(_) => CellOutcome::Failed("rerun with the same (seed, plan) diverged".into()),
        Err(diag) => {
            CellOutcome::Failed(format!("rerun wedged where the first run completed: {diag}"))
        }
    }
}

/// The `--availability` sweep: crash rate × protocol × seed. Journaled
/// and resumable exactly like the fault grid (the caller has already
/// pinned the manifest, crash-plan shape included). Returns the number of
/// failed cells.
#[allow(clippy::too_many_arguments)]
fn availability_sweep(
    cfg: &MachineConfig,
    rates: &[f64],
    seeds: u64,
    phases: usize,
    csecs: usize,
    watchdog: u64,
    quiet: bool,
    journal: &Option<Journal>,
    resume: bool,
    dump_dir: &Path,
) -> usize {
    let mut cells = 0usize;
    let mut failures = 0usize;
    let mut total_killed = 0u64;
    let mut total_lost = 0u64;
    for &rate in rates {
        for &proto in &Protocol::ALL {
            for seed in 1..=seeds {
                cells += 1;
                let key = format!("avail{rate}-{}-seed{seed}", proto.name());
                let (rec, fresh) = match resume
                    .then(|| journal.as_ref().and_then(|j| j.load(&key)))
                    .flatten()
                {
                    Some(rec) => (rec, false),
                    None => {
                        let rec = match availability_cell(
                            cfg, proto, rate, seed, phases, csecs, watchdog,
                        ) {
                            CellOutcome::Ok(stats) => {
                                let c = &stats.crashes;
                                let survivors = stats
                                    .procs
                                    .iter()
                                    .filter(|ps| ps.finish_time > 0)
                                    .count();
                                CellRecord {
                                    ok: true,
                                    line: format!(
                                        "  ok {proto:<8} crash={rate:<5} seed={seed}  \
                                         {:>10} cycles  {survivors}/{} finished  \
                                         {:>2} killed  {:>3} dirty lost  {:>3} reclaimed\n",
                                        stats.total_cycles,
                                        stats.procs.len(),
                                        c.crashes,
                                        c.dirty_lines_lost,
                                        c.clean_lines_reclaimed,
                                    ),
                                    // Journal fields double as the sweep's
                                    // availability totals: nodes killed and
                                    // dirty lines lost.
                                    injected: c.crashes,
                                    retries: c.dirty_lines_lost,
                                }
                            }
                            CellOutcome::Failed(e) => CellRecord {
                                ok: false,
                                line: format!("FAIL {proto:<8} crash={rate:<5} seed={seed}: {e}\n"),
                                injected: 0,
                                retries: 0,
                            },
                            CellOutcome::Wedged(diag, wedged) => {
                                let mut line = format!(
                                    "FAIL {proto:<8} crash={rate:<5} seed={seed}: \
                                     survivors wedged: {diag}\n"
                                );
                                match dump_wedge(dump_dir, &key, &wedged, seed, phases, csecs) {
                                    Ok(p) => line.push_str(&format!(
                                        "      stall snapshot: {}\n      \
                                         replay: lrc-soak --replay {}\n",
                                        p.display(),
                                        p.display()
                                    )),
                                    Err(e) => line
                                        .push_str(&format!("      (stall snapshot not written: {e})\n")),
                                }
                                CellRecord { ok: false, line, injected: 0, retries: 0 }
                            }
                        };
                        (rec, true)
                    }
                };
                if rec.ok {
                    total_killed += rec.injected;
                    total_lost += rec.retries;
                    if !quiet {
                        eprint!("{}", rec.line);
                    }
                } else {
                    failures += 1;
                    eprint!("{}", rec.line);
                }
                if fresh {
                    if let Some(j) = journal {
                        j.store(&key, &rec);
                    }
                }
            }
        }
    }
    if failures == 0 {
        eprintln!(
            "lrc-soak --availability: all {cells} cells verified ({total_killed} nodes killed, \
             {total_lost} dirty lines lost as typed events, every surviving node completed, \
             every run reproducible)"
        );
    }
    failures
}

/// The unrecoverable stage: drop messages with retries disabled, and
/// require the failure mode to be a structured diagnosis that names the
/// abandoned deliveries — never a hang, never silent completion with wrong
/// values. The wedged machine's snapshot is dumped into `dump_dir` with a
/// ready-to-paste replay command, demonstrating the stall artifact chain
/// end to end. Returns the stage's report block on success, an error
/// description if no seed produced a wedge or a wedge was malformed.
fn unrecoverable_stage(
    cfg: &MachineConfig,
    phases: usize,
    csecs: usize,
    dump_dir: &Path,
) -> Result<String, String> {
    let mut lossy = FaultPlan::off(0);
    lossy.rates = [FaultRates { drop: 0.25, ..FaultRates::default() }; MsgClass::COUNT];
    lossy.max_retries = 0;
    for seed in 1..=5u64 {
        let script = soak_script(seed, cfg.num_procs, phases, csecs, cfg);
        let plan = FaultPlan { seed, ..lossy.clone() };
        match build(cfg, Protocol::Lrc, plan, 2_000_000).try_run_wedge(Box::new(script)) {
            Ok(_) => continue, // this seed got lucky; try the next
            Err((diag, wedged)) => {
                if diag.abandoned_msgs.is_empty() {
                    return Err(format!(
                        "wedge without abandoned deliveries in the diagnosis: {diag}"
                    ));
                }
                let mut line = format!(
                    "  unrecoverable stage (seed {seed}): {} — {} abandoned deliveries, \
                     e.g. {}\n",
                    match diag.reason {
                        lrc_core::StallReason::Deadlock => "deadlock".to_string(),
                        ref r => format!("{r:?}"),
                    },
                    diag.abandoned_msgs.len(),
                    diag.abandoned_msgs[0]
                );
                let key = format!("unrecoverable-seed{seed}");
                match dump_wedge(dump_dir, &key, &wedged, seed, phases, csecs) {
                    Ok(p) => line.push_str(&format!(
                        "      stall snapshot: {}\n      replay: lrc-soak --replay {}\n",
                        p.display(),
                        p.display()
                    )),
                    Err(e) => line.push_str(&format!("      (stall snapshot not written: {e})\n")),
                }
                return Ok(line);
            }
        }
    }
    Err("25% loss with retries disabled never wedged in 5 seeds".into())
}

/// One finished cell as the sweep journal records it: the verdict, the
/// exact stderr block the cell emitted, and the counter deltas it
/// contributed — everything a `--resume` needs to reconstitute the cell
/// without rerunning it, byte-identically.
struct CellRecord {
    ok: bool,
    line: String,
    injected: u64,
    retries: u64,
}

impl CellRecord {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("outcome".to_string(), Value::Str(if self.ok { "ok" } else { "fail" }.to_string())),
            ("injected".to_string(), Value::Str(self.injected.to_string())),
            ("retries".to_string(), Value::Str(self.retries.to_string())),
            ("line".to_string(), Value::Str(self.line.clone())),
        ])
    }

    fn from_json(v: &Value) -> Option<CellRecord> {
        Some(CellRecord {
            ok: match v["outcome"].as_str()? {
                "ok" => true,
                "fail" => false,
                _ => return None,
            },
            injected: v["injected"].as_str()?.parse().ok()?,
            retries: v["retries"].as_str()?.parse().ok()?,
            line: v["line"].as_str()?.to_string(),
        })
    }
}

/// The crash-resumable sweep journal: one marker file per completed cell,
/// written atomically (tmp + rename) *after* the cell's verdict, so a kill
/// at any instant leaves either a complete marker or none. A torn or
/// unparseable marker is treated as absent — the cell simply reruns.
struct Journal {
    dir: PathBuf,
}

impl Journal {
    fn open(dir: &str) -> Journal {
        fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("cannot create checkpoint dir {dir}: {e}")));
        Journal { dir: PathBuf::from(dir) }
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("cell-{key}.json"))
    }

    fn load(&self, key: &str) -> Option<CellRecord> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        CellRecord::from_json(&lrc_json::parse(&text).ok()?)
    }

    fn store(&self, key: &str, rec: &CellRecord) {
        let tmp = self.dir.join(format!(".cell-{key}.json.tmp"));
        let write = fs::write(&tmp, rec.to_json().pretty())
            .and_then(|()| fs::rename(&tmp, self.path(key)));
        if let Err(e) = write {
            eprintln!("lrc-soak: warning: checkpoint marker for {key} not written: {e}");
        }
    }

    /// Pin the sweep shape the journal was created for. A `--resume` under
    /// different parameters would silently skip cells that mean something
    /// else, so a mismatch is fatal.
    fn check_manifest(&self, manifest: &Value) {
        let path = self.dir.join("sweep.json");
        let want = manifest.pretty();
        match fs::read_to_string(&path) {
            Ok(have) if have == want => {}
            Ok(_) => die(&format!(
                "checkpoint dir {} was written by a sweep with different \
                 parameters; pass the original flags or use a fresh dir",
                self.dir.display()
            )),
            Err(_) => {
                let tmp = self.dir.join(".sweep.json.tmp");
                let write =
                    fs::write(&tmp, &want).and_then(|()| fs::rename(&tmp, &path));
                if let Err(e) = write {
                    eprintln!("lrc-soak: warning: sweep manifest not written: {e}");
                }
            }
        }
    }
}

/// Dump a wedged machine's snapshot, wrapped in an envelope carrying the
/// generator parameters needed to rebuild its workload, so
/// `lrc-soak --replay FILE` can restore the exact pre-stall state.
fn dump_wedge(
    dir: &Path,
    key: &str,
    m: &Machine,
    seed: u64,
    phases: usize,
    csecs: usize,
) -> Result<PathBuf, String> {
    let snap = m.snapshot().map_err(|e| format!("snapshot refused: {e}"))?;
    let snap_v =
        lrc_json::parse(&snap.to_json_string()).map_err(|e| format!("snapshot reparse: {e}"))?;
    let env = Value::Object(vec![
        ("kind".to_string(), Value::Str("lrc-soak-wedge".to_string())),
        (
            "script".to_string(),
            Value::Object(vec![
                ("seed".to_string(), Value::Str(seed.to_string())),
                ("phases".to_string(), Value::Num(phases as f64)),
                ("csecs".to_string(), Value::Num(csecs as f64)),
            ]),
        ),
        ("snapshot".to_string(), snap_v),
    ]);
    fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!("wedge-{key}.json"));
    let tmp = dir.join(format!(".wedge-{key}.json.tmp"));
    fs::write(&tmp, env.pretty()).map_err(|e| e.to_string())?;
    fs::rename(&tmp, &path).map_err(|e| e.to_string())?;
    Ok(path)
}

/// `--replay FILE`: restore a wedge dump and drive it forward. Exit 0 when
/// the stall reproduces (the dump captured a genuinely wedged state), 1
/// when the run completes instead.
fn replay(file: &str, quiet: bool) -> ! {
    let fail = |msg: String| -> ! {
        eprintln!("lrc-soak --replay: {msg}");
        std::process::exit(2)
    };
    let text = fs::read_to_string(file).unwrap_or_else(|e| fail(format!("read {file}: {e}")));
    let env = lrc_json::parse(&text).unwrap_or_else(|e| fail(format!("parse {file}: {e}")));
    if env["kind"].as_str() != Some("lrc-soak-wedge") {
        fail(format!("{file} is not an lrc-soak wedge dump"));
    }
    let seed: u64 = env["script"]["seed"]
        .as_str()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fail("wedge dump has no script seed".to_string()));
    let phases = env["script"]["phases"]
        .as_u64()
        .unwrap_or_else(|| fail("wedge dump has no phase count".to_string()))
        as usize;
    let csecs = env["script"]["csecs"]
        .as_u64()
        .unwrap_or_else(|| fail("wedge dump has no csec count".to_string()))
        as usize;
    let snap = MachineSnapshot::parse(&env["snapshot"].pretty())
        .unwrap_or_else(|e| fail(format!("embedded snapshot: {e}")));
    let cfg = snap
        .config()
        .unwrap_or_else(|| fail("embedded snapshot carries no machine config".to_string()));
    let script = soak_script(seed, cfg.num_procs, phases, csecs, &cfg);
    let mut m = snap
        .restore(Box::new(script))
        .unwrap_or_else(|e| fail(format!("restore: {e}")));
    if !quiet {
        eprintln!(
            "lrc-soak --replay: restored {file} at cycle {} ({} procs, seed {seed})",
            snap.cycle(),
            cfg.num_procs
        );
    }
    let started = std::time::Instant::now();
    match m.run_until(u64::MAX) {
        Err(diag) => {
            eprintln!("lrc-soak --replay: wedge reproduced: {diag}");
            std::process::exit(0)
        }
        Ok(_) => match m.finish_run(started) {
            Err((diag, _)) => {
                eprintln!("lrc-soak --replay: wedge reproduced: {diag}");
                std::process::exit(0)
            }
            Ok((r, _)) => {
                eprintln!(
                    "lrc-soak --replay: run completed without wedging ({} cycles)",
                    r.stats.total_cycles
                );
                std::process::exit(1)
            }
        },
    }
}

fn die(msg: &str) -> ! {
    eprintln!("lrc-soak: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut capacity = false;
    let mut races = false;
    let mut availability = false;
    let mut quiet = false;
    let mut procs: Option<usize> = None;
    let mut seeds: Option<u64> = None;
    let mut phases: Option<usize> = None;
    let mut rates: Option<Vec<f64>> = None;
    let mut watchdog = 10_000_000u64;
    let mut checkpoint_dir: Option<String> = None;
    let mut resume = false;
    let mut replay_file: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--capacity-sweep" => capacity = true,
            "--races" => races = true,
            "--availability" => availability = true,
            "--quiet" => quiet = true,
            "--procs" => {
                let v = value(&mut i, "--procs");
                procs = Some(v.parse().unwrap_or_else(|_| die(&format!("--procs: invalid count '{v}'"))));
            }
            "--seeds" => {
                let v = value(&mut i, "--seeds");
                seeds = Some(v.parse().unwrap_or_else(|_| die(&format!("--seeds: invalid count '{v}'"))));
            }
            "--phases" => {
                let v = value(&mut i, "--phases");
                phases = Some(v.parse().unwrap_or_else(|_| die(&format!("--phases: invalid count '{v}'"))));
            }
            "--rates" => {
                let v = value(&mut i, "--rates");
                rates = Some(
                    v.split(',')
                        .map(|r| {
                            r.parse()
                                .unwrap_or_else(|_| die(&format!("--rates: invalid rate '{r}'")))
                        })
                        .collect(),
                );
            }
            "--watchdog" => {
                let v = value(&mut i, "--watchdog");
                watchdog =
                    v.parse().unwrap_or_else(|_| die(&format!("--watchdog: invalid cycles '{v}'")));
            }
            "--checkpoint-dir" => {
                let v = value(&mut i, "--checkpoint-dir");
                if checkpoint_dir.as_ref().is_some_and(|d| *d != v) {
                    die("--checkpoint-dir conflicts with an earlier --resume/--checkpoint-dir");
                }
                checkpoint_dir = Some(v);
            }
            "--resume" => {
                let v = value(&mut i, "--resume");
                if checkpoint_dir.as_ref().is_some_and(|d| *d != v) {
                    die("--resume conflicts with an earlier --resume/--checkpoint-dir");
                }
                checkpoint_dir = Some(v);
                resume = true;
            }
            "--replay" => replay_file = Some(value(&mut i, "--replay")),
            other => die(&format!(
                "unknown argument '{other}' \
                 (usage: lrc-soak [--smoke] [--capacity-sweep] [--races] [--availability] \
                 [--procs N] [--seeds N] [--phases N] [--rates R1,R2,...] [--watchdog CYCLES] \
                 [--checkpoint-dir DIR] [--resume DIR] [--replay FILE] [--quiet])"
            )),
        }
        i += 1;
    }

    if let Some(file) = replay_file {
        replay(&file, quiet);
    }

    let procs = procs.unwrap_or(if smoke { 4 } else { 8 });
    let seeds = seeds.unwrap_or(if smoke { 1 } else { 3 });
    let phases = phases.unwrap_or(if smoke { 3 } else { 6 });
    let csecs = if smoke { 4 } else { 8 };
    // `--rates` is the grid's variable axis: link-fault rates by default,
    // crash rates (fraction of nodes killed) under `--availability`.
    let rates = rates.unwrap_or(match (availability, smoke) {
        (true, true) => vec![0.0, 0.25],
        (true, false) => vec![0.0, 0.125, 0.25],
        (false, true) => vec![0.0, 1e-3],
        (false, false) => vec![0.0, 1e-4, 1e-3],
    });
    let cfg = MachineConfig::paper_default(procs);

    let journal = checkpoint_dir.as_deref().map(Journal::open);
    if let Some(j) = &journal {
        // The crash-plan shape is part of the manifest: a `--resume` of an
        // availability sweep under a different plan (or of a fault sweep
        // as an availability sweep) is a fatal mismatch, never a silent
        // mix of cells that mean different things.
        let crash = if availability {
            Value::Object(vec![
                ("heartbeat_every".to_string(), Value::Str(AVAIL_HEARTBEAT.to_string())),
                ("lease_timeout".to_string(), Value::Str(AVAIL_LEASE.to_string())),
            ])
        } else {
            Value::Null
        };
        j.check_manifest(&Value::Object(vec![
            (
                "mode".to_string(),
                Value::Str(if availability { "availability" } else { "faults" }.to_string()),
            ),
            ("procs".to_string(), Value::Num(procs as f64)),
            ("seeds".to_string(), Value::Num(seeds as f64)),
            ("phases".to_string(), Value::Num(phases as f64)),
            ("csecs".to_string(), Value::Num(csecs as f64)),
            ("watchdog".to_string(), Value::Str(watchdog.to_string())),
            ("rates".to_string(), Value::Array(rates.iter().map(|&r| Value::Num(r)).collect())),
            ("crash".to_string(), crash),
        ]));
    }
    // Wedge snapshots land next to the journal when one exists, else
    // under results/wedges/ — never loose in the working directory.
    let dump_dir: PathBuf =
        journal.as_ref().map(|j| j.dir.clone()).unwrap_or_else(|| PathBuf::from("results/wedges"));

    if availability {
        if !quiet {
            eprintln!(
                "lrc-soak --availability{}: {} procs, {} seed(s), crash rates {:?}, {} protocols",
                if smoke { " --smoke" } else { "" },
                procs,
                seeds,
                rates,
                Protocol::ALL.len()
            );
        }
        let failures = availability_sweep(
            &cfg, &rates, seeds, phases, csecs, watchdog, quiet, &journal, resume, &dump_dir,
        );
        std::process::exit(if failures > 0 { 1 } else { 0 });
    }

    if races {
        if !quiet {
            eprintln!(
                "lrc-soak --races{}: {} procs, {} protocols, application suite + positive control",
                if smoke { " --smoke" } else { "" },
                procs,
                Protocol::ALL.len()
            );
        }
        let failures = races_sweep(&cfg, smoke, watchdog, quiet);
        std::process::exit(if failures > 0 { 1 } else { 0 });
    }

    if capacity {
        if !quiet {
            eprintln!(
                "lrc-soak --capacity-sweep{}: {} procs, {} seed(s), {} protocols",
                if smoke { " --smoke" } else { "" },
                procs,
                seeds,
                Protocol::ALL.len()
            );
        }
        let failures = capacity_sweep(&cfg, smoke, seeds, phases, csecs, watchdog, quiet);
        std::process::exit(if failures > 0 { 1 } else { 0 });
    }

    if !quiet {
        eprintln!(
            "lrc-soak{}: {} procs, {} seed(s), rates {:?}, {} protocols",
            if smoke { " --smoke" } else { "" },
            procs,
            seeds,
            rates,
            Protocol::ALL.len()
        );
    }

    let mut cells = 0usize;
    let mut failures = 0usize;
    let mut total_injected = 0u64;
    let mut total_retries = 0u64;
    // Emit one journaled record per cell: resumed cells replay their
    // recorded verdict (and exact output) without rerunning, fresh cells
    // run and then persist theirs — so a killed-midway sweep resumed with
    // `--resume DIR` produces output and exit status identical to an
    // uninterrupted sweep.
    let settle = |rec: CellRecord,
                      key: &str,
                      fresh: bool,
                      failures: &mut usize,
                      total_injected: &mut u64,
                      total_retries: &mut u64| {
        if rec.ok {
            *total_injected += rec.injected;
            *total_retries += rec.retries;
            if !quiet {
                eprint!("{}", rec.line);
            }
        } else {
            *failures += 1;
            eprint!("{}", rec.line);
        }
        if fresh {
            if let Some(j) = &journal {
                j.store(key, &rec);
            }
        }
    };
    for &rate in &rates {
        for &proto in &Protocol::ALL {
            for seed in 1..=seeds {
                cells += 1;
                let key = format!("rate{rate}-{}-seed{seed}", proto.name());
                if resume {
                    if let Some(rec) = journal.as_ref().and_then(|j| j.load(&key)) {
                        settle(rec, &key, false, &mut failures, &mut total_injected, &mut total_retries);
                        continue;
                    }
                }
                let rec = match run_cell(&cfg, proto, rate, seed, phases, csecs, watchdog) {
                    CellOutcome::Ok(stats) => {
                        if rate == 0.0 && !stats.faults.is_zero() {
                            CellRecord {
                                ok: false,
                                line: format!(
                                    "FAIL {proto:<8} rate={rate:<7} seed={seed}: \
                                     faults injected at rate 0: {:?}\n",
                                    stats.faults
                                ),
                                injected: 0,
                                retries: 0,
                            }
                        } else {
                            CellRecord {
                                ok: true,
                                line: format!(
                                    "  ok {proto:<8} rate={rate:<7} seed={seed}  \
                                     {:>10} cycles  {:>7} refs  {:>4} faults  {:>4} retries\n",
                                    stats.total_cycles,
                                    stats.total_refs(),
                                    stats.faults.injected(),
                                    stats.faults.retries,
                                ),
                                injected: stats.faults.injected(),
                                retries: stats.faults.retries,
                            }
                        }
                    }
                    CellOutcome::Failed(e) => CellRecord {
                        ok: false,
                        line: format!("FAIL {proto:<8} rate={rate:<7} seed={seed}: {e}\n"),
                        injected: 0,
                        retries: 0,
                    },
                    CellOutcome::Wedged(diag, wedged) => {
                        let mut line = format!(
                            "FAIL {proto:<8} rate={rate:<7} seed={seed}: wedged at a \
                             recoverable rate: {diag}\n"
                        );
                        // The stall artifact chain, right next to the
                        // flight-recorder tail the diagnosis carries:
                        // the dumped snapshot and the commands that
                        // restore it (replay) or finish the sweep
                        // around it (resume).
                        match dump_wedge(&dump_dir, &key, &wedged, seed, phases, csecs) {
                            Ok(p) => {
                                line.push_str(&format!(
                                    "      stall snapshot: {}\n      replay: lrc-soak --replay {}\n",
                                    p.display(),
                                    p.display()
                                ));
                                if journal.is_some() {
                                    line.push_str(&format!(
                                        "      resume sweep: lrc-soak --resume {}\n",
                                        dump_dir.display()
                                    ));
                                }
                            }
                            Err(e) => line.push_str(&format!(
                                "      (stall snapshot not written: {e})\n"
                            )),
                        }
                        CellRecord { ok: false, line, injected: 0, retries: 0 }
                    }
                };
                settle(rec, &key, true, &mut failures, &mut total_injected, &mut total_retries);
            }
        }
    }

    let ukey = "unrecoverable";
    let resumed = if resume { journal.as_ref().and_then(|j| j.load(ukey)) } else { None };
    let (urec, fresh) = match resumed {
        Some(rec) => (rec, false),
        None => (
            match unrecoverable_stage(&cfg, phases, csecs, &dump_dir) {
                Ok(line) => CellRecord { ok: true, line, injected: 0, retries: 0 },
                Err(e) => CellRecord {
                    ok: false,
                    line: format!("FAIL unrecoverable stage: {e}\n"),
                    injected: 0,
                    retries: 0,
                },
            },
            true,
        ),
    };
    settle(urec, ukey, fresh, &mut failures, &mut total_injected, &mut total_retries);

    if failures > 0 {
        eprintln!("lrc-soak: {failures}/{cells} cells FAILED");
        std::process::exit(1);
    }
    eprintln!(
        "lrc-soak: all {cells} cells verified ({total_injected} faults injected, \
         {total_retries} retries, every run value-correct and reproducible)"
    );
}

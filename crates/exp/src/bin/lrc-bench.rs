//! `lrc-bench` — the simulator's benchmark trajectory harness.
//!
//! Runs the fixed (protocol × workload) grid and records how fast the
//! simulation *kernel* executes it (simulated cycles per wall-clock second
//! spent inside the event loop, excluding workload construction), so kernel
//! changes can be compared against a committed baseline:
//!
//! ```text
//! lrc-bench run     [--scale small] [--procs 16] [--reps 3] [--out BENCH_sim.json]
//! lrc-bench compare [--scale small] [--procs 16] [--reps 3] [--out FILE]
//!                   [--baseline BENCH_sim.json] [--tolerance 0.10]
//! ```
//!
//! `run` measures the grid and writes `BENCH_sim.json` (schema below).
//! `compare` measures the grid the same way, then gates against a committed
//! baseline: it exits non-zero if geomean throughput regressed by more than
//! `--tolerance` (default 10%). The gate only engages when the baseline
//! exists *and* was recorded at the same scale/procs — a tiny-scale CI smoke
//! run against the small-scale committed baseline reports but does not gate.
//!
//! Schema (`"schema": "lrc-bench-v1"`): `commit`, `date`, `scale`, `procs`,
//! `reps`, `combos` (per-combination `total_cycles`, `median_wall_ms`,
//! `cycles_per_sec`), `geomean_cycles_per_sec`. Throughput per combination
//! is simulated cycles divided by the *median* wall time of `--reps`
//! repetitions (median, not mean, to shrug off scheduler noise).

#![forbid(unsafe_code)]

use lrc_exp::{execute, RunSpec};
use lrc_json::{json, Value};
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};

struct ComboResult {
    protocol: Protocol,
    workload: WorkloadKind,
    total_cycles: u64,
    median_wall_ms: f64,
    cycles_per_sec: f64,
}

fn measure_grid(scale: Scale, procs: usize, reps: usize, verbose: bool) -> Vec<ComboResult> {
    let mut out = Vec::new();
    for &protocol in &Protocol::ALL {
        for workload in WorkloadKind::ALL {
            let spec = RunSpec::new(protocol, workload, scale, procs);
            let mut walls: Vec<f64> = Vec::with_capacity(reps);
            let mut total_cycles = 0u64;
            for rep in 0..reps {
                // The machine times its own event loop: this excludes
                // workload construction, which is not the kernel under test.
                let r = execute(&spec);
                walls.push(r.sim_wall_secs);
                if rep == 0 {
                    total_cycles = r.stats.total_cycles;
                } else {
                    assert_eq!(
                        total_cycles, r.stats.total_cycles,
                        "nondeterministic run: {workload}/{protocol}"
                    );
                }
            }
            walls.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
            let median = walls[walls.len() / 2];
            let cps = total_cycles as f64 / median.max(1e-9);
            if verbose {
                eprintln!(
                    "  {workload:>10} / {protocol:<7} {total_cycles:>12} cycles  \
                     {:>8.1} ms  {:>6.1} Mcyc/s",
                    median * 1e3,
                    cps / 1e6
                );
            }
            out.push(ComboResult {
                protocol,
                workload,
                total_cycles,
                median_wall_ms: median * 1e3,
                cycles_per_sec: cps,
            });
        }
    }
    out
}

fn geomean(combos: &[ComboResult]) -> f64 {
    let log_sum: f64 = combos.iter().map(|c| c.cycles_per_sec.max(1.0).ln()).sum();
    (log_sum / combos.len().max(1) as f64).exp()
}

/// Best-effort `git rev-parse --short HEAD`; "unknown" outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Civil date (UTC) from the system clock, via days-from-epoch arithmetic
/// (Howard Hinnant's algorithm) — the workspace has no date dependency.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn report_json(scale: Scale, procs: usize, reps: usize, combos: &[ComboResult]) -> Value {
    let rows: Vec<Value> = combos
        .iter()
        .map(|c| {
            json!({
                "protocol": c.protocol.name(),
                "workload": c.workload.name(),
                "total_cycles": c.total_cycles,
                "median_wall_ms": c.median_wall_ms,
                "cycles_per_sec": c.cycles_per_sec,
            })
        })
        .collect();
    json!({
        "schema": "lrc-bench-v1",
        "commit": git_commit(),
        "date": today_utc(),
        "scale": scale.name(),
        "procs": procs,
        "reps": reps,
        "combos": rows,
        "geomean_cycles_per_sec": geomean(combos),
    })
}

/// Outcome of gating a fresh measurement against a baseline file.
enum Gate {
    /// Baseline missing/unreadable, or recorded under different settings.
    Skipped(String),
    /// Gate ran: (baseline geomean, current geomean, regression fraction).
    Ran(f64, f64, f64),
}

fn gate_against_baseline(path: &str, scale: Scale, procs: usize, current: f64) -> Gate {
    let contents = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => return Gate::Skipped(format!("no baseline at {path} ({e})")),
    };
    let base = match lrc_json::parse(&contents) {
        Ok(v) => v,
        Err(e) => return Gate::Skipped(format!("baseline {path} is not valid JSON ({e})")),
    };
    if base["schema"].as_str() != Some("lrc-bench-v1") {
        return Gate::Skipped(format!("baseline {path} has unknown schema"));
    }
    let (bscale, bprocs) = (base["scale"].as_str().unwrap_or(""), base["procs"].as_u64());
    if bscale != scale.name() || bprocs != Some(procs as u64) {
        return Gate::Skipped(format!(
            "baseline was recorded at scale={bscale} procs={} — current run is scale={} procs={procs}, gate not applicable",
            bprocs.map_or_else(|| "?".into(), |p| p.to_string()),
            scale.name()
        ));
    }
    let Some(bgeo) = base["geomean_cycles_per_sec"].as_f64() else {
        return Gate::Skipped(format!("baseline {path} lacks geomean_cycles_per_sec"));
    };
    Gate::Ran(bgeo, current, 1.0 - current / bgeo)
}

/// Print a CLI usage error and exit 2 (the usage-error convention).
fn die(msg: &str) -> ! {
    eprintln!("lrc-bench: {msg}");
    std::process::exit(2)
}

/// The value following a flag, or a usage error naming the flag.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => die(&format!("{flag} requires a value")),
    }
}

/// Parse a flag's value, or a usage error naming the flag and the input.
fn parse_flag<T: std::str::FromStr>(value: &str, flag: &str, expects: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: invalid value '{value}' (expected {expects})")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut scale = Scale::Small;
    let mut procs = 16usize;
    let mut reps = 3usize;
    let mut out: Option<String> = None;
    let mut baseline = "BENCH_sim.json".to_string();
    let mut tolerance = 0.10f64;
    let mut verbose = true;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "run" => mode = Some("run"),
            "compare" => mode = Some("compare"),
            "--scale" => {
                let v = flag_value(&args, &mut i, "--scale");
                scale = Scale::parse(v).unwrap_or_else(|| {
                    die(&format!("--scale: unknown scale '{v}' (expected paper|medium|small|tiny)"))
                });
            }
            "--procs" => {
                let v = flag_value(&args, &mut i, "--procs");
                procs = parse_flag(v, "--procs", "a processor count");
                if procs == 0 {
                    die("--procs must be positive");
                }
            }
            "--reps" => {
                let v = flag_value(&args, &mut i, "--reps");
                reps = parse_flag(v, "--reps", "a repetition count");
                if reps == 0 {
                    die("--reps must be positive");
                }
            }
            "--out" => out = Some(flag_value(&args, &mut i, "--out").to_string()),
            "--baseline" => baseline = flag_value(&args, &mut i, "--baseline").to_string(),
            "--tolerance" => {
                let v = flag_value(&args, &mut i, "--tolerance");
                tolerance = parse_flag(v, "--tolerance", "a fraction like 0.10");
                if !(0.0..1.0).contains(&tolerance) {
                    die("--tolerance must be in [0, 1)");
                }
            }
            "--quiet" => verbose = false,
            other => die(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let Some(mode) = mode else {
        eprintln!(
            "usage: lrc-bench <run|compare> [--scale paper|medium|small|tiny] [--procs N] \
             [--reps N] [--out FILE] [--baseline FILE] [--tolerance FRACTION] [--quiet]"
        );
        std::process::exit(2);
    };

    if verbose {
        eprintln!(
            "lrc-bench {mode}: {}×{} grid @ scale={} procs={procs} reps={reps}",
            Protocol::ALL.len(),
            WorkloadKind::ALL.len(),
            scale.name()
        );
    }
    let combos = measure_grid(scale, procs, reps, verbose);
    let geo = geomean(&combos);
    let report = report_json(scale, procs, reps, &combos);
    if verbose {
        eprintln!("  geomean {:.1} Mcyc/s over {} combinations", geo / 1e6, combos.len());
    }

    match mode {
        "run" => {
            let path = out.unwrap_or_else(|| "BENCH_sim.json".to_string());
            std::fs::write(&path, report.pretty())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        "compare" => {
            if let Some(path) = &out {
                std::fs::write(path, report.pretty())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                eprintln!("wrote {path}");
            } else {
                println!("{}", report.pretty());
            }
            match gate_against_baseline(&baseline, scale, procs, geo) {
                Gate::Skipped(why) => {
                    eprintln!("gate skipped: {why}");
                }
                Gate::Ran(base, cur, regression) => {
                    eprintln!(
                        "baseline geomean {:.1} Mcyc/s, current {:.1} Mcyc/s ({:+.1}%)",
                        base / 1e6,
                        cur / 1e6,
                        -regression * 100.0
                    );
                    if regression > tolerance {
                        eprintln!(
                            "FAIL: throughput regressed {:.1}% (> {:.0}% tolerance) vs {baseline}",
                            regression * 100.0,
                            tolerance * 100.0
                        );
                        std::process::exit(1);
                    }
                    eprintln!("gate passed (tolerance {:.0}%)", tolerance * 100.0);
                }
            }
        }
        _ => unreachable!(),
    }
}

//! `lrc-bench` — the simulator's benchmark trajectory harness.
//!
//! Runs the fixed (protocol × workload) grid and records how fast the
//! simulation *kernel* executes it (simulated cycles per wall-clock second
//! spent inside the event loop, excluding workload construction), so kernel
//! changes can be compared against a committed baseline:
//!
//! ```text
//! lrc-bench run     [--scale small] [--procs 16] [--reps 3] [--threads 1,2,4,8]
//!                   [--mesh256] [--out BENCH_sim.json]
//! lrc-bench compare [--scale small] [--procs 16] [--reps 3] [--out FILE]
//!                   [--baseline BENCH_sim.json] [--tolerance 0.10]
//! ```
//!
//! `run` measures the grid and writes `BENCH_sim.json` (schema below).
//! `compare` measures the grid the same way, then gates against a committed
//! baseline: it exits non-zero if geomean throughput regressed by more than
//! `--tolerance` (default 10%). The gate only engages when the baseline
//! exists *and* was recorded at the same scale/procs — a tiny-scale CI smoke
//! run against the small-scale committed baseline reports but does not gate.
//!
//! Schema (`"schema": "lrc-bench-v1"`): `commit`, `date`, `scale`, `procs`,
//! `reps`, `combos` (per-combination `total_cycles`, `median_wall_ms`,
//! `cycles_per_sec`), `geomean_cycles_per_sec`. Throughput per combination
//! is simulated cycles divided by the *median* wall time of `--reps`
//! repetitions (median, not mean, to shrug off scheduler noise).
//!
//! `--threads` takes a comma-separated sweep (e.g. `1,2,4,8`): the grid is
//! measured once per thread count on the sharded parallel engine, the
//! top-level numbers (and the compare gate) always come from the lowest
//! thread count, and a `thread_sweep` section records each count's geomean
//! plus its speedup over threads=1. Only the lowest count runs the full
//! `--reps` repetitions; the other sweep points run once each. Simulated `total_cycles` must be
//! bit-identical across every thread count — the harness asserts it.
//! `host_cpus` records the machine's available parallelism so a sweep run
//! on an oversubscribed host can be read honestly. `--mesh256` appends a
//! `mesh256` section: one mp3d/lazy run on a 256-node (16×16) mesh at
//! `large` scale with the sweep's highest thread count.

#![forbid(unsafe_code)]

use lrc_exp::{execute_sharded, RunSpec};
use lrc_json::{json, ToJson, Value};
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};

struct ComboResult {
    protocol: Protocol,
    workload: WorkloadKind,
    total_cycles: u64,
    median_wall_ms: f64,
    cycles_per_sec: f64,
}

fn measure_grid(
    scale: Scale,
    procs: usize,
    reps: usize,
    threads: usize,
    verbose: bool,
) -> Vec<ComboResult> {
    let mut out = Vec::new();
    for &protocol in &Protocol::ALL {
        for workload in WorkloadKind::ALL {
            let spec = RunSpec::new(protocol, workload, scale, procs);
            let mut walls: Vec<f64> = Vec::with_capacity(reps);
            let mut total_cycles = 0u64;
            for rep in 0..reps {
                // The machine times its own event loop: this excludes
                // workload construction, which is not the kernel under test.
                let r = execute_sharded(&spec, threads);
                walls.push(r.sim_wall_secs);
                if rep == 0 {
                    total_cycles = r.stats.total_cycles;
                } else {
                    assert_eq!(
                        total_cycles, r.stats.total_cycles,
                        "nondeterministic run: {workload}/{protocol} @ {threads} threads"
                    );
                }
            }
            walls.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
            let median = walls[walls.len() / 2];
            let cps = total_cycles as f64 / median.max(1e-9);
            if verbose {
                eprintln!(
                    "  {workload:>10} / {protocol:<7} {total_cycles:>12} cycles  \
                     {:>8.1} ms  {:>6.1} Mcyc/s",
                    median * 1e3,
                    cps / 1e6
                );
            }
            out.push(ComboResult {
                protocol,
                workload,
                total_cycles,
                median_wall_ms: median * 1e3,
                cycles_per_sec: cps,
            });
        }
    }
    out
}

/// The 256-node (16×16 mesh) scaling run: one mp3d/lazy simulation at
/// `large` scale on the sharded engine. One repetition — this records that
/// the engine takes a 256-node machine end to end and how fast, it is not
/// a gated benchmark.
fn measure_mesh256(threads: usize, verbose: bool) -> Value {
    let spec = RunSpec::new(Protocol::Lrc, WorkloadKind::Mp3d, Scale::Large, 256);
    if verbose {
        eprintln!("-- mesh256: mp3d/{} @ scale=large procs=256 threads={threads}", spec.protocol);
    }
    let r = execute_sharded(&spec, threads);
    let cps = r.stats.total_cycles as f64 / r.sim_wall_secs.max(1e-9);
    if verbose {
        eprintln!(
            "   {} cycles, {} events in {:.1} ms ({:.1} Mcyc/s)",
            r.stats.total_cycles,
            r.events,
            r.sim_wall_secs * 1e3,
            cps / 1e6
        );
    }
    json!({
        "workload": spec.workload.name(),
        "protocol": spec.protocol.name(),
        "scale": "large",
        "procs": 256,
        "threads": threads,
        "total_cycles": r.stats.total_cycles,
        "events": r.events,
        "wall_ms": r.sim_wall_secs * 1e3,
        "cycles_per_sec": cps,
    })
}

fn geomean(combos: &[ComboResult]) -> f64 {
    let log_sum: f64 = combos.iter().map(|c| c.cycles_per_sec.max(1.0).ln()).sum();
    (log_sum / combos.len().max(1) as f64).exp()
}

/// Best-effort `git rev-parse --short HEAD`; "unknown" outside a checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Civil date (UTC) from the system clock, via days-from-epoch arithmetic
/// (Howard Hinnant's algorithm) — the workspace has no date dependency.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// One measured thread count of the sweep: the grid's geomean at that
/// count, and its speedup over the threads=1 grid.
struct SweepPoint {
    threads: usize,
    geomean_cycles_per_sec: f64,
    speedup_vs_threads1: f64,
}

fn report_json(
    scale: Scale,
    procs: usize,
    reps: usize,
    combos: &[ComboResult],
    sweep: &[SweepPoint],
    mesh256: Option<Value>,
) -> Value {
    let rows: Vec<Value> = combos
        .iter()
        .map(|c| {
            json!({
                "protocol": c.protocol.name(),
                "workload": c.workload.name(),
                "total_cycles": c.total_cycles,
                "median_wall_ms": c.median_wall_ms,
                "cycles_per_sec": c.cycles_per_sec,
            })
        })
        .collect();
    let sweep_rows: Vec<Value> = sweep
        .iter()
        .map(|p| {
            json!({
                "threads": p.threads,
                "geomean_cycles_per_sec": p.geomean_cycles_per_sec,
                "speedup_vs_threads1": p.speedup_vs_threads1,
            })
        })
        .collect();
    let params = json!({ "scale": scale.name(), "procs": procs, "reps": reps });
    let machine = lrc_sim::MachineConfig::paper_default(procs).to_json();
    let mut report = json!({
        "schema": "lrc-bench-v1",
        "commit": git_commit(),
        "date": today_utc(),
        "scale": scale.name(),
        "procs": procs,
        "reps": reps,
        "host_cpus": host_cpus(),
        // Provenance of this measurement: enough to decide whether a
        // committed baseline is still comparable to HEAD (same machine
        // configuration, which host, when the harness passed).
        "provenance": json!({
            "git_commit": git_commit(),
            "config_hash": lrc_exp::config_hash("bench", &params, &machine),
            "host_cpus": host_cpus(),
            "harness_passed_unix": lrc_exp::resolve_timestamp(None),
        }),
        "combos": rows,
        "geomean_cycles_per_sec": geomean(combos),
    });
    if !sweep_rows.is_empty() {
        report.set("thread_sweep", sweep_rows);
    }
    if let Some(m) = mesh256 {
        report.set("mesh256", m);
    }
    report
}

/// The host's available parallelism — recorded so a sweep measured on an
/// oversubscribed machine (threads > cores) can be read honestly.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One-line provenance summary of a bench report (current or baseline).
/// Pre-provenance baselines render their fields as `unknown`.
fn provenance_line(report: &Value) -> String {
    let p = &report["provenance"];
    let s = |v: &Value| v.as_str().unwrap_or("unknown").to_string();
    let short = |h: String| h.chars().take(12).collect::<String>();
    format!(
        "provenance: commit {} · config {} · host_cpus {} · harness passed {}",
        s(&p["git_commit"]),
        short(s(&p["config_hash"])),
        p["host_cpus"].as_u64().map_or_else(|| "unknown".to_string(), |n| n.to_string()),
        match p["harness_passed_unix"].as_u64() {
            Some(ts) if ts > 0 => lrc_exp::report::iso_utc(ts),
            _ => "unknown".to_string(),
        }
    )
}

/// Outcome of gating a fresh measurement against a baseline file.
enum Gate {
    /// Baseline missing/unreadable, or recorded under different settings.
    Skipped(String),
    /// Gate ran: (baseline geomean, current geomean, regression fraction).
    Ran(f64, f64, f64),
}

fn gate_against_baseline(path: &str, scale: Scale, procs: usize, current: f64) -> Gate {
    let contents = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => return Gate::Skipped(format!("no baseline at {path} ({e})")),
    };
    let base = match lrc_json::parse(&contents) {
        Ok(v) => v,
        Err(e) => return Gate::Skipped(format!("baseline {path} is not valid JSON ({e})")),
    };
    if base["schema"].as_str() != Some("lrc-bench-v1") {
        return Gate::Skipped(format!("baseline {path} has unknown schema"));
    }
    let (bscale, bprocs) = (base["scale"].as_str().unwrap_or(""), base["procs"].as_u64());
    if bscale != scale.name() || bprocs != Some(procs as u64) {
        return Gate::Skipped(format!(
            "baseline was recorded at scale={bscale} procs={} — current run is scale={} procs={procs}, gate not applicable",
            bprocs.map_or_else(|| "?".into(), |p| p.to_string()),
            scale.name()
        ));
    }
    let Some(bgeo) = base["geomean_cycles_per_sec"].as_f64() else {
        return Gate::Skipped(format!("baseline {path} lacks geomean_cycles_per_sec"));
    };
    Gate::Ran(bgeo, current, 1.0 - current / bgeo)
}

/// Print a CLI usage error and exit 2 (the usage-error convention).
fn die(msg: &str) -> ! {
    eprintln!("lrc-bench: {msg}");
    std::process::exit(2)
}

/// The value following a flag, or a usage error naming the flag.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => die(&format!("{flag} requires a value")),
    }
}

/// Parse a flag's value, or a usage error naming the flag and the input.
fn parse_flag<T: std::str::FromStr>(value: &str, flag: &str, expects: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: invalid value '{value}' (expected {expects})")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut scale = Scale::Small;
    let mut procs = 16usize;
    let mut reps = 3usize;
    let mut out: Option<String> = None;
    let mut baseline = "BENCH_sim.json".to_string();
    let mut tolerance = 0.10f64;
    let mut verbose = true;
    let mut threads: Vec<usize> = vec![1];
    let mut mesh256 = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "run" => mode = Some("run"),
            "compare" => mode = Some("compare"),
            "--scale" => {
                let v = flag_value(&args, &mut i, "--scale");
                scale = Scale::parse(v).unwrap_or_else(|| {
                    die(&format!(
                        "--scale: unknown scale '{v}' (expected paper|large|medium|small|tiny)"
                    ))
                });
            }
            "--procs" => {
                let v = flag_value(&args, &mut i, "--procs");
                procs = parse_flag(v, "--procs", "a processor count");
                if procs == 0 {
                    die("--procs must be positive");
                }
            }
            "--reps" => {
                let v = flag_value(&args, &mut i, "--reps");
                reps = parse_flag(v, "--reps", "a repetition count");
                if reps == 0 {
                    die("--reps must be positive");
                }
            }
            "--out" => out = Some(flag_value(&args, &mut i, "--out").to_string()),
            "--baseline" => baseline = flag_value(&args, &mut i, "--baseline").to_string(),
            "--tolerance" => {
                let v = flag_value(&args, &mut i, "--tolerance");
                tolerance = parse_flag(v, "--tolerance", "a fraction like 0.10");
                if !(0.0..1.0).contains(&tolerance) {
                    die("--tolerance must be in [0, 1)");
                }
            }
            "--threads" => {
                let v = flag_value(&args, &mut i, "--threads");
                threads = v
                    .split(',')
                    .map(|t| parse_flag::<usize>(t, "--threads", "a comma-separated list like 1,2,4,8"))
                    .collect();
                if threads.is_empty() || threads.contains(&0) {
                    die("--threads entries must be positive");
                }
                threads.sort_unstable();
                threads.dedup();
            }
            "--mesh256" => mesh256 = true,
            "--quiet" => verbose = false,
            other => die(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let Some(mode) = mode else {
        eprintln!(
            "usage: lrc-bench <run|compare> [--scale paper|large|medium|small|tiny] [--procs N] \
             [--reps N] [--threads LIST] [--mesh256] [--out FILE] [--baseline FILE] \
             [--tolerance FRACTION] [--quiet]"
        );
        std::process::exit(2);
    };

    if verbose {
        eprintln!(
            "lrc-bench {mode}: {}×{} grid @ scale={} procs={procs} reps={reps} threads={threads:?}",
            Protocol::ALL.len(),
            WorkloadKind::ALL.len(),
            scale.name()
        );
    }
    // Measure the grid once per requested thread count. The lowest count
    // (normally 1) is the report's headline grid and the compare-gate
    // subject; higher counts only contribute sweep points.
    let mut grids: Vec<(usize, Vec<ComboResult>)> = Vec::new();
    for (k, &t) in threads.iter().enumerate() {
        if verbose && threads.len() > 1 {
            eprintln!("-- threads={t}");
        }
        // Full repetitions only for the headline grid: the sweep points are
        // informational (and cycle-checked), not gated, so one repetition
        // per extra thread count keeps a 4-point sweep affordable.
        let grid_reps = if k == 0 { reps } else { 1 };
        grids.push((t, measure_grid(scale, procs, grid_reps, t, verbose)));
    }
    let combos = &grids[0].1;
    // Simulated time is the simulation's *output*: it must not depend on
    // how many worker threads the host happened to use.
    for (t, grid) in &grids[1..] {
        for (a, b) in combos.iter().zip(grid) {
            assert_eq!(
                a.total_cycles, b.total_cycles,
                "{}/{} simulated cycles diverged between threads={} and threads={t}",
                b.workload, b.protocol, threads[0]
            );
        }
    }
    let base_geo = geomean(combos);
    let sweep: Vec<SweepPoint> = if grids.len() > 1 {
        grids
            .iter()
            .map(|(t, grid)| {
                let g = geomean(grid);
                SweepPoint {
                    threads: *t,
                    geomean_cycles_per_sec: g,
                    speedup_vs_threads1: g / base_geo.max(1.0),
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    if verbose {
        for p in &sweep {
            eprintln!(
                "  threads={:<2} geomean {:.1} Mcyc/s ({:.2}x vs threads={})",
                p.threads,
                p.geomean_cycles_per_sec / 1e6,
                p.speedup_vs_threads1,
                threads[0]
            );
        }
    }
    let mesh = if mesh256 { Some(measure_mesh256(threads.iter().copied().max().unwrap_or(1), verbose)) } else { None };
    let geo = base_geo;
    let report = report_json(scale, procs, reps, combos, &sweep, mesh);
    if verbose {
        eprintln!("  geomean {:.1} Mcyc/s over {} combinations", geo / 1e6, combos.len());
    }

    match mode {
        "run" => {
            let path = out.unwrap_or_else(|| "BENCH_sim.json".to_string());
            std::fs::write(&path, report.pretty())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        "compare" => {
            if let Some(path) = &out {
                std::fs::write(path, report.pretty())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                eprintln!("wrote {path}");
            } else {
                println!("{}", report.pretty());
            }
            eprintln!("current  {}", provenance_line(&report));
            if let Ok(contents) = std::fs::read_to_string(&baseline) {
                if let Ok(base) = lrc_json::parse(&contents) {
                    eprintln!("baseline {}", provenance_line(&base));
                }
            }
            match gate_against_baseline(&baseline, scale, procs, geo) {
                Gate::Skipped(why) => {
                    eprintln!("gate skipped: {why}");
                }
                Gate::Ran(base, cur, regression) => {
                    eprintln!(
                        "baseline geomean {:.1} Mcyc/s, current {:.1} Mcyc/s ({:+.1}%)",
                        base / 1e6,
                        cur / 1e6,
                        -regression * 100.0
                    );
                    if regression > tolerance {
                        eprintln!(
                            "FAIL: throughput regressed {:.1}% (> {:.0}% tolerance) vs {baseline}",
                            regression * 100.0,
                            tolerance * 100.0
                        );
                        std::process::exit(1);
                    }
                    eprintln!("gate passed (tolerance {:.0}%)", tolerance * 100.0);
                }
            }
        }
        _ => unreachable!(),
    }
}

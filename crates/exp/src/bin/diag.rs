//! `diag` — one-line-per-protocol diagnostic summary for a single
//! workload: cycle counts, overhead buckets, miss counters, protocol event
//! counters, traffic, and peak resource utilization.
//!
//! ```sh
//! cargo run --release -p lrc-exp --bin diag -- <app> [scale] [procs]
//! ```

use lrc_exp::{execute, RunSpec};
use lrc_sim::Protocol;
use lrc_workloads::{Scale, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = WorkloadKind::parse(&args[0]).unwrap();
    let scale = Scale::parse(args.get(1).map(|s| s.as_str()).unwrap_or("small")).unwrap();
    let procs: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(64);
    for proto in [Protocol::Sc, Protocol::Erc, Protocol::Lrc, Protocol::LrcExt] {
        let r = execute(&RunSpec::new(proto, kind, scale, procs));
        let s = &r.stats;
        let rm: u64 = s.procs.iter().map(|p| p.read_misses).sum();
        let wm: u64 = s.procs.iter().map(|p| p.write_misses).sum();
        let up: u64 = s.procs.iter().map(|p| p.upgrades).sum();
        let rd: u64 = s.procs.iter().map(|p| p.breakdown.read).sum();
        let sy: u64 = s.procs.iter().map(|p| p.breakdown.sync).sum();
        let wr: u64 = s.procs.iter().map(|p| p.breakdown.write).sum();
        let cp: u64 = s.procs.iter().map(|p| p.breakdown.cpu).sum();
        let th: u64 = s.procs.iter().map(|p| p.three_hop).sum();
        let ai: u64 = s.procs.iter().map(|p| p.acquire_invalidations).sum();
        let ei: u64 = s.procs.iter().map(|p| p.eager_invalidations).sum();
        let nt: u64 = s.procs.iter().map(|p| p.notices_received).sum();
        let tr = s.aggregate_traffic();
        let ppmax = s.procs.iter().map(|p| p.pp_busy).max().unwrap_or(0);
        let memmax = s.procs.iter().map(|p| p.mem_busy).max().unwrap_or(0);
        println!("{:<9} cyc={:<9} cpu={:<9} rd={:<10} wr={:<9} sy={:<10} rm={:<8} wm={:<7} up={:<8} 3hop={:<6} aInv={:<7} eInv={:<7} notices={:<7} rd/miss={:<5.0} msgs={} bytes={} ppmax%={:.0} memmax%={:.0}",
            proto.name(), s.total_cycles, cp, rd, wr, sy, rm, wm, up, th, ai, ei, nt,
            rd as f64 / rm.max(1) as f64, tr.total_msgs(), tr.bytes,
            100.0 * ppmax as f64 / s.total_cycles.max(1) as f64,
            100.0 * memmax as f64 / s.total_cycles.max(1) as f64);
    }
}

//! `lrc-exp` — the experiment harness: regenerates every table and figure
//! of the paper (see DESIGN.md §4 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod experiments;
pub mod paper_ref;
pub mod report;
pub mod runner;

pub use experiments::{run_by_id, Params, ALL_IDS};
pub use report::{Report, Table};
pub use runner::{execute, execute_sharded, RunSpec, Runner};

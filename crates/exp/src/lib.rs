//! `lrc-exp` — the experiment harness: regenerates every table and figure
//! of the paper (see DESIGN.md §4 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod experiments;
pub mod manifest;
pub mod paper_ref;
pub mod paths;
pub mod report;
pub mod runner;
pub mod sha;
pub mod stats;
pub mod store;

pub use experiments::{run_by_id, Params, ALL_IDS};
pub use manifest::{config_hash, resolve_timestamp, HostFacts, RunManifest};
pub use paths::{prepare_out_dir, FlagPathError};
pub use report::{
    metrics, paper_stats, regeneration_index_md, render_html, report_json, splice_index_md,
    ExpStats, Metric, Report, ReportMeta, Table, REPORT_SCHEMA,
};
pub use runner::{execute, execute_sharded, RunSpec, Runner};
pub use stats::{cohen_d, holm_adjust, paired_permutation_p, summarize, Effect, Summary};
pub use store::{CheckFailure, IndexEntry, Store, StoreError};

//! Ablation studies over the design choices DESIGN.md calls out, plus the
//! paper's fence-insertion suggestion.
//!
//! These go beyond the paper's published artifacts: they vary the machine
//! parameters the paper fixed (write-buffer depth, coalescing-buffer size
//! and drain window, protocol-processor costs) and exercise the two
//! programmatic remedies the paper discusses for racy/false-sharing code —
//! periodic fences (Section 4.2) and record padding (Section 5).

use crate::report::{ratio, Report, Table};
use crate::experiments::Params;
use lrc_core::{Machine, RunResult};
use lrc_sim::{MachineConfig, Protocol, Workload};
use lrc_workloads::{mp3d, Fenced, WorkloadKind};
use lrc_json::json;

fn run_custom(cfg: MachineConfig, proto: Protocol, w: Box<dyn Workload>) -> RunResult {
    Machine::new(cfg, proto)
        .with_max_cycles(200_000_000_000)
        .run(w)
}

/// The `ablate` experiment: one table per design knob.
pub fn ablate(p: Params) -> Report {
    let mut text = String::new();
    let mut sections = Vec::new();

    // 1. Write-buffer depth (eager RC): how much write latency can 1..16
    //    entries hide?
    {
        let mut t = Table::new(vec!["WB entries", "fft cycles", "vs 4-entry"]);
        let base = {
            let cfg = MachineConfig::paper_default(p.procs);
            run_custom(cfg, Protocol::Erc, WorkloadKind::Fft.build_seeded(p.procs, p.scale, p.seed))
                .stats
                .total_cycles
        };
        let mut rows = Vec::new();
        for depth in [1usize, 2, 4, 8, 16] {
            let mut cfg = MachineConfig::paper_default(p.procs);
            cfg.write_buffer_entries = depth;
            let c = run_custom(cfg, Protocol::Erc, WorkloadKind::Fft.build_seeded(p.procs, p.scale, p.seed))
                .stats
                .total_cycles;
            t.row(vec![depth.to_string(), c.to_string(), ratio(c as f64 / base as f64)]);
            rows.push(json!({ "depth": depth, "cycles": c }));
        }
        text.push_str("-- write-buffer depth (eager, fft) --\n");
        text.push_str(&t.render());
        text.push('\n');
        sections.push(json!({ "knob": "write_buffer_entries", "rows": rows }));
    }

    // 2. Coalescing-buffer size (lazy RC): the write-through traffic damper.
    {
        let mut t = Table::new(vec!["CB entries", "gauss cycles", "WT msgs"]);
        let mut rows = Vec::new();
        for entries in [4usize, 16, 64] {
            let mut cfg = MachineConfig::paper_default(p.procs);
            cfg.coalescing_buffer_entries = entries;
            let r = run_custom(cfg, Protocol::Lrc, WorkloadKind::Gauss.build_seeded(p.procs, p.scale, p.seed));
            t.row(vec![
                entries.to_string(),
                r.stats.total_cycles.to_string(),
                r.stats.aggregate_traffic().write_data_msgs.to_string(),
            ]);
            rows.push(json!({
                "entries": entries,
                "cycles": r.stats.total_cycles,
                "wt_msgs": r.stats.aggregate_traffic().write_data_msgs,
            }));
        }
        text.push_str("-- coalescing-buffer size (lazy, gauss) --\n");
        text.push_str(&t.render());
        text.push('\n');
        sections.push(json!({ "knob": "coalescing_buffer_entries", "rows": rows }));
    }

    // 3. Coalescing window (background drain delay).
    {
        let mut t = Table::new(vec!["drain delay", "mp3d cycles", "WT msgs"]);
        let mut rows = Vec::new();
        for delay in [25u64, 100, 400] {
            let mut cfg = MachineConfig::paper_default(p.procs);
            cfg.cb_flush_delay = delay;
            let r = run_custom(cfg, Protocol::Lrc, WorkloadKind::Mp3d.build_seeded(p.procs, p.scale, p.seed));
            t.row(vec![
                delay.to_string(),
                r.stats.total_cycles.to_string(),
                r.stats.aggregate_traffic().write_data_msgs.to_string(),
            ]);
            rows.push(json!({
                "delay": delay,
                "cycles": r.stats.total_cycles,
                "wt_msgs": r.stats.aggregate_traffic().write_data_msgs,
            }));
        }
        text.push_str("-- coalescing window (lazy, mp3d) --\n");
        text.push_str(&t.render());
        text.push('\n');
        sections.push(json!({ "knob": "cb_flush_delay", "rows": rows }));
    }

    // 4. Lazy directory-access cost: Table 1 charges the lazy directory 25
    //    cycles vs 15 eager; the paper claims it hides behind memory.
    {
        let mut t = Table::new(vec!["lazy dir cost", "mp3d cycles"]);
        let mut rows = Vec::new();
        for cost in [15u64, 25, 50, 100] {
            let mut cfg = MachineConfig::paper_default(p.procs);
            cfg.dir_cost_lazy = cost;
            let r = run_custom(cfg, Protocol::Lrc, WorkloadKind::Mp3d.build_seeded(p.procs, p.scale, p.seed));
            t.row(vec![cost.to_string(), r.stats.total_cycles.to_string()]);
            rows.push(json!({ "cost": cost, "cycles": r.stats.total_cycles }));
        }
        text.push_str("-- lazy directory access cost (mp3d) --\n");
        text.push_str(&t.render());
        text.push('\n');
        sections.push(json!({ "knob": "dir_cost_lazy", "rows": rows }));
    }

    // 5. Directory organization: full-map vs limited pointers with
    //    broadcast fallback (the organization trade the era's machines
    //    debated; Table 1's costs assume a full map at 64 nodes).
    {
        let mut t = Table::new(vec!["directory", "mp3d cycles", "control msgs"]);
        let mut rows = Vec::new();
        for (label, ptrs) in [("full-map", None), ("8 pointers", Some(8usize)), ("2 pointers", Some(2)), ("1 pointer", Some(1))] {
            let mut cfg = MachineConfig::paper_default(p.procs);
            cfg.dir_pointers = ptrs;
            let r = run_custom(cfg, Protocol::Lrc, WorkloadKind::Mp3d.build_seeded(p.procs, p.scale, p.seed));
            t.row(vec![
                label.to_string(),
                r.stats.total_cycles.to_string(),
                r.stats.aggregate_traffic().control_msgs.to_string(),
            ]);
            rows.push(json!({
                "directory": label,
                "cycles": r.stats.total_cycles,
                "control_msgs": r.stats.aggregate_traffic().control_msgs,
            }));
        }
        text.push_str("-- directory organization (lazy, mp3d) --\n");
        text.push_str(&t.render());
        text.push('\n');
        sections.push(json!({ "knob": "dir_pointers", "rows": rows }));
    }

    // 6. Record padding (the Section-5 compiler remedy): padded mp3d kills
    //    the particle-array false sharing; the lazy advantage should shrink.
    {
        let mut t = Table::new(vec!["layout", "eager cycles", "lazy cycles", "lazy/eager"]);
        let mut rows = Vec::new();
        for (label, padded) in [("packed (4/line)", false), ("padded (1/line)", true)] {
            let build = |_: ()| -> Box<dyn Workload> {
                if padded {
                    Box::new(mp3d::build_padded_seeded(p.procs, p.scale, p.seed))
                } else {
                    Box::new(mp3d::build_seeded(p.procs, p.scale, p.seed))
                }
            };
            let e = run_custom(MachineConfig::paper_default(p.procs), Protocol::Erc, build(()))
                .stats
                .total_cycles;
            let l = run_custom(MachineConfig::paper_default(p.procs), Protocol::Lrc, build(()))
                .stats
                .total_cycles;
            t.row(vec![
                label.to_string(),
                e.to_string(),
                l.to_string(),
                ratio(l as f64 / e as f64),
            ]);
            rows.push(json!({ "layout": label, "eager": e, "lazy": l }));
        }
        text.push_str("-- particle-record padding (mp3d) --\n");
        text.push_str(&t.render());
        sections.push(json!({ "knob": "padding", "rows": rows }));
    }

    Report {
        id: "ablate".into(),
        title: "Ablations over the machine's design knobs".into(),
        text,
        json: json!({ "sections": sections, "scale": p.scale.name(), "procs": p.procs }),
    }
}

/// The `fences` experiment: Section 4.2's remedy for data-race programs —
/// periodic fences force the lazy protocol to apply invalidations at
/// bounded intervals, trading performance for freshness.
pub fn fences(p: Params) -> Report {
    let apps = [WorkloadKind::Mp3d, WorkloadKind::Locusroute];
    let mut t = Table::new(vec![
        "app",
        "eager",
        "lazy (no fence)",
        "fence/1000",
        "fence/200",
        "fence/50",
    ]);
    let mut rows = Vec::new();
    for kind in apps {
        let cfg = || MachineConfig::paper_default(p.procs);
        let eager =
            run_custom(cfg(), Protocol::Erc, kind.build_seeded(p.procs, p.scale, p.seed)).stats.total_cycles;
        let lazy =
            run_custom(cfg(), Protocol::Lrc, kind.build_seeded(p.procs, p.scale, p.seed)).stats.total_cycles;
        let mut cells = vec![kind.name().to_string(), eager.to_string(), lazy.to_string()];
        let mut fr = vec![];
        for interval in [1000u64, 200, 50] {
            let w = Fenced::new(kind.build_seeded(p.procs, p.scale, p.seed), interval);
            let c = run_custom(cfg(), Protocol::Lrc, Box::new(w)).stats.total_cycles;
            cells.push(c.to_string());
            fr.push(json!({ "interval": interval, "cycles": c }));
        }
        t.row(cells);
        rows.push(json!({ "app": kind.name(), "eager": eager, "lazy": lazy, "fenced": fr }));
    }
    Report {
        id: "fences".into(),
        title: "Fence insertion for data-race programs (Section 4.2 remedy)".into(),
        text: t.render(),
        json: json!({ "rows": rows, "scale": p.scale.name(), "procs": p.procs }),
    }
}

//! Content-addressed artifact store under `results/store/`.
//!
//! Layout:
//!
//! ```text
//! <root>/objects/<sha256>.json   # blobs: artifacts and manifests, canonical JSON
//! <root>/index.json              # machine-readable index (schema lrc-exp-store-v1)
//! <root>/INDEX.md                # human-readable view, regenerated on every write
//! ```
//!
//! Blobs are written once and never rewritten: the name *is* the SHA-256
//! of the canonical JSON bytes, so re-running a deterministic experiment
//! reproduces the same hash, and any mutation is detectable by re-hashing
//! ([`Store::check`]). The index maps (experiment, scale, procs, seed) to
//! the artifact and manifest blobs that hold its latest result; it is the
//! only mutable file in the store and is rewritten deterministically
//! (sorted entries) so diffs stay reviewable.

use crate::manifest::{RunManifest, MANIFEST_SCHEMA};
use crate::sha::sha256_hex;
use lrc_json::{canonical_dump, json_struct, ToJson, Value};
use std::path::{Path, PathBuf};

/// Index schema tag.
pub const STORE_SCHEMA: &str = "lrc-exp-store-v1";

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble at `path`.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// A file that should be JSON did not parse.
    BadJson {
        /// The offending file.
        path: PathBuf,
        /// Parser diagnostic.
        message: String,
    },
    /// The index exists but has the wrong schema tag.
    BadSchema {
        /// What the index claimed.
        found: String,
    },
    /// A requested blob is not in the store.
    MissingBlob {
        /// The content hash asked for.
        hash: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store I/O error at {}: {message}", path.display())
            }
            StoreError::BadJson { path, message } => {
                write!(f, "store file {} is not valid JSON: {message}", path.display())
            }
            StoreError::BadSchema { found } => {
                write!(f, "store index has unknown schema '{found}' (expected {STORE_SCHEMA})")
            }
            StoreError::MissingBlob { hash } => write!(f, "blob {hash} is not in the store"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One row of the store index: the latest result for a
/// (experiment, scale, procs, seed) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Experiment id.
    pub experiment: String,
    /// Input scale name.
    pub scale: String,
    /// Processor count (0 = unknown, migrated).
    pub procs: u64,
    /// Workload seed.
    pub seed: u64,
    /// Configuration hash from the manifest ([`UNKNOWN`] for migrated).
    pub config_hash: String,
    /// Artifact blob hash.
    pub artifact: String,
    /// Manifest blob hash.
    pub manifest: String,
    /// Synthesized from a pre-store legacy result?
    pub migrated: bool,
    /// Manifest timestamp (unix seconds; 0 = unknown).
    pub timestamp: u64,
}

json_struct!(IndexEntry {
    experiment,
    scale,
    procs,
    seed,
    config_hash,
    artifact,
    manifest,
    migrated,
    timestamp,
});

impl IndexEntry {
    fn key(&self) -> (String, String, u64, u64) {
        (self.experiment.clone(), self.scale.clone(), self.procs, self.seed)
    }

    /// Short human label for diagnostics.
    pub fn label(&self) -> String {
        format!(
            "{} scale={} procs={} seed={}",
            self.experiment, self.scale, self.procs, self.seed
        )
    }
}

/// One staleness-check failure ([`Store::check`]).
#[derive(Debug)]
pub struct CheckFailure {
    /// Which index entry failed.
    pub entry: String,
    /// What is wrong with it.
    pub reason: String,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.entry, self.reason)
    }
}

/// The store handle.
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating directories as needed) the store at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        let objects = root.join("objects");
        std::fs::create_dir_all(&objects)
            .map_err(|e| StoreError::Io { path: objects.clone(), message: e.to_string() })?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the blob named `hash`.
    pub fn object_path(&self, hash: &str) -> PathBuf {
        self.root.join("objects").join(format!("{hash}.json"))
    }

    /// Store `value` as a content-addressed blob; returns its hash.
    /// Writing is idempotent (an existing blob with the same hash is left
    /// untouched) and atomic (tmp + rename), so a crashed writer never
    /// leaves a half-written object under a valid name.
    pub fn put(&self, value: &Value) -> Result<String, StoreError> {
        let bytes = canonical_dump(value);
        let hash = sha256_hex(bytes.as_bytes());
        let path = self.object_path(&hash);
        if !path.exists() {
            let tmp = self.root.join("objects").join(format!(".tmp-{hash}"));
            std::fs::write(&tmp, &bytes)
                .map_err(|e| StoreError::Io { path: tmp.clone(), message: e.to_string() })?;
            std::fs::rename(&tmp, &path)
                .map_err(|e| StoreError::Io { path: path.clone(), message: e.to_string() })?;
        }
        Ok(hash)
    }

    /// Load the blob named `hash`.
    pub fn get(&self, hash: &str) -> Result<Value, StoreError> {
        let path = self.object_path(hash);
        let contents = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingBlob { hash: hash.to_string() }
            } else {
                StoreError::Io { path: path.clone(), message: e.to_string() }
            }
        })?;
        lrc_json::parse(&contents)
            .map_err(|e| StoreError::BadJson { path, message: e.to_string() })
    }

    /// All index entries (empty store ⇒ empty vec).
    pub fn entries(&self) -> Result<Vec<IndexEntry>, StoreError> {
        let path = self.root.join("index.json");
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::Io { path, message: e.to_string() }),
        };
        let doc = lrc_json::parse(&contents)
            .map_err(|e| StoreError::BadJson { path: path.clone(), message: e.to_string() })?;
        if doc["schema"].as_str() != Some(STORE_SCHEMA) {
            return Err(StoreError::BadSchema {
                found: doc["schema"].as_str().unwrap_or("<none>").to_string(),
            });
        }
        let mut out = Vec::new();
        for (i, v) in doc["entries"].as_array().cloned().unwrap_or_default().iter().enumerate() {
            match IndexEntry::from_json_detailed(v) {
                Ok(e) => out.push(e),
                Err(e) => {
                    return Err(StoreError::BadJson {
                        path,
                        message: format!("index entry {i}: {e}"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Insert or replace the index row with `entry`'s
    /// (experiment, scale, procs, seed) key, then rewrite `index.json` and
    /// `INDEX.md` deterministically.
    pub fn record(&self, entry: IndexEntry) -> Result<(), StoreError> {
        let mut entries = self.entries()?;
        match entries.iter_mut().find(|e| e.key() == entry.key()) {
            Some(slot) => *slot = entry,
            None => entries.push(entry),
        }
        self.write_index(entries)
    }

    fn write_index(&self, mut entries: Vec<IndexEntry>) -> Result<(), StoreError> {
        entries.sort_by_key(|e| e.key());
        let doc = lrc_json::json!({
            "schema": STORE_SCHEMA,
            "entries": entries.iter().map(ToJson::to_json).collect::<Vec<_>>(),
        });
        let path = self.root.join("index.json");
        std::fs::write(&path, doc.pretty())
            .map_err(|e| StoreError::Io { path: path.clone(), message: e.to_string() })?;
        let md = self.render_index_md(&entries);
        let md_path = self.root.join("INDEX.md");
        std::fs::write(&md_path, md)
            .map_err(|e| StoreError::Io { path: md_path, message: e.to_string() })?;
        Ok(())
    }

    fn render_index_md(&self, entries: &[IndexEntry]) -> String {
        let mut out = String::from(
            "# Artifact store index\n\n\
             Content-addressed experiment results: every row's artifact and manifest\n\
             are blobs under `objects/`, named by the SHA-256 of their canonical JSON.\n\
             Regenerated by `lrc-exp`; do not edit by hand. Verify with\n\
             `lrc-exp report --store <this dir> --check`.\n\n\
             | experiment | scale | procs | seed | artifact | manifest | provenance |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for e in entries {
            let prov = if e.migrated {
                "migrated (unknown)".to_string()
            } else {
                format!("config {}", &e.config_hash[..12.min(e.config_hash.len())])
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | [{}](objects/{}.json) | [{}](objects/{}.json) | {} |\n",
                e.experiment,
                e.scale,
                e.procs,
                e.seed,
                &e.artifact[..12.min(e.artifact.len())],
                e.artifact,
                &e.manifest[..12.min(e.manifest.len())],
                e.manifest,
                prov,
            ));
        }
        out
    }

    /// Load and decode the manifest blob for `entry`.
    pub fn manifest(&self, entry: &IndexEntry) -> Result<RunManifest, StoreError> {
        let v = self.get(&entry.manifest)?;
        RunManifest::from_json_detailed(&v).map_err(|e| StoreError::BadJson {
            path: self.object_path(&entry.manifest),
            message: e.to_string(),
        })
    }

    /// The staleness/integrity walk behind `lrc-exp report --check`.
    ///
    /// For every index entry: both blobs must exist and re-hash to their
    /// names; the manifest must decode, carry a known schema, and agree
    /// with the index row; the experiment must still exist in
    /// `known_experiments`. For non-migrated entries the configuration
    /// hash must additionally (a) recompute identically from the
    /// manifest's own embedded params/config — catching a mutated
    /// manifest — and (b) match `current_hash` (the hash the *current*
    /// tool derives for those params), catching artifacts stranded by a
    /// config change. Migrated entries get integrity checks only.
    pub fn check(
        &self,
        known_experiments: &[&str],
        current_hash: &dyn Fn(&RunManifest) -> Option<String>,
    ) -> Result<Vec<CheckFailure>, StoreError> {
        let mut failures = Vec::new();
        let entries = self.entries()?;
        for e in &entries {
            if self.verify_blob(&e.artifact, "artifact", e, &mut failures).is_none() {
                continue;
            }
            let Some(mv) = self.verify_blob(&e.manifest, "manifest", e, &mut failures) else {
                continue;
            };
            let mut fail = |reason: String| {
                failures.push(CheckFailure { entry: e.label(), reason });
            };
            let m = match RunManifest::from_json_detailed(&mv) {
                Ok(m) => m,
                Err(err) => {
                    fail(format!("manifest does not decode: {err}"));
                    continue;
                }
            };
            if m.schema != MANIFEST_SCHEMA {
                fail(format!("manifest schema '{}' unknown", m.schema));
                continue;
            }
            if m.artifact != e.artifact {
                fail("manifest names a different artifact than the index".to_string());
            }
            if m.experiment != e.experiment {
                fail("manifest names a different experiment than the index".to_string());
            }
            if !known_experiments.contains(&e.experiment.as_str()) {
                fail(format!(
                    "experiment '{}' is no longer in the current experiment list",
                    e.experiment
                ));
            }
            if m.migrated {
                continue; // provenance unknown by construction
            }
            let recomputed = crate::manifest::config_hash(&m.experiment, &m.params, &m.config);
            if recomputed != m.config_hash {
                fail(format!(
                    "manifest config_hash {} does not recompute from its own \
                     params/config ({recomputed}) — manifest mutated",
                    m.config_hash
                ));
            }
            if e.config_hash != m.config_hash {
                fail("index config_hash disagrees with the manifest".to_string());
            }
            match current_hash(&m) {
                Some(cur) if cur != m.config_hash => {
                    fail(format!(
                        "stale: current tool derives config hash {cur} for these \
                         params, artifact was produced under {}",
                        m.config_hash
                    ));
                }
                Some(_) => {}
                None => fail(format!(
                    "current tool cannot derive a configuration for params {}",
                    m.params.dump()
                )),
            }
        }
        Ok(failures)
    }

    /// Blob-integrity leg of [`Store::check`]: the blob must load and its
    /// content must re-hash to its name.
    fn verify_blob(
        &self,
        hash: &str,
        what: &str,
        entry: &IndexEntry,
        failures: &mut Vec<CheckFailure>,
    ) -> Option<Value> {
        match self.get(hash) {
            Err(err) => {
                failures.push(CheckFailure {
                    entry: entry.label(),
                    reason: format!("{what} blob unreadable: {err}"),
                });
                None
            }
            Ok(v) => {
                let actual = sha256_hex(canonical_dump(&v).as_bytes());
                if actual != hash {
                    failures.push(CheckFailure {
                        entry: entry.label(),
                        reason: format!(
                            "{what} blob content does not match its name \
                             (named {hash}, hashes to {actual})"
                        ),
                    });
                    None
                } else {
                    Some(v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{config_hash, UNKNOWN};
    use lrc_json::json;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lrc-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn put_run(store: &Store, experiment: &str, seed: u64, payload: Value) -> IndexEntry {
        let artifact = store.put(&payload).expect("put artifact");
        let params = json!({ "scale": "tiny", "procs": 8, "seed": seed });
        let config = json!({ "line_size": 128 });
        let m = RunManifest::new(experiment, params, config, &artifact, 1_700_000_000);
        let manifest = store.put(&m.to_json()).expect("put manifest");
        let entry = IndexEntry {
            experiment: experiment.to_string(),
            scale: "tiny".to_string(),
            procs: 8,
            seed,
            config_hash: m.config_hash.clone(),
            artifact,
            manifest,
            migrated: false,
            timestamp: m.timestamp,
        };
        store.record(entry.clone()).expect("record");
        entry
    }

    #[test]
    fn put_is_content_addressed_and_idempotent() {
        let dir = tmpdir("put");
        let store = Store::open(&dir).unwrap();
        let a = json!({ "x": 1, "y": [1, 2] });
        let b = json!({ "y": [1, 2], "x": 1 }); // same value, different order
        let ha = store.put(&a).unwrap();
        let hb = store.put(&b).unwrap();
        assert_eq!(ha, hb, "canonicalization erases insertion order");
        assert_eq!(store.get(&ha).unwrap(), lrc_json::canonicalize(&a));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_upserts_and_sorts() {
        let dir = tmpdir("record");
        let store = Store::open(&dir).unwrap();
        put_run(&store, "fig4", 1, json!({ "v": 1 }));
        put_run(&store, "fig4", 0, json!({ "v": 2 }));
        let replaced = put_run(&store, "fig4", 1, json!({ "v": 3 }));
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 2, "same key replaces, not appends");
        assert_eq!(entries[0].seed, 0, "index is sorted");
        assert_eq!(entries[1].artifact, replaced.artifact);
        assert!(dir.join("INDEX.md").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_passes_clean_and_catches_mutation() {
        let dir = tmpdir("check");
        let store = Store::open(&dir).unwrap();
        let e = put_run(&store, "fig4", 0, json!({ "rows": [1, 2, 3] }));
        let current = |m: &RunManifest| Some(config_hash(&m.experiment, &m.params, &m.config));
        let clean = store.check(&["fig4"], &current).unwrap();
        assert!(clean.is_empty(), "clean store must pass: {clean:?}");

        // Mutate the artifact blob in place: --check must notice.
        let path = store.object_path(&e.artifact);
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents = contents.replace('1', "9");
        std::fs::write(&path, contents).unwrap();
        let failures = store.check(&["fig4"], &current).unwrap();
        assert!(
            failures.iter().any(|f| f.reason.contains("does not match its name")),
            "mutated blob must fail: {failures:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_flags_stale_config_and_dead_experiments() {
        let dir = tmpdir("stale");
        let store = Store::open(&dir).unwrap();
        put_run(&store, "fig4", 0, json!({ "v": 1 }));
        // Current tool now derives a *different* config for the same params.
        let drifted = |m: &RunManifest| {
            Some(config_hash(&m.experiment, &m.params, &json!({ "line_size": 256 })))
        };
        let failures = store.check(&["fig4"], &drifted).unwrap();
        assert!(failures.iter().any(|f| f.reason.contains("stale")), "{failures:?}");
        // Experiment dropped from the list.
        let current = |m: &RunManifest| Some(config_hash(&m.experiment, &m.params, &m.config));
        let failures = store.check(&["fig5"], &current).unwrap();
        assert!(
            failures.iter().any(|f| f.reason.contains("no longer in the current experiment list")),
            "{failures:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrated_entries_skip_freshness_checks() {
        let dir = tmpdir("migrated");
        let store = Store::open(&dir).unwrap();
        let artifact = store.put(&json!({ "legacy": true })).unwrap();
        let m = RunManifest::migrated("fig4", json!({ "scale": "paper" }), &artifact);
        let manifest = store.put(&m.to_json()).unwrap();
        store
            .record(IndexEntry {
                experiment: "fig4".into(),
                scale: "paper".into(),
                procs: 0,
                seed: 0,
                config_hash: UNKNOWN.into(),
                artifact,
                manifest,
                migrated: true,
                timestamp: 0,
            })
            .unwrap();
        // A current_hash that would fail any fresh manifest: migrated rows
        // must not consult it.
        let never = |_: &RunManifest| -> Option<String> { None };
        let failures = store.check(&["fig4"], &never).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Cross-seed statistics: deterministic bootstrap summaries, effect sizes
//! against a named baseline, and multiple-comparison correction.
//!
//! The source paper argues from execution-time tables; with several seeds
//! per cell we can say which differences survive noise. Everything here is
//! deterministic (seeded SplitMix64, fixed resample counts) so the paper
//! report is byte-reproducible, and everything is in-repo — no external
//! statistics dependency.
//!
//! Choices, and why:
//!
//! * **Percentile bootstrap** for the mean's 95% CI: makes no normality
//!   assumption, behaves sanely at the n = 2–10 seed counts we actually
//!   run, and degenerates honestly (n = 1 ⇒ zero-width interval at the
//!   point estimate).
//! * **Cohen's d** (pooled-SD standardized difference) as the effect size
//!   vs the named baseline, alongside the relative difference — one
//!   scale-free, one in the units reviewers quote.
//! * **Sign-flip permutation test** on paired per-seed differences for
//!   p-values: exact enumeration up to 2^n ≤ 4096 flips, seeded sampling
//!   beyond; again assumption-free at tiny n.
//! * **Holm–Bonferroni** step-down across a family of protocol-pair
//!   comparisons: uniformly more powerful than plain Bonferroni at the
//!   same family-wise error rate, and needs no independence assumption.

/// Deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw u64.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (n > 0).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Per-cell summary across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations (seeds).
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample median.
    pub median: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub sd: f64,
    /// Bootstrap 95% CI lower bound on the mean.
    pub ci_lo: f64,
    /// Bootstrap 95% CI upper bound on the mean.
    pub ci_hi: f64,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

fn sample_sd(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Number of bootstrap resamples (fixed so output is stable).
pub const BOOTSTRAP_RESAMPLES: usize = 2000;

/// Summarize one cell's per-seed observations. Deterministic for a given
/// `(xs, seed)`.
pub fn summarize(xs: &[f64], seed: u64) -> Summary {
    let n = xs.len();
    let m = mean(xs);
    if n < 2 {
        return Summary { n, mean: m, median: m, sd: 0.0, ci_lo: m, ci_hi: m };
    }
    let mut rng = SplitMix64(seed ^ 0x5EED_B007_57A9_0000);
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += xs[rng.index(n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let lo_idx = ((BOOTSTRAP_RESAMPLES as f64) * 0.025) as usize;
    let hi_idx = (((BOOTSTRAP_RESAMPLES as f64) * 0.975) as usize).min(BOOTSTRAP_RESAMPLES - 1);
    Summary {
        n,
        mean: m,
        median: median(xs),
        sd: sample_sd(xs),
        ci_lo: means[lo_idx],
        ci_hi: means[hi_idx],
    }
}

/// Cohen's d between `a` and `b` (positive = `a` larger), pooled SD. With
/// zero pooled variance: 0 when the means agree, ±∞-avoiding ±1e9
/// sentinel otherwise (two degenerate but different constants).
pub fn cohen_d(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (a.len(), b.len());
    if na < 1 || nb < 1 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (sa, sb) = (sample_sd(a), sample_sd(b));
    let dof = (na + nb).saturating_sub(2);
    let pooled = if dof == 0 {
        0.0
    } else {
        (((na.saturating_sub(1)) as f64 * sa * sa + (nb.saturating_sub(1)) as f64 * sb * sb)
            / dof as f64)
            .sqrt()
    };
    if pooled == 0.0 {
        if ma == mb {
            0.0
        } else {
            1e9f64.copysign(ma - mb)
        }
    } else {
        (ma - mb) / pooled
    }
}

/// Exhaustive-enumeration cutoff: with n paired differences there are 2^n
/// sign assignments; enumerate all of them up to this many pairs.
const EXACT_FLIP_LIMIT: usize = 12;

/// Sampled permutations when beyond the exact limit.
const SAMPLED_FLIPS: usize = 4096;

/// Two-sided sign-flip permutation p-value for paired observations
/// (`a[i]` vs `b[i]`, same seed i). Deterministic. Returns 1.0 when there
/// is nothing to test (n = 0, or all differences zero).
pub fn paired_permutation_p(a: &[f64], b: &[f64], seed: u64) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 1.0;
    }
    let diffs: Vec<f64> = (0..n).map(|i| a[i] - b[i]).collect();
    if diffs.iter().all(|d| *d == 0.0) {
        return 1.0;
    }
    let observed = diffs.iter().sum::<f64>().abs();
    let tol = observed * 1e-12; // float-noise guard for the >= comparison
    if n <= EXACT_FLIP_LIMIT {
        let total = 1u64 << n;
        let mut extreme = 0u64;
        for mask in 0..total {
            let mut s = 0.0;
            for (i, d) in diffs.iter().enumerate() {
                s += if mask >> i & 1 == 1 { -*d } else { *d };
            }
            if s.abs() >= observed - tol {
                extreme += 1;
            }
        }
        extreme as f64 / total as f64
    } else {
        let mut rng = SplitMix64(seed ^ 0x9E9E_F11F_0000_0001);
        let mut extreme = 1u64; // add-one: the identity assignment
        for _ in 0..SAMPLED_FLIPS {
            let mask = rng.next_u64();
            let mut s = 0.0;
            for (i, d) in diffs.iter().enumerate() {
                s += if mask >> (i % 64) & 1 == 1 { -*d } else { *d };
            }
            if s.abs() >= observed - tol {
                extreme += 1;
            }
        }
        extreme as f64 / (SAMPLED_FLIPS + 1) as f64
    }
}

/// Holm–Bonferroni step-down adjustment. Input: raw p-values; output:
/// adjusted p-values in the same positions, clamped to [0, 1], with the
/// step-down monotonicity constraint enforced.
pub fn holm_adjust(ps: &[f64]) -> Vec<f64> {
    let m = ps.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| ps[i].partial_cmp(&ps[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut adjusted = vec![0.0f64; m];
    let mut running_max = 0.0f64;
    for (rank, &idx) in order.iter().enumerate() {
        let scaled = (ps[idx] * (m - rank) as f64).min(1.0);
        running_max = running_max.max(scaled);
        adjusted[idx] = running_max;
    }
    adjusted
}

/// One comparison of a cell against the baseline protocol's cell.
#[derive(Debug, Clone)]
pub struct Effect {
    /// Mean difference (subject − baseline).
    pub delta: f64,
    /// Relative difference vs the baseline mean (NaN-free: 0 when the
    /// baseline mean is 0).
    pub rel: f64,
    /// Cohen's d.
    pub d: f64,
    /// Raw permutation p-value.
    pub p: f64,
    /// Holm-adjusted p-value (filled by the caller after collecting the
    /// family; initialized to `p`).
    pub p_adjusted: f64,
}

/// Compute one effect (subject vs baseline, paired by seed).
pub fn effect(subject: &[f64], baseline: &[f64], seed: u64) -> Effect {
    let delta = mean(subject) - mean(baseline);
    let bm = mean(baseline);
    let rel = if bm == 0.0 { 0.0 } else { delta / bm };
    let p = paired_permutation_p(subject, baseline, seed);
    Effect { delta, rel, d: cohen_d(subject, baseline), p, p_adjusted: p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_degenerates_honestly() {
        let s = summarize(&[], 1);
        assert_eq!((s.n, s.mean, s.ci_lo, s.ci_hi), (0, 0.0, 0.0, 0.0));
        let s = summarize(&[7.0], 1);
        assert_eq!((s.n, s.mean, s.median, s.ci_lo, s.ci_hi), (1, 7.0, 7.0, 7.0, 7.0));
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn summary_is_deterministic_and_brackets_the_mean() {
        let xs = [10.0, 12.0, 11.0, 13.0, 9.5];
        let a = summarize(&xs, 42);
        let b = summarize(&xs, 42);
        assert_eq!(a, b);
        assert!(a.ci_lo <= a.mean && a.mean <= a.ci_hi);
        assert!(a.ci_lo < a.ci_hi, "n=5 spread data must have a nonzero-width CI");
        let c = summarize(&xs, 43);
        assert!(c.ci_lo <= c.mean && c.mean <= c.ci_hi, "any seed brackets the mean");
    }

    #[test]
    fn cohen_d_signs_and_degenerates() {
        let d = cohen_d(&[2.0, 2.1, 1.9], &[1.0, 1.1, 0.9]);
        assert!(d > 2.0, "well-separated samples have a large d: {d}");
        assert!(cohen_d(&[1.0, 1.0], &[1.0, 1.0]).abs() < 1e-12);
        assert!(cohen_d(&[2.0, 2.0], &[1.0, 1.0]) > 1e8, "degenerate separated → sentinel");
        assert!(cohen_d(&[1.0, 1.0], &[2.0, 2.0]) < -1e8);
    }

    #[test]
    fn permutation_p_exact_small_n() {
        // n=3, all differences the same sign: the only assignments at least
        // as extreme as observed are all-keep and all-flip → p = 2/8.
        let p = paired_permutation_p(&[2.0, 2.0, 2.0], &[1.0, 1.0, 1.0], 0);
        assert!((p - 0.25).abs() < 1e-12, "{p}");
        // Identical pairs: nothing to test.
        assert_eq!(paired_permutation_p(&[1.0, 1.0], &[1.0, 1.0], 0), 1.0);
        assert_eq!(paired_permutation_p(&[], &[], 0), 1.0);
    }

    #[test]
    fn permutation_p_sampled_large_n_is_deterministic() {
        let a: Vec<f64> = (0..20).map(|i| 10.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| 9.0 + (i % 5) as f64 * 0.1).collect();
        let p1 = paired_permutation_p(&a, &b, 7);
        let p2 = paired_permutation_p(&a, &b, 7);
        assert_eq!(p1, p2);
        assert!(p1 > 0.0 && p1 < 0.05, "clearly separated: {p1}");
    }

    #[test]
    fn holm_adjusts_stepwise() {
        // Classic example: m=3, sorted p .01, .02, .03 → adjusted .03, .04, .03→max .04? No:
        // .01*3=.03, .02*2=.04, .03*1=.03 → monotone max: .03, .04, .04.
        let adj = holm_adjust(&[0.02, 0.01, 0.03]);
        assert!((adj[1] - 0.03).abs() < 1e-12);
        assert!((adj[0] - 0.04).abs() < 1e-12);
        assert!((adj[2] - 0.04).abs() < 1e-12);
        // Clamped at 1, never smaller than raw.
        let adj = holm_adjust(&[0.9, 0.8]);
        assert!(adj.iter().all(|&p| p <= 1.0));
        assert!(adj[0] >= 0.9 && adj[1] >= 0.8);
        assert!(holm_adjust(&[]).is_empty());
    }

    #[test]
    fn effect_combines_the_pieces() {
        let e = effect(&[0.8, 0.82, 0.78], &[1.0, 1.0, 1.0], 3);
        assert!(e.delta < 0.0);
        assert!((e.rel - e.delta / 1.0).abs() < 1e-12);
        assert!(e.p <= 0.25 + 1e-12, "consistent sign at n=3: {}", e.p);
        assert_eq!(e.p, e.p_adjusted, "adjustment is the caller's job");
    }
}

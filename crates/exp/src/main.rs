//! Experiment CLI: `lrc-exp <experiment|all> [--scale paper|medium|small|tiny]
//! [--procs N] [--threads N] [--json DIR] [--trace-dir DIR] [--quiet]`.
//!
//! `--trace-dir DIR` splits the `observe` experiment's artifacts into
//! standalone files: `observe.perfetto.json` (load in Perfetto / Chrome
//! `about:tracing`), `observe.jsonl`, `observe.timeseries.csv`, and
//! `observe.latency.json`.

#![forbid(unsafe_code)]

use lrc_exp::{experiments, Params, Runner};
use lrc_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut params = Params::default();
    let mut threads = 0usize;
    let mut json_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut verbose = true;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                params.scale = Scale::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("unknown scale '{}'", args[i]);
                    std::process::exit(2);
                });
            }
            "--procs" => {
                i += 1;
                params.procs = args[i].parse().expect("--procs N");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads N");
            }
            "--json" => {
                i += 1;
                json_dir = Some(args[i].clone());
            }
            "--trace-dir" => {
                i += 1;
                trace_dir = Some(args[i].clone());
            }
            "--quiet" => verbose = false,
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.is_empty() {
        eprintln!("usage: lrc-exp <experiment ...|all> [--scale paper|medium|small|tiny] [--procs N] [--threads N] [--json DIR] [--trace-dir DIR] [--quiet]");
        eprintln!("experiments: {}", experiments::ALL_IDS.join(" "));
        std::process::exit(2);
    }

    let runner = Runner::new(threads, verbose);
    for id in &ids {
        let Some(report) = experiments::run_by_id(id, &runner, params) else {
            eprintln!("unknown experiment '{id}' (have: {})", experiments::ALL_IDS.join(" "));
            std::process::exit(2);
        };
        report.print();
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{id}.json");
            std::fs::write(&path, report.to_json().pretty())
                .expect("write json");
            eprintln!("wrote {path}");
        }
        if id == "observe" {
            if let Some(dir) = &trace_dir {
                std::fs::create_dir_all(dir).expect("create trace dir");
                let j = &report.json;
                let files = [
                    ("observe.perfetto.json", j["perfetto"].dump()),
                    ("observe.jsonl", j["jsonl"].as_str().unwrap_or_default().to_string()),
                    (
                        "observe.timeseries.csv",
                        j["timeseries_csv"].as_str().unwrap_or_default().to_string(),
                    ),
                    ("observe.latency.json", j["latency"].dump()),
                ];
                for (name, contents) in files {
                    let path = format!("{dir}/{name}");
                    std::fs::write(&path, contents).expect("write trace artifact");
                    eprintln!("wrote {path}");
                }
            }
        }
    }
}

//! Experiment CLI.
//!
//! Run experiments (optionally across seeds, into the artifact store):
//!
//! ```text
//! lrc-exp <experiment ...|all> [--scale paper|medium|small|tiny] [--procs N]
//!         [--threads N] [--seeds N] [--store DIR] [--timestamp T]
//!         [--json DIR] [--trace-dir DIR] [--quiet]
//! ```
//!
//! Build the paper report from a store, check staleness, or regenerate the
//! EXPERIMENTS.md index:
//!
//! ```text
//! lrc-exp report [--store DIR] [--out FILE] [--baseline SERIES] [--check]
//!                [--index-md PATH]
//! ```
//!
//! Migrate pre-store `results/{small,medium,paper}` JSON artifacts:
//!
//! ```text
//! lrc-exp migrate [--results DIR] [--store DIR]
//! ```
//!
//! `--trace-dir DIR` splits the `observe` experiment's artifacts into
//! standalone files: `observe.perfetto.json` (load in Perfetto / Chrome
//! `about:tracing`), `observe.jsonl`, `observe.timeseries.csv`, and
//! `observe.latency.json`.

#![forbid(unsafe_code)]

use lrc_exp::{
    config_hash, experiments, paper_stats, prepare_out_dir, render_html, report_json,
    resolve_timestamp, splice_index_md, IndexEntry, Params, ReportMeta, RunManifest, Runner,
    Store,
};
use lrc_json::ToJson;
use lrc_sim::MachineConfig;
use lrc_workloads::Scale;
use std::path::{Path, PathBuf};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("report") => report_cmd(&args[1..]),
        Some("migrate") => migrate_cmd(&args[1..]),
        _ => run_cmd(&args),
    };
    exit(code);
}

fn usage() -> i32 {
    eprintln!(
        "usage: lrc-exp <experiment ...|all> [--scale paper|medium|small|tiny] [--procs N] \
         [--threads N] [--seeds N] [--store DIR] [--timestamp T] [--json DIR] \
         [--trace-dir DIR] [--quiet]\n\
         \x20      lrc-exp report [--store DIR] [--out FILE] [--baseline SERIES] [--check] \
         [--index-md PATH]\n\
         \x20      lrc-exp migrate [--results DIR] [--store DIR]"
    );
    eprintln!("experiments: {}", experiments::ALL_IDS.join(" "));
    2
}

/// Parse the value following a flag, exiting with usage on absence.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match args.get(*i) {
        Some(v) => v,
        None => {
            eprintln!("{flag} requires a value");
            exit(2);
        }
    }
}

/// Validate an output-directory flag up front, exiting with the typed
/// error (which names the flag) on failure.
fn checked_dir(flag: &'static str, path: &str) -> PathBuf {
    match prepare_out_dir(flag, Path::new(path)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    }
}

fn open_store(flag: &'static str, path: &str) -> Store {
    let root = checked_dir(flag, path);
    match Store::open(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

// ---------------------------------------------------------------------------
// `lrc-exp <ids...>` — run experiments.
// ---------------------------------------------------------------------------

fn run_cmd(args: &[String]) -> i32 {
    let mut ids: Vec<String> = Vec::new();
    let mut params = Params::default();
    let mut threads = 0usize;
    let mut seeds = 1u64;
    let mut json_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut timestamp: Option<u64> = None;
    let mut verbose = true;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = flag_value(args, &mut i, "--scale");
                params.scale = Scale::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}'");
                    exit(2);
                });
            }
            "--procs" => {
                params.procs = flag_value(args, &mut i, "--procs").parse().expect("--procs N");
            }
            "--threads" => {
                threads = flag_value(args, &mut i, "--threads").parse().expect("--threads N");
            }
            "--seeds" => {
                seeds = flag_value(args, &mut i, "--seeds").parse().expect("--seeds N");
                if seeds == 0 {
                    eprintln!("--seeds must be >= 1");
                    return 2;
                }
            }
            "--timestamp" => {
                timestamp =
                    Some(flag_value(args, &mut i, "--timestamp").parse().expect("--timestamp T"));
            }
            "--json" => json_dir = Some(flag_value(args, &mut i, "--json").to_string()),
            "--trace-dir" => trace_dir = Some(flag_value(args, &mut i, "--trace-dir").to_string()),
            "--store" => store_dir = Some(flag_value(args, &mut i, "--store").to_string()),
            "--quiet" => verbose = false,
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.is_empty() {
        return usage();
    }

    // Validate every output path before any (expensive) simulation runs.
    if let Some(dir) = &json_dir {
        checked_dir("--json", dir);
    }
    if let Some(dir) = &trace_dir {
        checked_dir("--trace-dir", dir);
    }
    let store = store_dir.as_ref().map(|dir| open_store("--store", dir));
    let ts = resolve_timestamp(timestamp);

    let runner = Runner::new(threads, verbose);
    for seed in 0..seeds {
        params.seed = seed;
        if verbose && seeds > 1 {
            eprintln!("== seed {seed}");
        }
        for id in &ids {
            let Some(report) = experiments::run_by_id(id, &runner, params) else {
                eprintln!("unknown experiment '{id}' (have: {})", experiments::ALL_IDS.join(" "));
                return 2;
            };
            // The canonical seed keeps the legacy behavior: print the
            // paper-style tables and write the standalone JSON files.
            if seed == 0 {
                report.print();
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{id}.json");
                    std::fs::write(&path, report.to_json().pretty()).expect("write json");
                    eprintln!("wrote {path}");
                }
                if id == "observe" {
                    if let Some(dir) = &trace_dir {
                        write_trace_artifacts(dir, &report.json);
                    }
                }
            }
            if let Some(store) = &store {
                match store_run(store, id, &params, &report, ts) {
                    Ok(hash) => {
                        if verbose {
                            eprintln!("stored {id} seed {seed} -> {}", &hash[..12.min(hash.len())]);
                        }
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return 1;
                    }
                }
            }
        }
    }
    0
}

/// Persist one run: artifact blob, fresh manifest, index row. Returns the
/// artifact hash.
fn store_run(
    store: &Store,
    id: &str,
    params: &Params,
    report: &lrc_exp::Report,
    timestamp: u64,
) -> Result<String, lrc_exp::StoreError> {
    let artifact = report.to_json();
    let artifact_hash = store.put(&artifact)?;
    let config = MachineConfig::paper_default(params.procs).to_json();
    let manifest = RunManifest::new(id, params.to_json(), config, &artifact_hash, timestamp);
    let manifest_hash = store.put(&manifest.to_json())?;
    store.record(IndexEntry {
        experiment: id.to_string(),
        scale: params.scale.name().to_string(),
        procs: params.procs as u64,
        seed: params.seed,
        config_hash: manifest.config_hash.clone(),
        artifact: artifact_hash.clone(),
        manifest: manifest_hash,
        migrated: false,
        timestamp,
    })?;
    Ok(artifact_hash)
}

fn write_trace_artifacts(dir: &str, j: &lrc_json::Value) {
    let files = [
        ("observe.perfetto.json", j["perfetto"].dump()),
        ("observe.jsonl", j["jsonl"].as_str().unwrap_or_default().to_string()),
        ("observe.timeseries.csv", j["timeseries_csv"].as_str().unwrap_or_default().to_string()),
        ("observe.latency.json", j["latency"].dump()),
    ];
    for (name, contents) in files {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, contents).expect("write trace artifact");
        eprintln!("wrote {path}");
    }
}

// ---------------------------------------------------------------------------
// `lrc-exp report` — HTML + JSON report, staleness check, index-md.
// ---------------------------------------------------------------------------

/// The configuration hash the *current* tool derives for a manifest's
/// parameters — the staleness oracle for `--check`.
fn current_config_hash(m: &RunManifest) -> Option<String> {
    let procs = m.params["procs"].as_u64()? as usize;
    Some(config_hash(&m.experiment, &m.params, &MachineConfig::paper_default(procs).to_json()))
}

fn report_cmd(args: &[String]) -> i32 {
    let mut store_dir = "results/store".to_string();
    let mut out = "results/report.html".to_string();
    let mut baseline = "eager".to_string();
    let mut check = false;
    let mut index_md: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--store" => store_dir = flag_value(args, &mut i, "--store").to_string(),
            "--out" => out = flag_value(args, &mut i, "--out").to_string(),
            "--baseline" => baseline = flag_value(args, &mut i, "--baseline").to_string(),
            "--check" => check = true,
            "--index-md" => index_md = Some(flag_value(args, &mut i, "--index-md").to_string()),
            _ => return usage(),
        }
        i += 1;
    }

    if let Some(path) = &index_md {
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        if let Err(e) = std::fs::write(path, splice_index_md(&existing)) {
            eprintln!("--index-md {path}: {e}");
            return 1;
        }
        eprintln!("wrote {path}");
        if !check && args.len() == 2 {
            return 0; // index-only invocation
        }
    }

    let store = open_store("--store", &store_dir);

    if check {
        let known: Vec<&str> = experiments::ALL_IDS.to_vec();
        match store.check(&known, &current_config_hash) {
            Ok(failures) if failures.is_empty() => {
                let n = store.entries().map(|e| e.len()).unwrap_or(0);
                eprintln!("store {store_dir}: {n} entries, all current");
                return 0;
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("STALE {}: {}", f.entry, f.reason);
                }
                eprintln!("store {store_dir}: {} stale/corrupt entr(ies)", failures.len());
                return 1;
            }
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }

    let stats = match paper_stats(&store, &experiments::ALL_IDS, &baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let meta = ReportMeta {
        tool_version: env!("CARGO_PKG_VERSION").to_string(),
        store_label: store_dir.clone(),
        baseline,
    };

    let out_path = Path::new(&out);
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            checked_dir("--out", &parent.display().to_string());
        }
    }
    // Provenance links are relative to the HTML file when the store sits
    // under its directory; otherwise they point at the store path as given.
    let store_prefix = match out_path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => match store.root().strip_prefix(parent) {
            Ok(rel) => format!("{}/", rel.display()),
            Err(_) => format!("{}/", store.root().display()),
        },
        _ => format!("{}/", store.root().display()),
    };

    let html = render_html(&stats, &meta, &store_prefix);
    if let Err(e) = std::fs::write(out_path, &html) {
        eprintln!("--out {out}: {e}");
        return 1;
    }
    eprintln!("wrote {out} ({} experiment groups)", stats.len());

    let json_path = out_path.with_extension("json");
    let doc = report_json(&stats, &meta);
    if let Err(e) = std::fs::write(&json_path, doc.pretty()) {
        eprintln!("{}: {e}", json_path.display());
        return 1;
    }
    eprintln!("wrote {}", json_path.display());
    0
}

// ---------------------------------------------------------------------------
// `lrc-exp migrate` — pull legacy results/ JSONs into the store.
// ---------------------------------------------------------------------------

fn migrate_cmd(args: &[String]) -> i32 {
    let mut results = "results".to_string();
    let mut store_dir: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--results" => results = flag_value(args, &mut i, "--results").to_string(),
            "--store" => store_dir = Some(flag_value(args, &mut i, "--store").to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    let store_dir = store_dir.unwrap_or_else(|| format!("{results}/store"));
    let store = open_store("--store", &store_dir);

    let mut migrated = 0usize;
    for scale in ["small", "medium", "paper"] {
        let dir = Path::new(&results).join(scale);
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        for path in files {
            let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(str::to_string) else {
                continue;
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("skip {}: {e}", path.display());
                    continue;
                }
            };
            let artifact = match lrc_json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("skip {}: {e}", path.display());
                    continue;
                }
            };
            let result = store.put(&artifact).and_then(|artifact_hash| {
                let manifest = RunManifest::migrated(
                    &id,
                    lrc_json::json!({ "scale": scale, "source": path.display().to_string() }),
                    &artifact_hash,
                );
                let manifest_hash = store.put(&manifest.to_json())?;
                store.record(IndexEntry {
                    experiment: id.clone(),
                    scale: scale.to_string(),
                    procs: 0,
                    seed: 0,
                    config_hash: manifest.config_hash.clone(),
                    artifact: artifact_hash,
                    manifest: manifest_hash,
                    migrated: true,
                    timestamp: 0,
                })
            });
            match result {
                Ok(()) => {
                    migrated += 1;
                    eprintln!("migrated {}", path.display());
                }
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            }
        }
    }
    eprintln!("migrated {migrated} artifact(s) into {store_dir}");
    0
}

//! Output-path validation for the CLI binaries.
//!
//! Historically `lrc-exp --json <dir>` only discovered an unusable output
//! directory *after* running minutes of simulation, then panicked in the
//! write path. Every output flag now goes through [`prepare_out_dir`]
//! before any experiment starts: the directory is created (parents
//! included) or the tool exits immediately with a typed error that names
//! the offending flag.

use std::fmt;
use std::path::{Path, PathBuf};

/// An output flag whose value cannot be used as a directory.
#[derive(Debug)]
pub struct FlagPathError {
    /// The CLI flag the bad value came from (`--json`, `--trace-dir`,
    /// `--store`, `--out`).
    pub flag: &'static str,
    /// The value the user passed.
    pub path: PathBuf,
    /// What went wrong (create failure, or exists-but-not-a-directory).
    pub message: String,
}

impl fmt::Display for FlagPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.flag,
            self.path.display(),
            self.message
        )
    }
}

impl std::error::Error for FlagPathError {}

/// Validate an output directory for `flag` up front: create it (and any
/// missing parents) if absent, and reject paths that exist but are not
/// directories. Returns the path unchanged on success so call sites can
/// thread it through.
pub fn prepare_out_dir(flag: &'static str, path: &Path) -> Result<PathBuf, FlagPathError> {
    if path.as_os_str().is_empty() {
        return Err(FlagPathError {
            flag,
            path: path.to_path_buf(),
            message: "empty path".to_string(),
        });
    }
    if path.exists() {
        if !path.is_dir() {
            return Err(FlagPathError {
                flag,
                path: path.to_path_buf(),
                message: "exists but is not a directory".to_string(),
            });
        }
        return Ok(path.to_path_buf());
    }
    std::fs::create_dir_all(path).map_err(|e| FlagPathError {
        flag,
        path: path.to_path_buf(),
        message: format!("cannot create directory: {e}"),
    })?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lrc-paths-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn creates_missing_directories_recursively() {
        let root = tmpdir("create");
        let nested = root.join("a/b/c");
        let got = prepare_out_dir("--json", &nested).expect("create nested");
        assert_eq!(got, nested);
        assert!(nested.is_dir());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn accepts_existing_directory() {
        let root = tmpdir("exists");
        std::fs::create_dir_all(&root).unwrap();
        assert!(prepare_out_dir("--store", &root).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_file_in_the_way_and_names_the_flag() {
        let root = tmpdir("file");
        std::fs::create_dir_all(&root).unwrap();
        let file = root.join("blocker");
        std::fs::write(&file, b"x").unwrap();
        let err = prepare_out_dir("--trace-dir", &file).expect_err("file is not a dir");
        assert_eq!(err.flag, "--trace-dir");
        let msg = err.to_string();
        assert!(msg.contains("--trace-dir"), "{msg}");
        assert!(msg.contains("not a directory"), "{msg}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_unwritable_parent() {
        // A path under an existing *file* can never be created.
        let root = tmpdir("parent");
        std::fs::create_dir_all(&root).unwrap();
        let file = root.join("f");
        std::fs::write(&file, b"x").unwrap();
        let err = prepare_out_dir("--out", &file.join("sub")).expect_err("parent is a file");
        assert_eq!(err.flag, "--out");
        assert!(err.to_string().contains("cannot create"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

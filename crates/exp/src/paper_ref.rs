//! The paper's published numbers, embedded for side-by-side comparison in
//! every regenerated table (EXPERIMENTS.md records paper-vs-measured).

/// Table 2 (the paper's Figure 2): miss classification under eager RC, as
/// percentages `[cold, true, false, eviction, write]` per application.
pub const TABLE2: [(&str, [f64; 5]); 7] = [
    ("barnes", [6.9, 9.0, 11.4, 62.9, 9.7]),
    ("blu", [8.6, 24.7, 24.1, 12.7, 29.8]),
    ("cholesky", [26.1, 5.9, 1.6, 28.0, 38.2]),
    ("fft", [13.3, 1.0, 0.0, 54.0, 31.7]),
    ("gauss", [7.5, 0.2, 0.1, 75.0, 17.1]),
    ("locusroute", [6.1, 13.0, 33.0, 15.6, 32.3]),
    ("mp3d", [3.1, 31.1, 5.7, 13.5, 46.5]),
];

/// Table 3 (the paper's Figure 3): miss rates in percent under
/// `[eager, lazy, lazy-ext]`.
pub const TABLE3: [(&str, [f64; 3]); 7] = [
    ("barnes", [0.43, 0.41, 0.40]),
    ("blu", [2.08, 1.94, 1.45]),
    ("cholesky", [1.24, 1.24, 1.24]),
    ("fft", [0.47, 0.47, 0.47]),
    ("gauss", [2.72, 2.72, 2.33]),
    ("locusroute", [1.86, 1.24, 1.02]),
    ("mp3d", [4.81, 3.78, 2.57]),
];

/// Figure 4, distilled: the lazy protocol's execution-time improvement over
/// eager RC, in percent (positive = lazy faster), as reported in the text
/// of Section 4.2. Cholesky is described as "a little slower", fft as "a
/// little faster".
pub const FIG4_LAZY_VS_EAGER_PCT: [(&str, f64); 7] = [
    ("barnes", 9.0),
    ("blu", 5.0),
    ("cholesky", -1.0),
    ("fft", 1.0),
    ("gauss", 9.0),
    ("locusroute", 13.0),
    ("mp3d", 17.0),
];

/// Section 4.3: on the future machine the lazy-eager gap grows by 2–4
/// percentage points (mp3d reaches 23%).
pub const FIG8_LAZY_VS_EAGER_PCT: [(&str, f64); 7] = [
    ("barnes", 12.0),
    ("blu", 8.0),
    ("cholesky", 2.0),
    ("fft", 3.0),
    ("gauss", 12.0),
    ("locusroute", 16.0),
    ("mp3d", 23.0),
];

/// Section 4.2: mp3d solution-quality divergence between SC and lazy
/// visibility — X coordinate 6.7%, Y and Z under 0.1%.
pub const QUALITY_DIVERGENCE_PCT: [f64; 3] = [6.7, 0.1, 0.1];

/// Paper value lookup by workload name.
pub fn table2_row(name: &str) -> Option<[f64; 5]> {
    TABLE2.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

/// Paper Table-3 lookup by workload name.
pub fn table3_row(name: &str) -> Option<[f64; 3]> {
    TABLE3.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_sum_to_about_100() {
        for (name, row) in TABLE2 {
            let sum: f64 = row.iter().sum();
            assert!((sum - 100.0).abs() < 1.5, "{name}: {sum}");
        }
    }

    #[test]
    fn lookups_work() {
        assert_eq!(table2_row("mp3d").unwrap()[4], 46.5);
        assert_eq!(table3_row("gauss").unwrap(), [2.72, 2.72, 2.33]);
        assert!(table2_row("nope").is_none());
    }

    #[test]
    fn lazy_beats_eager_in_paper_except_cholesky() {
        for (name, gain) in FIG4_LAZY_VS_EAGER_PCT {
            if name == "cholesky" {
                assert!(gain < 0.0);
            } else {
                assert!(gain > 0.0, "{name}");
            }
        }
    }
}

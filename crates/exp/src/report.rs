//! Report rendering: plain-text tables in the paper's style plus
//! machine-readable JSON for EXPERIMENTS.md tooling.

use lrc_json::Value;

/// One regenerated artifact (a table or figure).
#[derive(Debug, Clone)]
pub struct Report {
    /// Stable id: `table1` … `fig9`, `sweep`, `quality`.
    pub id: String,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// Rendered plain-text table(s).
    pub text: String,
    /// Machine-readable payload.
    pub json: Value,
}

impl Report {
    /// Print the report to stdout.
    pub fn print(&self) {
        println!("== {} — {}\n", self.id, self.title);
        println!("{}", self.text);
    }

    /// The report as one JSON object (what `--json DIR` writes to disk).
    pub fn to_json(&self) -> Value {
        lrc_json::json!({
            "id": self.id.clone(),
            "title": self.title.clone(),
            "text": self.text.clone(),
            "json": self.json.clone(),
        })
    }
}

/// Minimal fixed-width table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (cells are stringified already).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let c = &cells[i];
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Render a horizontal bar of `value` against a unit scale (`1.0` = the
/// sequentially consistent baseline), `width` characters at full scale.
/// Values above 1.0 extend past the `|` baseline marker.
pub fn bar(value: f64, width: usize) -> String {
    let chars = (value.max(0.0) * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..chars.max(1).min(width * 2) {
        s.push(if i == width { '|' } else { '█' });
    }
    if chars <= width {
        s.push_str(&" ".repeat(width - chars.min(width)));
        s.push('|');
    }
    s
}

/// Format a fraction as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a miss rate as percent with two decimals (Table-3 style).
pub fn miss_pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["App", "Value"]);
        t.row(vec!["gauss", "1.00"]);
        t.row(vec!["mp3d-longer", "0.83"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[2].starts_with("gauss"));
        // All rows equal width for the first column.
        assert!(lines[2].find("1.00").is_some());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(ratio(0.834), "0.83");
        assert_eq!(miss_pct(0.0481), "4.81%");
    }
}

//! Report rendering: plain-text tables in the paper's style plus
//! machine-readable JSON for EXPERIMENTS.md tooling.

use lrc_json::Value;

/// One regenerated artifact (a table or figure).
#[derive(Debug, Clone)]
pub struct Report {
    /// Stable id: `table1` … `fig9`, `sweep`, `quality`.
    pub id: String,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// Rendered plain-text table(s).
    pub text: String,
    /// Machine-readable payload.
    pub json: Value,
}

impl Report {
    /// Print the report to stdout.
    pub fn print(&self) {
        println!("== {} — {}\n", self.id, self.title);
        println!("{}", self.text);
    }

    /// The report as one JSON object (what `--json DIR` writes to disk).
    pub fn to_json(&self) -> Value {
        lrc_json::json!({
            "id": self.id.clone(),
            "title": self.title.clone(),
            "text": self.text.clone(),
            "json": self.json.clone(),
        })
    }
}

/// Minimal fixed-width table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (cells are stringified already).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let c = &cells[i];
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Render a horizontal bar of `value` against a unit scale (`1.0` = the
/// sequentially consistent baseline), `width` characters at full scale.
/// Values above 1.0 extend past the `|` baseline marker.
pub fn bar(value: f64, width: usize) -> String {
    let chars = (value.max(0.0) * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..chars.max(1).min(width * 2) {
        s.push(if i == width { '|' } else { '█' });
    }
    if chars <= width {
        s.push_str(&" ".repeat(width - chars.min(width)));
        s.push('|');
    }
    s
}

/// Format a fraction as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a miss rate as percent with two decimals (Table-3 style).
pub fn miss_pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["App", "Value"]);
        t.row(vec!["gauss", "1.00"]);
        t.row(vec!["mp3d-longer", "0.83"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[2].starts_with("gauss"));
        // All rows equal width for the first column.
        assert!(lines[2].find("1.00").is_some());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(ratio(0.834), "0.83");
        assert_eq!(miss_pct(0.0481), "4.81%");
    }
}

// ============================================================================
// The paper report: cross-seed statistics over the artifact store, rendered
// as one self-contained HTML document (inline SVG charts, provenance
// footnotes) plus a machine-readable `report.json`.
// ============================================================================

use crate::manifest::RunManifest;
use crate::stats::{effect, holm_adjust, summarize, Effect, Summary};
use crate::store::{IndexEntry, Store, StoreError};

/// Report JSON schema tag.
pub const REPORT_SCHEMA: &str = "lrc-exp-report-v1";

/// One numeric observation extracted from an experiment artifact:
/// `(row, series, value)` — e.g. `("mp3d", "lazy", 0.67)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Row label (application, configuration, axis...).
    pub row: String,
    /// Series label (protocol, miss class, fence interval...).
    pub series: String,
    /// The measured value, in the experiment's [`unit`].
    pub value: f64,
}

fn m(row: impl Into<String>, series: impl Into<String>, value: f64) -> Metric {
    Metric { row: row.into(), series: series.into(), value }
}

/// Extract the comparable numeric metrics from one experiment artifact
/// (the full report JSON as stored: `{id, title, text, json}`). Unknown
/// ids and non-numeric experiments (table1) return an empty vec.
pub fn metrics(id: &str, artifact: &lrc_json::Value) -> Vec<Metric> {
    let p = &artifact["json"];
    let rows = |key: &str| p[key].as_array().cloned().unwrap_or_default();
    let mut out = Vec::new();
    match id {
        "table2" => {
            const CLASSES: [&str; 5] = ["cold", "true-share", "false-share", "eviction", "write"];
            for r in rows("rows") {
                let app = r["app"].as_str().unwrap_or("?").to_string();
                for (i, c) in CLASSES.iter().enumerate() {
                    if let Some(v) = r["measured"][i].as_f64() {
                        out.push(m(&app, *c, v));
                    }
                }
            }
        }
        "table3" => {
            const PROTOS: [&str; 3] = ["eager", "lazy", "lazy-ext"];
            for r in rows("rows") {
                let app = r["app"].as_str().unwrap_or("?").to_string();
                for (i, pr) in PROTOS.iter().enumerate() {
                    if let Some(v) = r["measured"][i].as_f64() {
                        out.push(m(&app, *pr, v));
                    }
                }
            }
        }
        "fig4" | "fig6" | "fig8" => {
            for r in rows("rows") {
                let app = r["app"].as_str().unwrap_or("?").to_string();
                let protos = r["protocols"].as_array().cloned().unwrap_or_default();
                for (i, pr) in protos.iter().enumerate() {
                    if let (Some(name), Some(v)) = (pr.as_str(), r["normalized"][i].as_f64()) {
                        out.push(m(&app, name, v));
                    }
                }
            }
        }
        "fig5" | "fig7" | "fig9" => {
            for r in rows("rows") {
                let app = r["app"].as_str().unwrap_or("?").to_string();
                let proto = r["protocol"].as_str().unwrap_or("?").to_string();
                let total: f64 =
                    ["cpu", "read", "write", "sync"].iter().filter_map(|k| r[*k].as_f64()).sum();
                out.push(m(&app, &proto, total));
            }
        }
        "sweep" => {
            let apps: Vec<String> = p["apps"]
                .as_array()
                .cloned()
                .unwrap_or_default()
                .iter()
                .filter_map(|a| a.as_str().map(str::to_string))
                .collect();
            for r in rows("rows") {
                let cfg = r["config"].as_str().unwrap_or("?").to_string();
                for (i, app) in apps.iter().enumerate() {
                    if let Some(v) = r["lazy_over_eager"][i].as_f64() {
                        out.push(m(&cfg, app, v));
                    }
                }
            }
        }
        "quality" => {
            for (i, axis) in ["X", "Y", "Z"].iter().enumerate() {
                if let Some(v) = p["divergence_pct"][i].as_f64() {
                    out.push(m(*axis, "divergence", v));
                }
            }
        }
        "traffic" => {
            for r in rows("rows") {
                let app = r["app"].as_str().unwrap_or("?").to_string();
                let proto = r["protocol"].as_str().unwrap_or("?").to_string();
                if let Some(b) = r["bytes"].as_f64() {
                    out.push(m(&app, &proto, b / 1e6));
                }
            }
        }
        "scaling" => {
            for r in rows("rows") {
                let app = r["app"].as_str().unwrap_or("?");
                let procs = r["procs"].as_u64().unwrap_or(0);
                let row = format!("{app} @{procs}p");
                for k in ["sc", "eager", "lazy"] {
                    if let Some(v) = r[k].as_f64() {
                        out.push(m(&row, k, v));
                    }
                }
            }
        }
        "fences" => {
            for r in rows("rows") {
                let app = r["app"].as_str().unwrap_or("?").to_string();
                for k in ["eager", "lazy"] {
                    if let Some(v) = r[k].as_f64() {
                        out.push(m(&app, k, v));
                    }
                }
                for f in r["fenced"].as_array().cloned().unwrap_or_default() {
                    if let (Some(i), Some(v)) = (f["interval"].as_u64(), f["cycles"].as_f64()) {
                        out.push(m(&app, format!("fence/{i}"), v));
                    }
                }
            }
        }
        "avail" => {
            for r in rows("rows") {
                let proto = r["protocol"].as_str().unwrap_or("?").to_string();
                let run = r["run"].as_str().unwrap_or("?").to_string();
                if let Some(v) = r["cycles"].as_f64() {
                    out.push(m(&proto, &run, v));
                }
            }
        }
        "diverge" => {
            for r in rows("rows") {
                let proto = r["protocol"].as_str().unwrap_or("?").to_string();
                let rate = r["rate"].as_f64().unwrap_or(0.0);
                if let Some(v) = r["first_divergence"].as_f64() {
                    out.push(m(&proto, format!("faults {rate}"), v));
                }
            }
        }
        "observe" => {
            for r in p["latency"].as_array().cloned().unwrap_or_default() {
                let name = r["name"].as_str().unwrap_or("?").to_string();
                for k in ["mean", "p50", "p95"] {
                    if let Some(v) = r[k].as_f64() {
                        out.push(m(&name, k, v));
                    }
                }
            }
        }
        "ablate" => {
            for s in p["sections"].as_array().cloned().unwrap_or_default() {
                let knob = s["knob"].as_str().unwrap_or("?").to_string();
                for r in s["rows"].as_array().cloned().unwrap_or_default() {
                    let Some(fields) = r.as_object() else { continue };
                    // First field labels the setting; the remaining numeric
                    // fields are the measurements.
                    let label = fields
                        .first()
                        .map(|(k, v)| match v.as_str() {
                            Some(s) => format!("{k}={s}"),
                            None => format!("{k}={}", v.dump()),
                        })
                        .unwrap_or_else(|| "?".to_string());
                    for (k, v) in fields.iter().skip(1) {
                        if let Some(x) = v.as_f64() {
                            out.push(m(format!("{knob} {label}"), k.clone(), x));
                        }
                    }
                }
            }
        }
        _ => {}
    }
    out
}

/// Experiments the HTML report charts (the rest get tables only): known
/// row/series shapes with a single comparable unit and ≤ 5 series.
pub const CHARTABLE: [&str; 14] = [
    "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "sweep", "quality",
    "traffic", "scaling", "fences", "avail",
];

/// The value axis label for an experiment's metrics.
pub fn unit(id: &str) -> &'static str {
    match id {
        "table2" => "% of misses",
        "table3" => "miss rate (%)",
        "fig4" | "fig6" | "fig8" => "execution time (SC = 1)",
        "fig5" | "fig7" | "fig9" => "overhead (SC total = 1)",
        "sweep" => "lazy/eager time ratio",
        "quality" => "divergence (% of |v|)",
        "traffic" => "MB on wire",
        "scaling" | "fences" | "avail" => "total cycles",
        "diverge" => "first divergence (cycle)",
        "observe" => "latency (cycles)",
        "ablate" => "mixed units",
        _ => "",
    }
}

fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-cell cross-seed statistics.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Row label.
    pub row: String,
    /// Series label.
    pub series: String,
    /// Per-seed observations, in seed order.
    pub values: Vec<f64>,
    /// Bootstrap summary of `values`.
    pub summary: Summary,
}

/// One comparison against the baseline series.
#[derive(Debug, Clone)]
pub struct EffectCell {
    /// Row label.
    pub row: String,
    /// Subject series (the baseline is implicit).
    pub series: String,
    /// Effect size / significance bundle.
    pub effect: Effect,
}

/// Provenance of one stored run (one seed of one experiment cell).
#[derive(Debug, Clone)]
pub struct SeedRun {
    /// The index row.
    pub entry: IndexEntry,
    /// Its decoded manifest.
    pub manifest: RunManifest,
}

/// Cross-seed statistics for one (experiment, scale, procs) group.
#[derive(Debug, Clone)]
pub struct ExpStats {
    /// Experiment id.
    pub id: String,
    /// Title from the artifact (paper caption).
    pub title: String,
    /// Input scale of this group.
    pub scale: String,
    /// Processor count of this group (0 = unknown/migrated).
    pub procs: u64,
    /// Value-axis unit label.
    pub unit: &'static str,
    /// Row labels, first-seen order.
    pub rows: Vec<String>,
    /// Series labels, first-seen order.
    pub series: Vec<String>,
    /// Per-cell summaries (row-major over `rows` × `series`; missing
    /// combinations are absent).
    pub cells: Vec<CellStats>,
    /// Baseline series name, when present in `series`.
    pub baseline: Option<String>,
    /// Effects vs the baseline (Holm-adjusted within this experiment).
    pub effects: Vec<EffectCell>,
    /// Seeds contributing to this group, ascending.
    pub seeds: Vec<u64>,
    /// One provenance record per seed.
    pub provenance: Vec<SeedRun>,
}

impl ExpStats {
    /// Look up the cell for `(row, series)`.
    pub fn cell(&self, row: &str, series: &str) -> Option<&CellStats> {
        self.cells.iter().find(|c| c.row == row && c.series == series)
    }
}

/// Assemble cross-seed statistics for every (experiment, scale, procs)
/// group in the store. Groups are ordered by `id_order` position (unknown
/// ids last), then scale, then procs. `baseline` names the series effects
/// are computed against where it exists (usually a protocol, "eager").
pub fn paper_stats(
    store: &Store,
    id_order: &[&str],
    baseline: &str,
) -> Result<Vec<ExpStats>, StoreError> {
    let entries = store.entries()?;
    let mut groups: Vec<((String, String, u64), Vec<IndexEntry>)> = Vec::new();
    for e in entries {
        let key = (e.experiment.clone(), e.scale.clone(), e.procs);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(e),
            None => groups.push((key, vec![e])),
        }
    }
    let pos = |id: &str| id_order.iter().position(|x| *x == id).unwrap_or(usize::MAX);
    groups.sort_by(|((ia, sa, pa), _), ((ib, sb, pb), _)| {
        (pos(ia), ia, sa, pa).cmp(&(pos(ib), ib, sb, pb))
    });

    let mut out = Vec::new();
    for ((id, scale, procs), mut group) in groups {
        group.sort_by_key(|e| e.seed);
        let mut title = id.clone();
        let mut rows: Vec<String> = Vec::new();
        let mut series: Vec<String> = Vec::new();
        let mut values: Vec<((String, String), Vec<f64>)> = Vec::new();
        let mut provenance = Vec::new();
        for e in &group {
            let artifact = store.get(&e.artifact)?;
            if let Some(t) = artifact["title"].as_str() {
                title = t.to_string();
            }
            for metric in metrics(&id, &artifact) {
                if !rows.contains(&metric.row) {
                    rows.push(metric.row.clone());
                }
                if !series.contains(&metric.series) {
                    series.push(metric.series.clone());
                }
                let key = (metric.row, metric.series);
                match values.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v.push(metric.value),
                    None => values.push((key, vec![metric.value])),
                }
            }
            provenance.push(SeedRun { entry: e.clone(), manifest: store.manifest(e)? });
        }

        let cells: Vec<CellStats> = values
            .iter()
            .map(|((row, ser), vals)| CellStats {
                row: row.clone(),
                series: ser.clone(),
                values: vals.clone(),
                summary: summarize(vals, fnv1a64(&format!("{id}|{scale}|{procs}|{row}|{ser}"))),
            })
            .collect();

        let baseline_name =
            series.iter().find(|s| s.as_str() == baseline).cloned();
        let mut effects = Vec::new();
        if let Some(base) = &baseline_name {
            for ((row, ser), vals) in &values {
                if ser == base {
                    continue;
                }
                let Some((_, bvals)) = values.iter().find(|((r, s), _)| r == row && s == base)
                else {
                    continue;
                };
                if bvals.len() != vals.len() || vals.is_empty() {
                    continue; // unpaired: a seed is missing on one side
                }
                let e = effect(vals, bvals, fnv1a64(&format!("{id}|{row}|{ser}|effect")));
                effects.push(EffectCell { row: row.clone(), series: ser.clone(), effect: e });
            }
            let adjusted = holm_adjust(
                &effects.iter().map(|e| e.effect.p).collect::<Vec<_>>(),
            );
            for (e, adj) in effects.iter_mut().zip(adjusted) {
                e.effect.p_adjusted = adj;
            }
        }

        out.push(ExpStats {
            unit: unit(&id),
            id,
            title,
            scale,
            procs,
            rows,
            series,
            cells,
            baseline: baseline_name,
            effects,
            seeds: group.iter().map(|e| e.seed).collect(),
            provenance,
        });
    }
    Ok(out)
}

// ============================================================================
// HTML rendering: self-contained report with inline SVG charts, full data
// tables, and provenance footnotes. Palette and accessibility rules follow
// DESIGN.md §11 (validated categorical palette, light + dark).
// ============================================================================

use lrc_json::json;

/// Context shown in the report header and embedded in `report.json`.
#[derive(Debug, Clone)]
pub struct ReportMeta {
    /// `lrc-exp` crate version.
    pub tool_version: String,
    /// Human label for the store the report was built from.
    pub store_label: String,
    /// Baseline series name effects were computed against.
    pub baseline: String,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Compact value label: `1.23G`, `45.6M`, `78.9k`, `123`, `4.56`, `0.078`.
pub fn fmt_val(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.3}")
    }
}

fn fmt_p(p: f64) -> String {
    if p < 0.001 {
        "<0.001".to_string()
    } else {
        format!("{p:.3}")
    }
}

/// `unix seconds → "YYYY-MM-DD HH:MM UTC"` (`0` renders as `—`). Civil-date
/// conversion after Hinnant's `days_from_civil` inverse.
pub fn iso_utc(ts: u64) -> String {
    if ts == 0 {
        return "—".to_string();
    }
    let days = (ts / 86_400) as i64;
    let secs = ts % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mth = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mth <= 2 { y + 1 } else { y };
    format!("{y:04}-{mth:02}-{d:02} {:02}:{:02} UTC", secs / 3600, (secs % 3600) / 60)
}

/// Palette index per series: protocol series keep their fixed entity color
/// (sc=0 eager=1 lazy=2 lazy-ext=3); other series take the remaining slots
/// in order. Color follows the entity, never its rank.
fn color_indices(series: &[String]) -> Vec<usize> {
    let fixed = |s: &str| match s {
        "sc" => Some(0),
        "eager" => Some(1),
        "lazy" => Some(2),
        "lazy-ext" => Some(3),
        _ => None,
    };
    let used: Vec<usize> = series.iter().filter_map(|s| fixed(s)).collect();
    let mut free: Vec<usize> = (0..5).filter(|i| !used.contains(i)).collect();
    series
        .iter()
        .map(|s| fixed(s).unwrap_or_else(|| if free.is_empty() { 4 } else { free.remove(0) }))
        .collect()
}

const CHART_W: usize = 920;
const CHART_LEFT: usize = 190;
const CHART_RIGHT: usize = 84;
const BAR_H: usize = 13;
const BAR_GAP: usize = 2;
const GROUP_PAD: usize = 10;

/// Render one experiment group as an inline SVG horizontal grouped-bar
/// chart with 95% CI whiskers. Returns `None` when the data doesn't chart
/// cleanly (not in [`CHARTABLE`], >5 series, >48 rows, negative or all-zero
/// values) — the data table is always present regardless.
fn svg_chart(e: &ExpStats) -> Option<String> {
    if !CHARTABLE.contains(&e.id.as_str()) || e.series.len() > 5 || e.rows.len() > 48 {
        return None;
    }
    let mut max = 0.0f64;
    for c in &e.cells {
        if c.summary.mean < 0.0 || c.summary.ci_lo < 0.0 {
            return None;
        }
        max = max.max(c.summary.mean).max(c.summary.ci_hi);
    }
    if max <= 0.0 {
        return None;
    }
    let colors = color_indices(&e.series);
    let ns = e.series.len();
    let gh = ns * (BAR_H + BAR_GAP) + GROUP_PAD;
    let plot_h = e.rows.len() * gh;
    let h = plot_h + 26;
    let plot_w = CHART_W - CHART_LEFT - CHART_RIGHT;
    let x = |v: f64| CHART_LEFT as f64 + v / max * plot_w as f64;
    let label_bars = e.rows.len() * ns <= 30;

    let mut s = String::new();
    s.push_str(&format!(
        "<svg viewBox=\"0 0 {CHART_W} {h}\" role=\"img\" \
         aria-label=\"{}: grouped bar chart\">\n",
        esc(&e.id)
    ));
    // Recessive grid: quarter ticks.
    for i in 1..=4 {
        let gx = x(max * i as f64 / 4.0);
        s.push_str(&format!(
            "<line class=\"grid\" x1=\"{gx:.1}\" y1=\"0\" x2=\"{gx:.1}\" y2=\"{plot_h}\"/>\n"
        ));
        s.push_str(&format!(
            "<text class=\"tick\" x=\"{gx:.1}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            plot_h + 16,
            esc(&fmt_val(max * i as f64 / 4.0))
        ));
    }
    s.push_str(&format!(
        "<line class=\"axis\" x1=\"{CHART_LEFT}\" y1=\"0\" x2=\"{CHART_LEFT}\" y2=\"{plot_h}\"/>\n"
    ));
    for (ri, row) in e.rows.iter().enumerate() {
        let gy = ri * gh;
        s.push_str(&format!(
            "<text class=\"rl\" x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>\n",
            CHART_LEFT - 8,
            gy + (gh - GROUP_PAD) / 2 + 4,
            esc(row)
        ));
        for (si, ser) in e.series.iter().enumerate() {
            let Some(c) = e.cell(row, ser) else { continue };
            let y = gy + si * (BAR_H + BAR_GAP);
            let xe = x(c.summary.mean);
            let ymid = y as f64 + BAR_H as f64 / 2.0;
            s.push_str("<g>");
            s.push_str(&format!(
                "<title>{} · {}: {} [{}, {}] n={}</title>",
                esc(row),
                esc(ser),
                esc(&fmt_val(c.summary.mean)),
                esc(&fmt_val(c.summary.ci_lo)),
                esc(&fmt_val(c.summary.ci_hi)),
                c.summary.n
            ));
            s.push_str(&format!(
                "<rect class=\"c{}\" x=\"{CHART_LEFT}\" y=\"{y}\" width=\"{:.1}\" \
                 height=\"{BAR_H}\" rx=\"2\"/>",
                colors[si],
                (xe - CHART_LEFT as f64).max(0.5)
            ));
            if c.summary.n >= 2 && c.summary.ci_hi > c.summary.ci_lo {
                let (lo, hi) = (x(c.summary.ci_lo), x(c.summary.ci_hi));
                s.push_str(&format!(
                    "<line class=\"wh\" x1=\"{lo:.1}\" y1=\"{ymid:.1}\" x2=\"{hi:.1}\" y2=\"{ymid:.1}\"/>\
                     <line class=\"wh\" x1=\"{lo:.1}\" y1=\"{:.1}\" x2=\"{lo:.1}\" y2=\"{:.1}\"/>\
                     <line class=\"wh\" x1=\"{hi:.1}\" y1=\"{:.1}\" x2=\"{hi:.1}\" y2=\"{:.1}\"/>",
                    ymid - 4.0,
                    ymid + 4.0,
                    ymid - 4.0,
                    ymid + 4.0
                ));
            }
            if label_bars {
                let lx = xe.max(x(c.summary.ci_hi)) + 6.0;
                s.push_str(&format!(
                    "<text class=\"val\" x=\"{lx:.1}\" y=\"{:.1}\">{}</text>",
                    ymid + 4.0,
                    esc(&fmt_val(c.summary.mean))
                ));
            }
            s.push_str("</g>\n");
        }
    }
    s.push_str(&format!(
        "<text class=\"unit\" x=\"{CHART_W}\" y=\"{}\" text-anchor=\"end\">{}</text>\n",
        plot_h + 16,
        esc(e.unit)
    ));
    s.push_str("</svg>\n");
    Some(s)
}

const CSS: &str = "\
:root{--bg:#fcfcfb;--ink:#202422;--ink2:#5c6462;--muted:#8a918f;--line:#e3e5e1;\
--c0:#2a78d6;--c1:#eb6834;--c2:#1baf7a;--c3:#eda100;--c4:#8a5fd6}\n\
@media (prefers-color-scheme:dark){:root{--bg:#1a1a19;--ink:#ebedea;--ink2:#b0b6b2;\
--muted:#808682;--line:#34373a;--c0:#3987e5;--c1:#d95926;--c2:#199e70;--c3:#c98500;--c4:#9a74e8}}\n\
body{font:14px/1.5 system-ui,-apple-system,'Segoe UI',sans-serif;background:var(--bg);\
color:var(--ink);max-width:980px;margin:2rem auto;padding:0 1rem}\n\
h1{font-size:1.5rem}h2{font-size:1.15rem;margin-top:2.2rem;border-top:1px solid var(--line);\
padding-top:1.2rem}\n\
a{color:var(--c0)}code{font-family:ui-monospace,monospace;font-size:.92em}\n\
.meta,.prov{font-size:12px;color:var(--ink2)}\n\
.toc{columns:3;font-size:13px;margin:1rem 0;padding-left:1.2rem}\n\
table{border-collapse:collapse;margin:.8rem 0;font-variant-numeric:tabular-nums}\n\
th,td{padding:.22rem .6rem;border-bottom:1px solid var(--line);text-align:right;font-size:13px}\n\
th{color:var(--ink2);font-weight:600}th:first-child,td:first-child{text-align:left}\n\
.legend{font-size:12px;color:var(--ink2);margin:.4rem 0}\n\
.sw{display:inline-block;width:10px;height:10px;border-radius:2px;margin:0 4px 0 12px;\
vertical-align:-1px}\n\
.sw0{background:var(--c0)}.sw1{background:var(--c1)}.sw2{background:var(--c2)}\
.sw3{background:var(--c3)}.sw4{background:var(--c4)}\n\
svg{width:100%;height:auto;margin:.4rem 0}\n\
.c0{fill:var(--c0)}.c1{fill:var(--c1)}.c2{fill:var(--c2)}.c3{fill:var(--c3)}.c4{fill:var(--c4)}\n\
.grid{stroke:var(--line);stroke-width:1}.axis{stroke:var(--muted);stroke-width:1}\n\
.wh{stroke:var(--ink2);stroke-width:1.5}\n\
.rl,.val,.tick,.unit{font:11px system-ui,sans-serif;fill:var(--ink2)}\n\
.val{fill:var(--ink)}\n\
footer{margin:3rem 0 1rem;font-size:12px;color:var(--muted);border-top:1px solid var(--line);\
padding-top:1rem}\n";

fn provenance_html(e: &ExpStats, store_prefix: &str) -> String {
    let mut s = String::from("<p class=\"prov\">Provenance: ");
    let parts: Vec<String> = e
        .provenance
        .iter()
        .map(|run| {
            let m = &run.manifest;
            let short = |h: &str| h.chars().take(12).collect::<String>();
            let link = format!(
                "<a href=\"{}objects/{}.json\"><code>{}</code></a>",
                esc(store_prefix),
                esc(&run.entry.manifest),
                short(&run.entry.manifest)
            );
            if m.migrated {
                format!("seed {} · manifest {} · migrated (pre-store artifact)", run.entry.seed, link)
            } else {
                format!(
                    "seed {} · manifest {} · commit <code>{}</code> · config <code>{}</code> · \
                     host_cpus {} · {}",
                    run.entry.seed,
                    link,
                    esc(&short(&m.git_commit)),
                    esc(&short(&m.config_hash)),
                    m.host.host_cpus,
                    esc(&iso_utc(m.timestamp))
                )
            }
        })
        .collect();
    s.push_str(&parts.join("<br>"));
    s.push_str("</p>\n");
    s
}

fn anchor(e: &ExpStats) -> String {
    format!("{}-{}-{}", e.id, e.scale, e.procs)
}

/// Render the full HTML report. `store_prefix` is the (URL-style, trailing
/// slash or empty) path from the HTML file to the store root, used for
/// provenance links.
pub fn render_html(stats: &[ExpStats], meta: &ReportMeta, store_prefix: &str) -> String {
    let newest = stats
        .iter()
        .flat_map(|e| e.provenance.iter().map(|p| p.manifest.timestamp))
        .max()
        .unwrap_or(0);
    let mut h = String::new();
    h.push_str("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    h.push_str("<meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">\n");
    h.push_str("<title>LRC for hardware-coherent multiprocessors — experiment report</title>\n");
    h.push_str(&format!("<style>\n{CSS}</style>\n</head>\n<body>\n"));
    h.push_str("<h1>Lazy release consistency — experiment report</h1>\n");
    h.push_str(&format!(
        "<p class=\"meta\">lrc-exp v{} · store <code>{}</code> · {} experiment group(s) · \
         baseline <code>{}</code> · newest run {}</p>\n",
        esc(&meta.tool_version),
        esc(&meta.store_label),
        stats.len(),
        esc(&meta.baseline),
        esc(&iso_utc(newest))
    ));
    h.push_str(
        "<p class=\"meta\">Reproduction of Keleher et&nbsp;al.'s protocol study per \
         Kontothanassis, Scott &amp; Bianchini (SC&nbsp;'95): every table and figure \
         regenerated from the content-addressed artifact store, with 95% bootstrap \
         confidence intervals across input seeds and Holm-adjusted significance vs the \
         baseline protocol. Verify staleness with <code>lrc-exp report --check</code>.</p>\n",
    );
    h.push_str("<ul class=\"toc\">\n");
    for e in stats {
        h.push_str(&format!(
            "<li><a href=\"#{}\">{} ({}, {}p)</a></li>\n",
            esc(&anchor(e)),
            esc(&e.id),
            esc(&e.scale),
            e.procs
        ));
    }
    h.push_str("</ul>\n");

    for e in stats {
        h.push_str(&format!(
            "<h2 id=\"{}\">{} — {}</h2>\n",
            esc(&anchor(e)),
            esc(&e.id),
            esc(&e.title)
        ));
        let seeds: Vec<String> = e.seeds.iter().map(u64::to_string).collect();
        h.push_str(&format!(
            "<p class=\"meta\">scale {} · {} procs · seeds [{}]{}</p>\n",
            esc(&e.scale),
            e.procs,
            seeds.join(", "),
            if e.unit.is_empty() { String::new() } else { format!(" · unit: {}", esc(e.unit)) }
        ));
        // Legend whenever ≥2 series carry identity.
        if e.series.len() >= 2 {
            let colors = color_indices(&e.series);
            h.push_str("<p class=\"legend\">");
            for (si, ser) in e.series.iter().enumerate() {
                h.push_str(&format!(
                    "<span class=\"sw sw{}\"></span>{}",
                    colors[si % 5].min(4),
                    esc(ser)
                ));
            }
            h.push_str("</p>\n");
        }
        if let Some(svg) = svg_chart(e) {
            h.push_str(&svg);
        }
        // Full data table (the accessible view; always present).
        if !e.rows.is_empty() {
            h.push_str("<table>\n<tr><th>row</th>");
            for ser in &e.series {
                h.push_str(&format!("<th>{}</th>", esc(ser)));
            }
            h.push_str("</tr>\n");
            for row in &e.rows {
                h.push_str(&format!("<tr><td>{}</td>", esc(row)));
                for ser in &e.series {
                    match e.cell(row, ser) {
                        Some(c) if c.summary.n >= 2 => h.push_str(&format!(
                            "<td>{} [{}, {}]</td>",
                            esc(&fmt_val(c.summary.mean)),
                            esc(&fmt_val(c.summary.ci_lo)),
                            esc(&fmt_val(c.summary.ci_hi))
                        )),
                        Some(c) => {
                            h.push_str(&format!("<td>{}</td>", esc(&fmt_val(c.summary.mean))))
                        }
                        None => h.push_str("<td>—</td>"),
                    }
                }
                h.push_str("</tr>\n");
            }
            h.push_str("</table>\n");
        } else {
            h.push_str("<p class=\"meta\">No comparable numeric metrics; see the stored \
                        artifact for the full payload.</p>\n");
        }
        // Effects vs baseline.
        if !e.effects.is_empty() {
            h.push_str(&format!(
                "<table>\n<tr><th>row</th><th>series</th><th>Δ vs {}</th><th>rel</th>\
                 <th>Cohen d</th><th>p</th><th>p (Holm)</th></tr>\n",
                esc(e.baseline.as_deref().unwrap_or("baseline"))
            ));
            for ec in &e.effects {
                h.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:+.1}%</td><td>{:.2}</td>\
                     <td>{}</td><td>{}</td></tr>\n",
                    esc(&ec.row),
                    esc(&ec.series),
                    esc(&fmt_val(ec.effect.delta)),
                    ec.effect.rel * 100.0,
                    ec.effect.d.clamp(-99.99, 99.99),
                    esc(&fmt_p(ec.effect.p)),
                    esc(&fmt_p(ec.effect.p_adjusted))
                ));
            }
            h.push_str("</table>\n");
        }
        h.push_str(&provenance_html(e, store_prefix));
    }

    h.push_str(&format!(
        "<footer>Generated by <code>lrc-exp report</code> v{} from <code>{}</code>. \
         Regeneration commands per experiment: see EXPERIMENTS.md \
         (<code>lrc-exp report --index-md</code>).</footer>\n",
        esc(&meta.tool_version),
        esc(&meta.store_label)
    ));
    h.push_str("</body>\n</html>\n");
    h
}

/// Machine-readable companion of the HTML report (schema
/// [`REPORT_SCHEMA`]).
pub fn report_json(stats: &[ExpStats], meta: &ReportMeta) -> Value {
    let experiments: Vec<Value> = stats
        .iter()
        .map(|e| {
            let cells: Vec<Value> = e
                .cells
                .iter()
                .map(|c| {
                    json!({
                        "row": c.row.clone(),
                        "series": c.series.clone(),
                        "values": c.values.clone(),
                        "n": c.summary.n as u64,
                        "mean": c.summary.mean,
                        "median": c.summary.median,
                        "sd": c.summary.sd,
                        "ci_lo": c.summary.ci_lo,
                        "ci_hi": c.summary.ci_hi,
                    })
                })
                .collect();
            let effects: Vec<Value> = e
                .effects
                .iter()
                .map(|ec| {
                    json!({
                        "row": ec.row.clone(),
                        "series": ec.series.clone(),
                        "delta": ec.effect.delta,
                        "rel": ec.effect.rel,
                        "d": ec.effect.d,
                        "p": ec.effect.p,
                        "p_holm": ec.effect.p_adjusted,
                    })
                })
                .collect();
            let provenance: Vec<Value> = e
                .provenance
                .iter()
                .map(|run| {
                    json!({
                        "seed": run.entry.seed,
                        "artifact": run.entry.artifact.clone(),
                        "manifest": run.entry.manifest.clone(),
                        "config_hash": run.manifest.config_hash.clone(),
                        "git_commit": run.manifest.git_commit.clone(),
                        "timestamp": run.manifest.timestamp,
                        "host_cpus": run.manifest.host.host_cpus,
                        "migrated": run.manifest.migrated,
                    })
                })
                .collect();
            json!({
                "id": e.id.clone(),
                "title": e.title.clone(),
                "scale": e.scale.clone(),
                "procs": e.procs,
                "unit": e.unit,
                "seeds": e.seeds.clone(),
                "rows": e.rows.clone(),
                "series": e.series.clone(),
                "baseline": match &e.baseline {
                    Some(b) => Value::Str(b.clone()),
                    None => Value::Null,
                },
                "cells": cells,
                "effects": effects,
                "provenance": provenance,
            })
        })
        .collect();
    json!({
        "schema": REPORT_SCHEMA,
        "tool_version": meta.tool_version.clone(),
        "store": meta.store_label.clone(),
        "baseline": meta.baseline.clone(),
        "experiments": experiments,
    })
}

// ============================================================================
// EXPERIMENTS.md regeneration index.
// ============================================================================

const INDEX_HEADING: &str = "## Per-experiment regeneration index";

/// `(id, regenerate command, bench target)` for every artifact the repo
/// tracks — the 18 `lrc-exp` experiments plus the bench/soak extras.
const REGEN_ROWS: [(&str, &str, &str); 21] = [
    ("table1", "`lrc-exp -- table1 --store results/store`", "`table1_config`"),
    ("table2", "`lrc-exp -- table2 --scale paper --store results/store`", "`table2_classification`"),
    ("table3", "`lrc-exp -- table3 --scale paper --store results/store`", "`table3_missrates`"),
    ("fig4", "`lrc-exp -- fig4 --scale paper --store results/store`", "`fig4_exec_time`"),
    ("fig5", "`lrc-exp -- fig5 --scale paper --store results/store`", "`fig5_overheads`"),
    ("fig6", "`lrc-exp -- fig6 --scale paper --store results/store`", "`fig6_lazy_ext`"),
    ("fig7", "`lrc-exp -- fig7 --scale paper --store results/store`", "`fig7_lazy_ext_overheads`"),
    ("fig8", "`lrc-exp -- fig8 --scale paper --store results/store`", "`fig8_future`"),
    ("fig9", "`lrc-exp -- fig9 --scale paper --store results/store`", "`fig9_future_overheads`"),
    ("sweep", "`lrc-exp -- sweep --scale paper --store results/store`", "`sweep_sensitivity`"),
    ("quality", "`lrc-exp -- quality --scale paper --store results/store`", "`quality_mp3d`"),
    ("traffic", "`lrc-exp -- traffic --scale paper --store results/store`", "—"),
    ("scaling", "`lrc-exp -- scaling --scale small --store results/store`", "—"),
    ("ablate", "`lrc-exp -- ablate --scale small --procs 16 --store results/store`", "—"),
    ("fences", "`lrc-exp -- fences --scale small --procs 16 --store results/store`", "—"),
    ("mesh256", "`lrc-bench run --threads 1,2,4,8 --mesh256`", "—"),
    ("capacity", "`lrc-soak --capacity-sweep`", "—"),
    ("observe", "`lrc-exp -- observe --scale tiny --procs 8 --trace-dir DIR --store results/store`", "—"),
    ("diverge", "`lrc-exp -- diverge --scale tiny --procs 8 --store results/store`", "—"),
    ("avail", "`lrc-exp -- avail --scale tiny --procs 8 --store results/store`", "—"),
    ("availability", "`lrc-soak --availability`", "—"),
];

/// The regeneration-index markdown section (heading included), as emitted
/// by `lrc-exp report --index-md`.
pub fn regeneration_index_md() -> String {
    let mut s = format!("{INDEX_HEADING}\n\n| id | regenerate | bench target |\n|---|---|---|\n");
    for (id, cmd, bench) in REGEN_ROWS {
        s.push_str(&format!("| {id} | {cmd} | {bench} |\n"));
    }
    s.push_str(
        "\nMulti-seed statistics: add `--seeds N` to any `lrc-exp` command to run seeds \
         `0..N` into the store; `lrc-exp report` then reports mean, 95% bootstrap CI and \
         Holm-adjusted effects vs the baseline protocol across seeds. Verify stored \
         artifacts against the current code with `lrc-exp report --check`.\n",
    );
    s
}

/// Splice the regeneration index into an existing EXPERIMENTS.md body:
/// replaces from the index heading to end-of-file, or appends the section
/// if the heading is absent.
pub fn splice_index_md(existing: &str) -> String {
    match existing.find(INDEX_HEADING) {
        Some(pos) => format!("{}{}", &existing[..pos], regeneration_index_md()),
        None => {
            let mut s = existing.trim_end().to_string();
            if !s.is_empty() {
                s.push_str("\n\n");
            }
            s.push_str(&regeneration_index_md());
            s
        }
    }
}

#[cfg(test)]
mod paper_tests {
    use super::*;
    use lrc_json::parse;

    fn fake_artifact(id: &str, payload: Value) -> Value {
        json!({"id": id, "title": format!("{id} title"), "text": "t", "json": payload})
    }

    #[test]
    fn table3_metrics_extract_per_protocol() {
        let a = fake_artifact(
            "table3",
            json!({"rows": [{"app": "mp3d", "measured": [10.0, 6.0, 5.5], "paper": [0,0,0]}]}),
        );
        let ms = metrics("table3", &a);
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0], m("mp3d", "eager", 10.0));
        assert_eq!(ms[2], m("mp3d", "lazy-ext", 5.5));
    }

    #[test]
    fn fig4_metrics_follow_protocol_list() {
        let a = fake_artifact(
            "fig4",
            json!({"rows": [{"app": "fft", "sc_cycles": 100, "protocols": ["sc", "lazy"],
                             "normalized": [1.0, 0.8]}]}),
        );
        let ms = metrics("fig4", &a);
        assert_eq!(ms, vec![m("fft", "sc", 1.0), m("fft", "lazy", 0.8)]);
    }

    #[test]
    fn unknown_or_config_ids_have_no_metrics() {
        let a = fake_artifact("table1", json!({"anything": 1}));
        assert!(metrics("table1", &a).is_empty());
        assert!(metrics("nonsense", &a).is_empty());
    }

    #[test]
    fn color_indices_pin_protocols_and_fill_rest() {
        let series: Vec<String> =
            ["lazy", "eager", "divergence"].iter().map(|s| s.to_string()).collect();
        assert_eq!(color_indices(&series), vec![2, 1, 0]);
        let classes: Vec<String> =
            ["cold", "true-share", "false-share"].iter().map(|s| s.to_string()).collect();
        assert_eq!(color_indices(&classes), vec![0, 1, 2]);
    }

    #[test]
    fn iso_utc_converts_known_date() {
        // 2026-08-09 14:30:00 UTC
        assert_eq!(iso_utc(1_786_285_800), "2026-08-09 14:30 UTC");
        assert_eq!(iso_utc(0), "—");
    }

    #[test]
    fn index_md_splices_over_old_section() {
        let old = "# Doc\n\nbody\n\n## Per-experiment regeneration index\n\n| stale |\n";
        let new = splice_index_md(old);
        assert!(new.starts_with("# Doc\n\nbody\n\n## Per-experiment regeneration index"));
        assert!(!new.contains("| stale |"));
        assert!(new.contains("| fences |"));
        assert!(new.contains("--seeds N"));
        // Appending to a doc without the heading adds the section once.
        let appended = splice_index_md("# Fresh\n");
        assert_eq!(appended.matches(INDEX_HEADING).count(), 1);
    }

    #[test]
    fn report_json_is_parseable_and_tagged() {
        let meta = ReportMeta {
            tool_version: "0.0.0".into(),
            store_label: "s".into(),
            baseline: "eager".into(),
        };
        let v = report_json(&[], &meta);
        assert_eq!(v["schema"].as_str(), Some(REPORT_SCHEMA));
        parse(&v.dump()).expect("valid json");
    }
}

//! Run management: build-and-run of (protocol × workload) combinations,
//! with a thread pool for independent runs and a memo so `all` doesn't
//! repeat shared combinations across experiments.

use lrc_core::{Machine, RunResult};
use lrc_sim::{MachineConfig, Protocol};
use lrc_workloads::{Scale, WorkloadKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Everything identifying one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Application.
    pub workload: WorkloadKind,
    /// Input size.
    pub scale: Scale,
    /// Processor count.
    pub procs: usize,
    /// Enable the miss classifier (Table 2 runs).
    pub classify: bool,
    /// Workload input seed (0 = canonical, the golden-fingerprint input).
    pub seed: u64,
    /// Machine configuration override (None = Table-1 defaults).
    pub config: Option<MachineConfig>,
}

impl RunSpec {
    /// Table-1 machine, no classification, canonical seed.
    pub fn new(protocol: Protocol, workload: WorkloadKind, scale: Scale, procs: usize) -> Self {
        RunSpec { protocol, workload, scale, procs, classify: false, seed: 0, config: None }
    }

    /// The same spec with a different workload input seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The effective machine configuration.
    pub fn machine_config(&self) -> MachineConfig {
        self.config.clone().unwrap_or_else(|| MachineConfig::paper_default(self.procs))
    }

    fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{:?}",
            self.protocol,
            self.workload,
            self.scale.name(),
            self.procs,
            self.classify,
            self.seed,
            self.config
        )
    }
}

/// Execute one run synchronously.
pub fn execute(spec: &RunSpec) -> RunResult {
    let w = spec.workload.build_seeded(spec.procs, spec.scale, spec.seed);
    let mut m = Machine::new(spec.machine_config(), spec.protocol)
        .with_max_cycles(200_000_000_000);
    if spec.classify {
        m = m.with_classification();
    }
    m.run(w)
}

/// Execute one run on the sharded parallel engine with `threads` workers
/// (`threads <= 1` runs the sequential kernel directly). Results are
/// bit-identical to [`execute`] by construction; a configuration the
/// sharded engine cannot take (e.g. classification on) falls back to the
/// sequential kernel inside `try_run_sharded` itself.
///
/// # Panics
///
/// Panics with the structured diagnosis if the machine wedges — a benchmark
/// run has no business stalling.
pub fn execute_sharded(spec: &RunSpec, threads: usize) -> RunResult {
    if threads <= 1 {
        return execute(spec);
    }
    let spec = spec.clone();
    let build = {
        let spec = spec.clone();
        move || {
            let mut m = Machine::new(spec.machine_config(), spec.protocol)
                .with_max_cycles(200_000_000_000);
            if spec.classify {
                m = m.with_classification();
            }
            m
        }
    };
    let workload = {
        let spec = spec.clone();
        move || spec.workload.build_seeded(spec.procs, spec.scale, spec.seed)
    };
    lrc_core::try_run_sharded(&build, &workload, &lrc_core::ParallelOptions::threads(threads))
        .unwrap_or_else(|diag| {
            panic!("{} / {} stalled under {threads} threads: {diag}", spec.workload, spec.protocol)
        })
}

/// A memoizing parallel runner.
pub struct Runner {
    cache: Arc<Mutex<HashMap<String, Arc<RunResult>>>>,
    threads: usize,
    verbose: bool,
}

impl Runner {
    /// Runner using up to `threads` worker threads (0 = available
    /// parallelism).
    pub fn new(threads: usize, verbose: bool) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            threads
        };
        Runner { cache: Arc::new(Mutex::new(HashMap::new())), threads, verbose }
    }

    /// Lock the memo, recovering from poisoning: a cache entry is only
    /// inserted complete, so even a lock poisoned by a panicking worker
    /// holds nothing half-written and stays usable.
    fn lock_cache(cache: &Mutex<HashMap<String, Arc<RunResult>>>) -> MutexGuard<'_, HashMap<String, Arc<RunResult>>> {
        cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Run all `specs` (possibly in parallel), returning results in order.
    /// Previously executed specs are served from the memo.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<Arc<RunResult>> {
        // Collect the specs that still need running.
        let todo: Vec<(usize, RunSpec)> = {
            let cache = Self::lock_cache(&self.cache);
            specs
                .iter()
                .enumerate()
                .filter(|(_, s)| !cache.contains_key(&s.key()))
                .map(|(i, s)| (i, s.clone()))
                .collect()
        };

        if !todo.is_empty() {
            let next = Arc::new(Mutex::new(0usize));
            let todo = Arc::new(todo);
            std::thread::scope(|scope| {
                for _ in 0..self.threads.min(todo.len()) {
                    let next = next.clone();
                    let todo = todo.clone();
                    let cache = self.cache.clone();
                    let verbose = self.verbose;
                    scope.spawn(move || loop {
                        let i = {
                            let mut n = next.lock().unwrap();
                            if *n >= todo.len() {
                                return;
                            }
                            let i = *n;
                            *n += 1;
                            i
                        };
                        let (_, spec) = &todo[i];
                        if verbose {
                            eprintln!(
                                "  running {} / {} ({}, {} procs)...",
                                spec.workload,
                                spec.protocol,
                                spec.scale.name(),
                                spec.procs
                            );
                        }
                        let started = std::time::Instant::now();
                        let result = Arc::new(execute(spec));
                        if verbose {
                            // Queue depth is tracked per shard: report the
                            // hottest shard's high-water mark and, for
                            // sharded runs, the total footprint across all
                            // shards (a single shard's sum equals its max).
                            let peaks = &result.peak_queue_depths;
                            let peak_sum: usize = peaks.iter().sum();
                            let peak_max = peaks.iter().copied().max().unwrap_or(0);
                            let depth = if peaks.len() > 1 {
                                format!(
                                    "peak queue depth {peak_max} (hottest of {} shards, {peak_sum} total)",
                                    peaks.len()
                                )
                            } else {
                                format!("peak queue depth {peak_max}")
                            };
                            eprintln!(
                                "  done    {} / {}: {} cycles in {:.1?} \
                                 ({:.2} Mevents/s, {depth})",
                                spec.workload,
                                spec.protocol,
                                result.stats.total_cycles,
                                started.elapsed(),
                                result.events as f64
                                    / result.sim_wall_secs.max(1e-9)
                                    / 1e6,
                            );
                        }
                        Self::lock_cache(&cache).insert(spec.key(), result);
                    });
                }
            });
        }

        // Serve results in request order. A spec can be absent only if a
        // worker died before memoizing it; rather than panicking on the
        // whole batch, fall back to running the stragglers synchronously.
        let mut out = Vec::with_capacity(specs.len());
        for s in specs {
            let cached = Self::lock_cache(&self.cache).get(&s.key()).cloned();
            out.push(cached.unwrap_or_else(|| {
                let r = Arc::new(execute(s));
                Self::lock_cache(&self.cache).insert(s.key(), r.clone());
                r
            }));
        }
        out
    }

    /// Run a single spec (memoized).
    pub fn run_one(&self, spec: &RunSpec) -> Arc<RunResult> {
        self.run_all(std::slice::from_ref(spec))
            .pop()
            .unwrap_or_else(|| Arc::new(execute(spec)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_returns_identical_results() {
        let r = Runner::new(2, false);
        let spec = RunSpec::new(Protocol::Erc, WorkloadKind::Fft, Scale::Tiny, 4);
        let a = r.run_one(&spec);
        let b = r.run_one(&spec);
        assert!(Arc::ptr_eq(&a, &b), "second run must come from the memo");
    }

    #[test]
    fn parallel_runs_preserve_order() {
        let r = Runner::new(4, false);
        let specs: Vec<RunSpec> = [Protocol::Sc, Protocol::Erc, Protocol::Lrc, Protocol::LrcExt]
            .iter()
            .map(|&p| RunSpec::new(p, WorkloadKind::Mp3d, Scale::Tiny, 4))
            .collect();
        let results = r.run_all(&specs);
        assert_eq!(results.len(), 4);
        for (res, spec) in results.iter().zip(&specs) {
            assert_eq!(res.protocol, spec.protocol);
            assert_eq!(res.workload, spec.workload.name());
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let spec = RunSpec::new(Protocol::Lrc, WorkloadKind::Cholesky, Scale::Tiny, 4);
        let a = Runner::new(1, false).run_one(&spec);
        let b = Runner::new(3, false).run_one(&spec);
        assert_eq!(a.stats.total_cycles, b.stats.total_cycles);
    }
}

//! Provenance invariants: the configuration hash must depend on the
//! *content* of params/config, never on field insertion order — and the
//! store must round-trip artifacts by canonical content hash.

use lrc_exp::{config_hash, IndexEntry, RunManifest, Store};
use lrc_json::{json, Value};

/// Every rotation of an object's field list is the same object.
fn rotations(v: &Value) -> Vec<Value> {
    let Value::Object(fields) = v else { return vec![v.clone()] };
    (0..fields.len().max(1))
        .map(|r| {
            let mut rotated = fields.clone();
            rotated.rotate_left(r);
            Value::Object(rotated)
        })
        .collect()
}

#[test]
fn config_hash_is_invariant_under_field_reordering() {
    let params = json!({ "scale": "paper", "procs": 64, "seed": 3 });
    let config = json!({
        "cache_kb": 128,
        "line_bytes": 128,
        "mesh": { "width": 8, "height": 8 },
        "latencies": { "mem": 20, "net_hop": 2 },
    });
    let reference = config_hash("fig4", &params, &config);
    for p in rotations(&params) {
        for c in rotations(&config) {
            assert_eq!(
                config_hash("fig4", &p, &c),
                reference,
                "hash depends on field order\nparams: {}\nconfig: {}",
                p.dump(),
                c.dump()
            );
        }
    }
    // And it must NOT be invariant under content changes.
    let other = json!({ "scale": "paper", "procs": 32, "seed": 3 });
    assert_ne!(config_hash("fig4", &other, &config), reference);
    assert_ne!(config_hash("fig5", &params, &config), reference);
}

#[test]
fn store_round_trips_artifacts_and_manifests() {
    let root = std::env::temp_dir().join(format!("lrc-exp-prov-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Store::open(&root).expect("open store");

    let artifact = json!({ "id": "fig4", "title": "t", "text": "x", "json": { "rows": [] } });
    let hash = store.put(&artifact).expect("put artifact");
    // Idempotent: same content, same name, no error.
    assert_eq!(store.put(&artifact).expect("re-put"), hash);
    // Insertion order must not change the address.
    let reordered = json!({ "title": "t", "id": "fig4", "json": { "rows": [] }, "text": "x" });
    assert_eq!(store.put(&reordered).expect("put reordered"), hash);

    let params = json!({ "scale": "tiny", "procs": 8, "seed": 0 });
    let manifest = RunManifest::new("fig4", params, json!({ "procs": 8 }), &hash, 1_754_700_000);
    let mhash = store.put(&lrc_json::ToJson::to_json(&manifest)).expect("put manifest");
    store
        .record(IndexEntry {
            experiment: "fig4".into(),
            scale: "tiny".into(),
            procs: 8,
            seed: 0,
            config_hash: manifest.config_hash.clone(),
            artifact: hash.clone(),
            manifest: mhash,
            migrated: false,
            timestamp: 1_754_700_000,
        })
        .expect("record");

    let entries = store.entries().expect("entries");
    assert_eq!(entries.len(), 1);
    let back = store.manifest(&entries[0]).expect("manifest decodes");
    assert_eq!(back.experiment, "fig4");
    assert_eq!(back.config_hash, manifest.config_hash);
    let blob = store.get(&hash).expect("get artifact");
    assert_eq!(blob["id"].as_str(), Some("fig4"));

    let _ = std::fs::remove_dir_all(&root);
}

//! Smoke tests: every experiment id produces a well-formed report at tiny
//! scale, and the JSON payloads carry what EXPERIMENTS.md tooling expects.

use lrc_exp::{experiments, Params, Runner};
use lrc_workloads::Scale;

fn tiny() -> Params {
    Params { scale: Scale::Tiny, procs: 8, seed: 0 }
}

#[test]
fn every_experiment_id_runs_at_tiny_scale() {
    let runner = Runner::new(0, false);
    for id in experiments::ALL_IDS {
        let rep = experiments::run_by_id(id, &runner, tiny())
            .unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(rep.id, id);
        assert!(!rep.text.trim().is_empty(), "{id}: empty text");
        assert!(!rep.title.is_empty(), "{id}");
        // JSON must serialize and parse back.
        let s = rep.json.dump();
        assert!(s.len() > 2, "{id}");
        lrc_json::parse(&s).unwrap_or_else(|e| panic!("{id}: {e}"));
    }
}

#[test]
fn figure_reports_embed_bar_charts() {
    let runner = Runner::new(0, false);
    for id in ["fig4", "fig6", "fig8"] {
        let rep = experiments::run_by_id(id, &runner, tiny()).unwrap();
        assert!(
            rep.text.contains('█') && rep.text.contains('|'),
            "{id}: missing bar chart"
        );
    }
}

#[test]
fn table_reports_cite_paper_values() {
    let runner = Runner::new(0, false);
    for id in ["table2", "table3"] {
        let rep = experiments::run_by_id(id, &runner, tiny()).unwrap();
        // Paper values in parentheses next to measured ones.
        assert!(rep.text.contains('('), "{id}");
        let rows = rep.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 7, "{id}: one row per application");
        for row in rows {
            assert!(row["paper"].is_array(), "{id}");
            assert!(row["measured"].is_array(), "{id}");
        }
    }
}

#[test]
fn memoized_runner_reuses_runs_across_experiments() {
    let runner = Runner::new(0, false);
    let p = tiny();
    let a = experiments::run_by_id("fig4", &runner, p).unwrap();
    let b = experiments::run_by_id("fig5", &runner, p).unwrap();
    let fig4_rows = a.json["rows"].as_array().unwrap();
    assert_eq!(fig4_rows.len(), 7);
    let fig5_rows = b.json["rows"].as_array().unwrap();
    assert!(!fig5_rows.is_empty());
}

//! Exhaustive bounded exploration of protocol interleavings.
//!
//! The state space is a tree: at each state the pending events of the
//! machine's queue (`Machine::num_pending`) are the enabled transitions,
//! and firing the `n`-th (`Machine::step_choice`) yields a child state. A
//! *schedule* — the sequence of choice indices from the initial state —
//! identifies a path, and replaying a schedule on a fresh machine is fully
//! deterministic, which is what makes counterexamples reproducible and
//! minimizable.
//!
//! Exploration is depth-first with visited-state pruning on logical
//! fingerprints ([`Machine::fingerprint`] excludes times and statistics,
//! so two interleavings that converge to the same protocol state are
//! explored once). After every transition the safety oracle
//! ([`Machine::check_violations`]) runs; at every drained state the
//! liveness sweep ([`Machine::stuck_states`]) and the DRF ⇒ SC
//! final-memory comparison against `lrc_sim::refint` run.

use crate::scenario::Scenario;
use lrc_core::{CrashPlan, Fault, FaultPlan, Machine, StuckState, Violation};
use lrc_sim::refint::{self, RefError};
use lrc_sim::{Protocol, RaceReport, Script};
use std::collections::HashSet;

/// Machine-construction options shared by exploration, minimization
/// replays, and report rendering. A counterexample only reproduces on a
/// machine built with the same options it was found under.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildOpts {
    /// Arm the happens-before race detector.
    pub races: bool,
    /// Crash-timing choice point: kill node `.0` after exactly `.1`
    /// handled events, with instantaneous failure detection (see
    /// [`lrc_core::CrashPlan::kill_nth`]). Makes crash placement part of
    /// the explored schedule, so counterexamples pin the exact
    /// crash-vs-protocol interleaving.
    pub crash_nth: Option<(usize, u64)>,
}

impl BuildOpts {
    /// Options with only the race detector toggled.
    pub fn raced(races: bool) -> Self {
        BuildOpts { races, ..BuildOpts::default() }
    }
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Stop after visiting this many states (0 = unbounded / exhaustive).
    pub max_states: usize,
    /// Abandon paths longer than this many choices.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_states: 200_000, max_depth: 4_000 }
    }
}

/// What went wrong on one path.
#[derive(Debug, Clone)]
pub enum Failure {
    /// A coherence invariant broke mid-path.
    Safety(Vec<Violation>),
    /// The machine drained with work left undone.
    Liveness(Vec<StuckState>),
    /// The drained machine's final memory disagrees with the reference
    /// sequentially consistent execution.
    ValueMismatch(Vec<String>),
    /// Two nodes held unflushed writes to the same word at quiescence
    /// (only possible for racy programs — scenarios are DRF, so this is a
    /// protocol bug).
    WriteRace(Vec<(u64, usize)>),
    /// The happens-before race detector found unsynchronized conflicting
    /// accesses (race-enabled machines only). This is a property of the
    /// *program*, not the protocol: it voids the DRF ⇒ SC obligation, so
    /// the value checks are skipped on paths carrying this failure.
    HbRace(Vec<RaceReport>),
    /// The reference interpreter could not follow the machine's observed
    /// synchronization order.
    Reference(String),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Safety(vs) => {
                write!(f, "safety: ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            Failure::Liveness(ss) => {
                write!(f, "liveness: ")?;
                for (i, s) in ss.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            Failure::ValueMismatch(diffs) => {
                write!(f, "final memory differs from the reference SC execution: ")?;
                for (i, d) in diffs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            Failure::WriteRace(words) => {
                write!(f, "conflicting unflushed writes at quiescence: {words:?}")
            }
            Failure::HbRace(reports) => {
                write!(f, "data race: ")?;
                for (i, r) in reports.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}", r.render())?;
                }
                Ok(())
            }
            Failure::Reference(e) => write!(f, "reference interpreter: {e}"),
        }
    }
}

/// A failing path: the schedule that reproduces it plus what it violates.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Choice indices from the initial state (replay with
    /// [`replay_schedule`]; choices past the end default to 0).
    pub schedule: Vec<usize>,
    /// The violated property.
    pub failure: Failure,
}

/// Outcome of checking one (scenario, protocol, fault) combination.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// States visited (after pruning).
    pub states: usize,
    /// Drained (terminal) states reached.
    pub terminals: usize,
    /// Length of the longest explored path.
    pub max_depth_seen: usize,
    /// False when a limit stopped exploration before exhausting the space.
    pub complete: bool,
    /// The first counterexample found, if any (already minimized by the
    /// caller if requested).
    pub counterexample: Option<Counterexample>,
}

/// Build the machine for one checking run: value tracking on, watchdog off
/// (the checker bounds work by states, not cycles).
pub fn build_machine(scenario: &Scenario, protocol: Protocol, fault: Fault) -> Machine {
    let mut m = Machine::new(scenario.config(), protocol)
        .with_fault(fault)
        .with_value_tracking();
    m.prepare(Box::new(scenario.script()));
    m
}

/// Like [`build_machine`], with the happens-before race detector armed.
/// Detector state is part of [`Machine::fingerprint`], so exploration
/// never prunes a racy path into a clean one — at the cost of a larger
/// state space (vector clocks depend on lock-grant order, so converging
/// protocol states may carry diverging clocks).
pub fn build_machine_raced(scenario: &Scenario, protocol: Protocol, fault: Fault) -> Machine {
    build_machine_opts(scenario, protocol, fault, BuildOpts::raced(true))
}

/// [`build_machine`] honoring every [`BuildOpts`] knob. A `crash_nth`
/// option installs a crash-only fault plan (no link faults): the victim
/// dies after exactly that many handled events, every survivor detects it
/// instantly, and recovery runs inside the explored interleaving.
pub fn build_machine_opts(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    opts: BuildOpts,
) -> Machine {
    let mut m = Machine::new(scenario.config(), protocol)
        .with_fault(fault)
        .with_value_tracking();
    if opts.races {
        m = m.with_race_detection();
    }
    if let Some((node, n)) = opts.crash_nth {
        assert!(node < scenario.procs, "crash victim out of range");
        m = m.with_fault_plan(FaultPlan::off(0).with_crash(CrashPlan::kill_nth(node, n)));
    }
    m.prepare(Box::new(scenario.script()));
    m
}

/// Like [`build_machine`], but with a fault-injection `plan` installed on
/// the interconnect, so the checker drives the protocol *and* the
/// link-layer recovery machinery together. Deterministic plans
/// ([`FaultPlan::drop_nth`]) are the natural fit: exactly one chosen
/// message is lost, and stepping proves the retry layer recovers it — or
/// yields the schedule on which it does not.
pub fn build_machine_with_plan(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    plan: FaultPlan,
) -> Machine {
    let mut m = Machine::new(scenario.config(), protocol)
        .with_fault(fault)
        .with_fault_plan(plan)
        .with_value_tracking();
    m.prepare(Box::new(scenario.script()));
    m
}

/// Like [`build_machine`], but with the deterministic BUSY-NACK choice
/// point armed: the `nth` busy-directory encounter answers with a
/// retriable NACK instead of parking (see
/// [`lrc_core::Machine::with_nack_nth`]), and exploration then covers
/// every interleaving of the NACK reply and its backoff retry against the
/// rest of the protocol. Only the eager protocols park at a busy home, so
/// under the lazy protocols this is equivalent to [`build_machine`].
pub fn build_machine_nacked(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    nth: u64,
) -> Machine {
    let mut m = Machine::new(scenario.config(), protocol)
        .with_fault(fault)
        .with_nack_nth(nth)
        .with_value_tracking();
    m.prepare(Box::new(scenario.script()));
    m
}

/// Check every property of a drained machine: liveness residue, write
/// races, and final memory against the reference SC interpreter. Public so
/// fault-recovery tests and harnesses can apply the same oracle to
/// machines they stepped themselves.
pub fn terminal_failure(m: &Machine, script: &Script) -> Option<Failure> {
    let stuck = m.stuck_states();
    if !stuck.is_empty() {
        return Some(Failure::Liveness(stuck));
    }
    // A crash-stop death loses the victim's remaining script and possibly
    // its dirty lines (typed data loss, by design), so the final memory
    // cannot be expected to match a full reference execution. Liveness
    // above is the crash run's oracle: survivors must still complete.
    if m.crash_occurred() {
        return None;
    }
    // The detector's verdict gates everything downstream: DRF ⇒ SC is an
    // implication, and a racy program voids its premise — write-overlay
    // conflicts and reference-memory divergence are then properties of the
    // program, not protocol bugs. Detector-off machines keep the historical
    // behavior of trusting the scenario library's DRF promise.
    if let Some(rs) = m.race_stats() {
        if !rs.race_free() {
            return Some(Failure::HbRace(rs.reports.clone()));
        }
    }
    let (mem, conflicts) = m.final_memory().expect("value tracking enabled");
    if !conflicts.is_empty() {
        return Some(Failure::WriteRace(conflicts));
    }
    let cfg = m.config();
    match refint::interpret(script, cfg.line_size, cfg.word_size, m.grant_log()) {
        Ok(ref_mem) => {
            if mem == ref_mem {
                None
            } else {
                let mut diffs = Vec::new();
                for (k, v) in &ref_mem {
                    match mem.get(k) {
                        Some(got) if got == v => {}
                        Some(got) => diffs.push(format!(
                            "line {} word {}: machine has P{}#{}, reference has P{}#{}",
                            k.0, k.1, got.proc, got.seq, v.proc, v.seq
                        )),
                        None => diffs.push(format!(
                            "line {} word {}: machine lost P{}#{}",
                            k.0, k.1, v.proc, v.seq
                        )),
                    }
                }
                for (k, got) in &mem {
                    if !ref_mem.contains_key(k) {
                        diffs.push(format!(
                            "line {} word {}: machine invented P{}#{}",
                            k.0, k.1, got.proc, got.seq
                        ));
                    }
                }
                Some(Failure::ValueMismatch(diffs))
            }
        }
        Err(e @ (RefError::GrantOrderMismatch { .. } | RefError::Stuck { .. })) => {
            Some(Failure::Reference(e.to_string()))
        }
    }
}

/// Exhaustively explore `scenario` under `protocol` (with `fault`
/// injected), depth-first with fingerprint pruning, stopping at the first
/// counterexample or when `limits` cut the search off.
pub fn check(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    limits: Limits,
) -> CheckReport {
    check_root(build_machine(scenario, protocol, fault), scenario, limits)
}

/// [`check`] with the happens-before race detector armed: a detected race
/// is a first-class counterexample ([`Failure::HbRace`]), and the DRF ⇒ SC
/// value comparison only applies to paths the detector certifies
/// race-free.
pub fn check_raced(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    limits: Limits,
) -> CheckReport {
    check_root(build_machine_raced(scenario, protocol, fault), scenario, limits)
}

/// [`check`] with the `nth` BUSY-NACK choice point armed (see
/// [`build_machine_nacked`]): explores the NACK/backoff-retry machinery
/// against every interleaving of the rest of the protocol.
pub fn check_nacked(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    nth: u64,
    limits: Limits,
) -> CheckReport {
    check_root(build_machine_nacked(scenario, protocol, fault, nth), scenario, limits)
}

/// [`check`] honoring every [`BuildOpts`] knob (see
/// [`build_machine_opts`]). With `crash_nth` set, the explored tree
/// contains the crash, detection, and recovery; surviving processors must
/// still drain to a clean (crash-degraded) quiescent state on every
/// interleaving.
pub fn check_opts(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    opts: BuildOpts,
    limits: Limits,
) -> CheckReport {
    check_root(build_machine_opts(scenario, protocol, fault, opts), scenario, limits)
}

fn check_root(root: Machine, scenario: &Scenario, limits: Limits) -> CheckReport {
    let script = scenario.script();
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(root.fingerprint());
    let mut stack: Vec<(Machine, Vec<usize>)> = vec![(root, Vec::new())];

    let mut report = CheckReport {
        states: 0,
        terminals: 0,
        max_depth_seen: 0,
        complete: true,
        counterexample: None,
    };

    while let Some((m, schedule)) = stack.pop() {
        report.states += 1;
        report.max_depth_seen = report.max_depth_seen.max(schedule.len());
        if limits.max_states != 0 && report.states > limits.max_states {
            report.complete = false;
            break;
        }

        let violations = m.check_violations();
        if !violations.is_empty() {
            report.counterexample =
                Some(Counterexample { schedule, failure: Failure::Safety(violations) });
            return report;
        }

        let pending = m.num_pending();
        if pending == 0 {
            report.terminals += 1;
            if let Some(failure) = terminal_failure(&m, &script) {
                report.counterexample = Some(Counterexample { schedule, failure });
                return report;
            }
            continue;
        }

        if schedule.len() >= limits.max_depth {
            report.complete = false;
            continue;
        }

        // Push children in reverse so choice 0 (the natural event order)
        // is explored first.
        for n in (0..pending).rev() {
            let mut child = m.clone();
            let fired = child.step_choice(n);
            debug_assert!(fired);
            if visited.insert(child.fingerprint()) {
                let mut s = schedule.clone();
                s.push(n);
                stack.push((child, s));
            }
        }
    }
    report
}

/// Deterministically replay a schedule from a fresh machine: choice `i`
/// fires event `schedule[i]` (clamped to the pending count); choices past
/// the end fire event 0, so a truncated schedule continues with the
/// natural event order until the machine drains. Returns the failure the
/// path exhibits, if any, and the machine in its end state.
pub fn replay_schedule(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    schedule: &[usize],
    max_steps: usize,
) -> (Option<Failure>, Machine) {
    replay_on(build_machine(scenario, protocol, fault), scenario, schedule, max_steps)
}

/// [`replay_schedule`] on a race-detecting machine — required to reproduce
/// and minimize [`Failure::HbRace`] counterexamples.
pub fn replay_schedule_raced(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    schedule: &[usize],
    max_steps: usize,
) -> (Option<Failure>, Machine) {
    replay_on(build_machine_raced(scenario, protocol, fault), scenario, schedule, max_steps)
}

/// [`replay_schedule`] on a machine built with the given [`BuildOpts`] —
/// required to reproduce counterexamples found under those options.
pub fn replay_schedule_opts(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    opts: BuildOpts,
    schedule: &[usize],
    max_steps: usize,
) -> (Option<Failure>, Machine) {
    replay_on(build_machine_opts(scenario, protocol, fault, opts), scenario, schedule, max_steps)
}

fn replay_on(
    mut m: Machine,
    scenario: &Scenario,
    schedule: &[usize],
    max_steps: usize,
) -> (Option<Failure>, Machine) {
    let script = scenario.script();
    let mut step = 0usize;
    while m.num_pending() > 0 && step < max_steps {
        let want = schedule.get(step).copied().unwrap_or(0);
        let n = want.min(m.num_pending() - 1);
        m.step_choice(n);
        step += 1;
        let violations = m.check_violations();
        if !violations.is_empty() {
            return (Some(Failure::Safety(violations)), m);
        }
    }
    if m.num_pending() > 0 {
        // Ran out of steps — not a verdict; the minimizer treats this as
        // "does not fail".
        return (None, m);
    }
    (terminal_failure(&m, &script), m)
}

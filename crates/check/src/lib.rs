//! `lrc-check` — a bounded, exhaustive model checker for the four
//! coherence protocols in `lrc-core`.
//!
//! The checker treats the simulator itself as the transition relation: a
//! state is a cloned [`lrc_core::Machine`], the enabled transitions are
//! the events pending in its queue, and firing the `n`-th pending event
//! ([`lrc_core::Machine::step_choice`]) yields a successor. Depth-first
//! search with visited-state pruning on logical fingerprints explores
//! *every* interleaving of protocol messages, processor steps, and flush
//! timers for a small scripted scenario (2–4 processors, 1–2 cache
//! lines).
//!
//! Checked properties:
//!
//! * **Safety** — after every transition, the global coherence invariants
//!   (writers ⊆ sharers, notified ⊆ sharers, single writer, directory
//!   soundness) must hold ([`lrc_core::Machine::check_violations`]).
//! * **Liveness** — every drained state (empty event queue) must be a
//!   clean quiescent state: all processors finished, no outstanding
//!   transactions, no unacked flushes, no busy directory entries, no
//!   parked requests ([`lrc_core::Machine::stuck_states`]).
//! * **DRF ⇒ SC** — at every drained state the machine's symbolic final
//!   memory (last [`lrc_sim::refint::WriteId`] per word) must equal a
//!   reference sequentially consistent interpretation of the script under
//!   the lock-grant order the machine actually produced, and no two nodes
//!   may hold unflushed writes to the same word.
//!
//! On a violation the failing schedule is shrunk by delta debugging
//! ([`minimize::minimize`]) and rendered as a protocol message timeline
//! ([`report::render`]). Replays are deterministic: the printed schedule
//! reproduces the exact failing interleaving via `lrc-check --replay`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod minimize;
pub mod report;
pub mod scenario;

use explore::{BuildOpts, CheckReport, Limits};
use lrc_core::Fault;
use lrc_sim::Protocol;
use minimize::FailureClass;
use scenario::Scenario;

/// Parse a CLI protocol name ("sc", "eager", "lazy", "lazy-ext").
pub fn parse_protocol(s: &str) -> Result<Protocol, String> {
    Protocol::ALL
        .iter()
        .copied()
        .find(|p| p.name() == s)
        .ok_or_else(|| format!("unknown protocol {s:?} (sc, eager, lazy, lazy-ext)"))
}

/// Parse a CLI fault name ("none", "skip-invalidate", "skip-write-notice",
/// "skip-lock-reclaim").
pub fn parse_fault(s: &str) -> Result<Fault, String> {
    match s {
        "none" => Ok(Fault::None),
        "skip-invalidate" => Ok(Fault::SkipInvalidate),
        "skip-write-notice" => Ok(Fault::SkipWriteNotice),
        "skip-lock-reclaim" => Ok(Fault::SkipLockReclaim),
        _ => Err(format!(
            "unknown fault {s:?} (none, skip-invalidate, skip-write-notice, skip-lock-reclaim)"
        )),
    }
}

/// Outcome of one fully processed (scenario, protocol, fault) run: the
/// exploration report plus, on failure, the minimized schedule and a
/// rendered human-readable counterexample.
pub struct CheckOutcome {
    /// Raw exploration statistics and the (unminimized) first failure.
    pub report: CheckReport,
    /// Minimized schedule, when a counterexample was found.
    pub minimized: Option<Vec<usize>>,
    /// Rendered report for the minimized counterexample.
    pub rendered: Option<String>,
}

impl CheckOutcome {
    /// True when no counterexample was found.
    pub fn passed(&self) -> bool {
        self.report.counterexample.is_none()
    }
}

/// Explore one combination and, if it fails, minimize and render the
/// counterexample.
pub fn check_and_minimize(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    limits: Limits,
) -> CheckOutcome {
    process(scenario, protocol, fault, limits, BuildOpts::default())
}

/// [`check_and_minimize`] with the happens-before race detector armed on
/// every machine (exploration, minimization replays, and the rendering
/// replay): a detected race is a first-class counterexample with a
/// ddmin-minimized, replayable witness, and the DRF ⇒ SC value comparison
/// only applies to paths the detector certifies race-free.
pub fn check_and_minimize_raced(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    limits: Limits,
) -> CheckOutcome {
    process(scenario, protocol, fault, limits, BuildOpts::raced(true))
}

/// [`check_and_minimize`] under arbitrary [`BuildOpts`] — exploration,
/// minimization replays, and the rendering replay all run with the same
/// options, so crash-timing counterexamples shrink and reproduce exactly.
pub fn check_and_minimize_opts(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    limits: Limits,
    opts: BuildOpts,
) -> CheckOutcome {
    process(scenario, protocol, fault, limits, opts)
}

fn process(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    limits: Limits,
    opts: BuildOpts,
) -> CheckOutcome {
    let report = explore::check_opts(scenario, protocol, fault, opts, limits);
    let (minimized, rendered) = match &report.counterexample {
        None => (None, None),
        Some(cex) => {
            let class = FailureClass::of(&cex.failure);
            let (schedule, failure) =
                minimize::minimize_opts(scenario, protocol, fault, &cex.schedule, class, opts);
            let min_cex = explore::Counterexample { schedule: schedule.clone(), failure };
            let rendered = report::render_opts(scenario, protocol, fault, &min_cex, opts);
            (Some(schedule), Some(rendered))
        }
    };
    CheckOutcome { report, minimized, rendered }
}

//! The bounded-configuration scenario library.
//!
//! Each scenario is a small scripted program (2–4 processors, 1–2 cache
//! lines) chosen to exercise one protocol mechanism end to end: lock
//! hand-off with true sharing, barrier-separated phases, a contended
//! counter, independent critical sections under two locks, and a
//! conflict-eviction variant that forces write-backs. All scenarios are
//! data-race-free, so the checker's DRF ⇒ SC final-memory comparison
//! applies on every interleaving.

use lrc_sim::{MachineConfig, Op, Script};

/// One named bounded configuration.
#[derive(Clone)]
pub struct Scenario {
    /// Stable CLI name.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    /// Processor count.
    pub procs: usize,
    /// Distinct cache lines touched.
    pub lines: usize,
    build: fn() -> Script,
    /// Shrink the cache to one set so the scenario's lines conflict.
    tiny_cache: bool,
}

/// Line size used by every checker configuration (4 words of 4 bytes —
/// small enough that per-word dirty masks and false sharing are exercised
/// without blowing up the state space).
pub const LINE: u64 = 16;

/// Byte address of `word` within line `l`.
const fn addr(l: u64, word: u64) -> u64 {
    l * LINE + word * 4
}

impl Scenario {
    /// Build the script for one run.
    pub fn script(&self) -> Script {
        (self.build)()
    }

    /// The machine configuration this scenario is checked under: the
    /// paper's cost model with a tiny cache and a one-op skew quantum, so
    /// every operation boundary is an interleaving point.
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default(self.procs);
        cfg.line_size = LINE as usize;
        cfg.cache_size = if self.tiny_cache { LINE as usize } else { LINE as usize * 4 };
        cfg.skew_quantum = 1;
        cfg
    }
}

/// Every scenario, in checking order (cheapest first).
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "handoff",
            about: "lock-protected producer/consumer hand-off of one line",
            procs: 2,
            lines: 1,
            build: || {
                Script::new(
                    "handoff",
                    vec![
                        vec![
                            Op::Acquire(0),
                            Op::Write(addr(0, 0)),
                            Op::Write(addr(0, 1)),
                            Op::Release(0),
                        ],
                        vec![
                            Op::Acquire(0),
                            Op::Read(addr(0, 0)),
                            Op::Write(addr(0, 2)),
                            Op::Release(0),
                        ],
                    ],
                )
            },
            tiny_cache: false,
        },
        Scenario {
            name: "counter",
            about: "two rounds of a lock-protected read-modify-write counter",
            procs: 2,
            lines: 1,
            build: || {
                let round = vec![
                    Op::Acquire(0),
                    Op::Read(addr(0, 0)),
                    Op::Write(addr(0, 0)),
                    Op::Release(0),
                ];
                let mut s = round.clone();
                s.extend(round.iter().cloned());
                Script::new("counter", vec![s.clone(), s])
            },
            tiny_cache: false,
        },
        Scenario {
            name: "barrier-phases",
            about: "barrier-separated write phases with cross reads",
            procs: 2,
            lines: 1,
            build: || {
                Script::new(
                    "barrier-phases",
                    vec![
                        vec![Op::Write(addr(0, 0)), Op::Barrier(0), Op::Read(addr(0, 1))],
                        vec![Op::Write(addr(0, 1)), Op::Barrier(0), Op::Read(addr(0, 0))],
                    ],
                )
            },
            tiny_cache: false,
        },
        Scenario {
            name: "two-locks",
            about: "two lines under two locks, acquired in opposite orders",
            procs: 2,
            lines: 2,
            build: || {
                Script::new(
                    "two-locks",
                    vec![
                        vec![
                            Op::Acquire(0),
                            Op::Write(addr(0, 0)),
                            Op::Release(0),
                            Op::Acquire(1),
                            Op::Write(addr(1, 0)),
                            Op::Release(1),
                        ],
                        vec![
                            Op::Acquire(1),
                            Op::Read(addr(1, 0)),
                            Op::Release(1),
                            Op::Acquire(0),
                            Op::Read(addr(0, 0)),
                            Op::Release(0),
                        ],
                    ],
                )
            },
            tiny_cache: false,
        },
        Scenario {
            name: "conflict-evict",
            about: "two lines mapping to one cache set: evictions mid-critical-section",
            procs: 2,
            lines: 2,
            build: || {
                Script::new(
                    "conflict-evict",
                    vec![
                        vec![
                            Op::Acquire(0),
                            Op::Write(addr(0, 0)),
                            Op::Write(addr(1, 0)), // evicts line 0 (one-set cache)
                            Op::Release(0),
                        ],
                        vec![
                            Op::Acquire(0),
                            Op::Read(addr(0, 0)),
                            Op::Read(addr(1, 0)),
                            Op::Release(0),
                        ],
                    ],
                )
            },
            tiny_cache: true,
        },
        Scenario {
            name: "three-way",
            about: "three processors rotating one counter through a lock",
            procs: 3,
            lines: 1,
            build: || {
                let round = vec![
                    Op::Acquire(0),
                    Op::Read(addr(0, 0)),
                    Op::Write(addr(0, 0)),
                    Op::Release(0),
                ];
                Script::new("three-way", vec![round.clone(), round.clone(), round])
            },
            tiny_cache: false,
        },
    ]
}

/// The deliberately racy positive-control scenario — kept OUT of [`all`],
/// because it breaks the DRF promise the default property set relies on:
/// word 0 of line 0 is written by both processors (and read back) with no
/// synchronization, while word 1 is correctly protected by lock 0. With
/// `--races` the checker must flag it ([`crate::explore::Failure::HbRace`])
/// with a minimized witness; without race detection its value checks are
/// meaningless (and may fail with either write-overlay conflicts or
/// reference divergence — honestly reflecting that racy programs have no
/// SC reference execution).
pub fn racy() -> Scenario {
    Scenario {
        name: "racy",
        about: "positive control: unsynchronized write/write and write/read on word 0",
        procs: 2,
        lines: 1,
        build: || {
            Script::new(
                "racy",
                vec![
                    vec![
                        Op::Write(addr(0, 0)),
                        Op::Acquire(0),
                        Op::Write(addr(0, 1)),
                        Op::Release(0),
                    ],
                    vec![
                        Op::Write(addr(0, 0)),
                        Op::Acquire(0),
                        Op::Read(addr(0, 1)),
                        Op::Release(0),
                        Op::Read(addr(0, 0)),
                    ],
                ],
            )
        },
        tiny_cache: false,
    }
}

/// Look up one scenario by CLI name ([`racy`] included).
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().chain(std::iter::once(racy())).find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_sim::Workload;

    #[test]
    fn scenarios_are_well_formed() {
        for s in all() {
            let script = s.script();
            assert_eq!(script.num_procs(), s.procs, "{}", s.name);
            assert!(s.config().validate().is_ok(), "{}", s.name);
            let touched: std::collections::BTreeSet<u64> = script
                .streams()
                .iter()
                .flatten()
                .filter_map(|op| match *op {
                    Op::Read(a) | Op::Write(a) => Some(a / LINE),
                    _ => None,
                })
                .collect();
            assert_eq!(touched.len(), s.lines, "{}", s.name);
        }
    }

    #[test]
    fn racy_is_resolvable_but_not_in_the_default_set() {
        assert!(all().iter().all(|s| s.name != "racy"), "racy must stay out of all()");
        let s = by_name("racy").expect("racy resolvable by name");
        assert_eq!(s.script().num_procs(), s.procs);
        assert!(s.config().validate().is_ok());
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = all().iter().map(|s| s.name).collect();
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(names.len(), set.len());
    }
}

//! Counterexample minimization by delta debugging over the schedule.
//!
//! A counterexample is a schedule — a sequence of choice indices. Replay
//! pads a short schedule with choice 0 (the natural event order), so any
//! prefix or subsequence of a failing schedule is itself a complete,
//! runnable schedule. Minimization exploits that: drop chunks of choices
//! (classic ddmin), rewrite surviving choices to 0, and trim trailing
//! zeros, keeping each edit only if the replayed schedule still exhibits
//! the *same class* of failure. The result is the short suffix-free core
//! of scheduling decisions that actually provoke the bug.

use crate::explore::{replay_schedule_opts, BuildOpts, Failure};
use crate::scenario::Scenario;
use lrc_core::Fault;
use lrc_sim::Protocol;

/// Step budget for each replay during minimization. Bounded configurations
/// drain in well under a thousand events; the slack covers fault-injected
/// runs that spin on retries before deadlocking.
const REPLAY_STEPS: usize = 50_000;

/// The coarse failure class used to decide whether a shrunken schedule
/// still reproduces "the same bug".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// An invariant violation mid-path.
    Safety,
    /// A stuck drained machine.
    Liveness,
    /// Final memory diverged from the reference execution.
    Value,
    /// Conflicting unflushed writes at quiescence.
    Race,
    /// The happens-before detector reported a data race.
    HbRace,
    /// The reference interpreter rejected the observed sync order.
    Reference,
}

impl FailureClass {
    /// The class of a concrete failure.
    pub fn of(f: &Failure) -> FailureClass {
        match f {
            Failure::Safety(_) => FailureClass::Safety,
            Failure::Liveness(_) => FailureClass::Liveness,
            Failure::ValueMismatch(_) => FailureClass::Value,
            Failure::WriteRace(_) => FailureClass::Race,
            Failure::HbRace(_) => FailureClass::HbRace,
            Failure::Reference(_) => FailureClass::Reference,
        }
    }
}

/// Shrink `schedule` while preserving a failure of class `class`.
/// Returns the minimized schedule together with the failure its replay
/// produces (guaranteed to be of the same class).
pub fn minimize(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    schedule: &[usize],
    class: FailureClass,
) -> (Vec<usize>, Failure) {
    minimize_opts(scenario, protocol, fault, schedule, class, BuildOpts::default())
}

/// [`minimize`] with control over race detection in the replay machines.
/// [`FailureClass::HbRace`] counterexamples only reproduce with `races`
/// set — the detector must be armed for the failure to exist at all.
pub fn minimize_with(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    schedule: &[usize],
    class: FailureClass,
    races: bool,
) -> (Vec<usize>, Failure) {
    minimize_opts(scenario, protocol, fault, schedule, class, BuildOpts::raced(races))
}

/// [`minimize`] replaying under the full [`BuildOpts`] the counterexample
/// was found with — a crash-timing choice point, like the race detector,
/// must stay armed for the failure to exist at all.
pub fn minimize_opts(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    schedule: &[usize],
    class: FailureClass,
    opts: BuildOpts,
) -> (Vec<usize>, Failure) {
    let still_fails = |s: &[usize]| -> Option<Failure> {
        let (f, _) = replay_schedule_opts(scenario, protocol, fault, opts, s, REPLAY_STEPS);
        f.filter(|f| FailureClass::of(f) == class)
    };

    let mut cur: Vec<usize> = schedule.to_vec();
    let mut witness = still_fails(&cur).unwrap_or_else(|| {
        panic!("counterexample schedule does not replay: {schedule:?}")
    });

    // Phase 1: drop the tail. Replay pads with choice 0, so a prefix is a
    // complete schedule; find the shortest failing prefix.
    while !cur.is_empty() {
        let prefix = &cur[..cur.len() - 1];
        match still_fails(prefix) {
            Some(f) => {
                witness = f;
                cur.pop();
            }
            None => break,
        }
    }

    // Phase 2: ddmin — remove contiguous chunks, halving granularity.
    let mut chunk = cur.len().div_ceil(2).max(1);
    while chunk >= 1 && !cur.is_empty() {
        let mut start = 0;
        let mut removed_any = false;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            match still_fails(&candidate) {
                Some(f) => {
                    witness = f;
                    cur = candidate;
                    removed_any = true;
                    // Retry at the same position — the next chunk shifted
                    // into it.
                }
                None => start = end,
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk = if removed_any { chunk } else { (chunk / 2).max(1) };
    }

    // Phase 3: rewrite surviving choices to 0 (the natural order) where
    // the failure does not depend on them.
    for i in 0..cur.len() {
        if cur[i] == 0 {
            continue;
        }
        let mut candidate = cur.clone();
        candidate[i] = 0;
        if let Some(f) = still_fails(&candidate) {
            witness = f;
            cur = candidate;
        }
    }

    // Phase 4: trailing zeros are redundant under 0-padding.
    while cur.last() == Some(&0) {
        cur.pop();
    }
    if !cur.is_empty() {
        // Phases 3–4 may have re-opened phase 1 opportunities.
        while !cur.is_empty() {
            let prefix = &cur[..cur.len() - 1];
            match still_fails(prefix) {
                Some(f) => {
                    witness = f;
                    cur.pop();
                    while cur.last() == Some(&0) {
                        cur.pop();
                    }
                }
                None => break,
            }
        }
    }

    debug_assert!(still_fails(&cur).is_some());
    (cur, witness)
}

//! `lrc-check` CLI: exhaustively model-check the protocols on bounded
//! scenarios, or replay a printed counterexample schedule.

#![forbid(unsafe_code)]

use lrc_check::explore::Limits;
use lrc_check::{parse_fault, parse_protocol, report, scenario};
use lrc_core::Fault;
use lrc_sim::Protocol;
use std::process::ExitCode;

const USAGE: &str = "\
lrc-check — bounded model checker for the lazy-release-consistency protocols

USAGE:
    lrc-check [OPTIONS]

OPTIONS:
    --scenario NAME     scenario to check, or 'all' (default: all; see --list)
    --protocol NAME     sc | eager | lazy | lazy-ext | all (default: all)
    --fault NAME        none | skip-invalidate | skip-write-notice |
                        skip-lock-reclaim (default: none)
    --nack-nth N        answer the N-th busy-directory encounter with a
                        BUSY-NACK instead of parking, and explore the retry
                        interleavings (eager protocols; no-op under lazy)
    --crash-nth N       crash-stop a node after exactly N handled events
                        (instantaneous detection) and explore the recovery
                        interleavings; counterexamples are minimized and
                        replayable. Survivors must still drain cleanly.
    --crash-node V      which node --crash-nth kills (default: 0)
    --races             arm the happens-before race detector: a detected
                        data race is a first-class counterexample with a
                        minimized replayable witness, and the DRF => SC
                        value checks apply only to race-free paths (see
                        the deliberately racy 'racy' scenario)
    --max-states N      stop after visiting N states (default: 200000)
    --max-depth N       abandon paths longer than N choices (default: 4000)
    --exhaustive        no state limit: explore until the space is exhausted
    --replay SCHEDULE   replay one comma-separated schedule ('-' = natural
                        order) instead of exploring; requires a single
                        --scenario and --protocol
    --list              list scenarios and exit
    --help              this text

Exit status: 0 if every checked combination passes, 1 on any counterexample,
2 on usage errors.";

struct Args {
    scenario: String,
    protocol: String,
    fault: Fault,
    nack_nth: Option<u64>,
    crash_nth: Option<u64>,
    crash_node: usize,
    races: bool,
    limits: Limits,
    replay: Option<Vec<usize>>,
    list: bool,
}

impl Args {
    fn build_opts(&self) -> lrc_check::explore::BuildOpts {
        lrc_check::explore::BuildOpts {
            races: self.races,
            crash_nth: self.crash_nth.map(|n| (self.crash_node, n)),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "all".to_string(),
        protocol: "all".to_string(),
        fault: Fault::None,
        nack_nth: None,
        crash_nth: None,
        crash_node: 0,
        races: false,
        limits: Limits::default(),
        replay: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--scenario" => args.scenario = val("--scenario")?,
            "--protocol" => args.protocol = val("--protocol")?,
            "--fault" => args.fault = parse_fault(&val("--fault")?)?,
            "--nack-nth" => {
                args.nack_nth =
                    Some(val("--nack-nth")?.parse().map_err(|e| format!("--nack-nth: {e}"))?)
            }
            "--crash-nth" => {
                args.crash_nth =
                    Some(val("--crash-nth")?.parse().map_err(|e| format!("--crash-nth: {e}"))?)
            }
            "--crash-node" => {
                args.crash_node =
                    val("--crash-node")?.parse().map_err(|e| format!("--crash-node: {e}"))?
            }
            "--max-states" => {
                args.limits.max_states =
                    val("--max-states")?.parse().map_err(|e| format!("--max-states: {e}"))?
            }
            "--max-depth" => {
                args.limits.max_depth =
                    val("--max-depth")?.parse().map_err(|e| format!("--max-depth: {e}"))?
            }
            "--races" => args.races = true,
            "--exhaustive" => args.limits.max_states = 0,
            "--replay" => args.replay = Some(report::parse_schedule(&val("--replay")?)?),
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn protocols_for(sel: &str) -> Result<Vec<Protocol>, String> {
    if sel == "all" {
        Ok(Protocol::ALL.to_vec())
    } else {
        Ok(vec![parse_protocol(sel)?])
    }
}

fn scenarios_for(sel: &str) -> Result<Vec<scenario::Scenario>, String> {
    if sel == "all" {
        Ok(scenario::all())
    } else {
        scenario::by_name(sel)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown scenario {sel:?} (try --list)"))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lrc-check: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for s in scenario::all() {
            println!("{:<16} {} procs, {} line(s) — {}", s.name, s.procs, s.lines, s.about);
        }
        return ExitCode::SUCCESS;
    }

    let (scenarios, protocols) = match (scenarios_for(&args.scenario), protocols_for(&args.protocol))
    {
        (Ok(s), Ok(p)) => (s, p),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("lrc-check: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(schedule) = args.replay.clone() {
        if scenarios.len() != 1 || protocols.len() != 1 {
            eprintln!("lrc-check: --replay needs a single --scenario and --protocol");
            return ExitCode::from(2);
        }
        let (s, p) = (&scenarios[0], protocols[0]);
        let opts = args.build_opts();
        let (failure, m) =
            lrc_check::explore::replay_schedule_opts(s, p, args.fault, opts, &schedule, 50_000);
        match failure {
            Some(f) => {
                let cex = lrc_check::explore::Counterexample { schedule, failure: f };
                print!("{}", report::render_opts(s, p, args.fault, &cex, opts));
                return ExitCode::FAILURE;
            }
            None => {
                println!(
                    "replay of {} under {} completed cleanly ({} events pending)",
                    s.name,
                    p.name(),
                    m.num_pending()
                );
                return ExitCode::SUCCESS;
            }
        }
    }

    let mut failed = false;
    for s in &scenarios {
        for &p in &protocols {
            // NACK runs skip schedule minimization (the minimizer replays
            // without the choice point armed); the raw failure is printed.
            let (report, rendered) = match args.nack_nth {
                Some(nth) => {
                    let r = lrc_check::explore::check_nacked(s, p, args.fault, nth, args.limits);
                    let rendered =
                        r.counterexample.as_ref().map(|cex| format!("  {}\n", cex.failure));
                    (r, rendered)
                }
                None => {
                    let outcome = lrc_check::check_and_minimize_opts(
                        s,
                        p,
                        args.fault,
                        args.limits,
                        args.build_opts(),
                    );
                    (outcome.report, outcome.rendered)
                }
            };
            let r = &report;
            let coverage = if r.complete { "exhaustive" } else { "bounded" };
            if r.counterexample.is_none() {
                println!(
                    "PASS {:<16} {:<9} {} states, {} terminal(s), depth {} ({})",
                    s.name, p.name(), r.states, r.terminals, r.max_depth_seen, coverage
                );
            } else {
                failed = true;
                println!(
                    "FAIL {:<16} {:<9} after {} states ({})",
                    s.name,
                    p.name(),
                    r.states,
                    coverage
                );
                if let Some(rendered) = &rendered {
                    print!("{rendered}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Human-readable counterexample reports: the minimized schedule is
//! replayed on a trace-enabled machine and printed as a protocol message
//! timeline, followed by the violated property and everything needed to
//! reproduce the run.

use crate::explore::{BuildOpts, Counterexample, Failure};
use crate::scenario::Scenario;
use lrc_core::{CrashPlan, Fault, FaultPlan, Machine, TraceFilter};
use lrc_sim::Protocol;
use std::fmt::Write as _;

/// Trace ring-buffer capacity — large enough to hold every message of a
/// bounded-configuration run.
const TRACE_CAP: usize = 10_000;

/// Flight-recorder depth per node for the last-events tail of a report.
const FLIGHT_CAP: usize = 16;

/// Step budget for the rendering replay (mirrors the minimizer's).
const REPLAY_STEPS: usize = 50_000;

/// CLI spelling of a fault, for the reproduction line.
pub fn fault_name(fault: Fault) -> &'static str {
    match fault {
        Fault::None => "none",
        Fault::SkipInvalidate => "skip-invalidate",
        Fault::SkipWriteNotice => "skip-write-notice",
        Fault::SkipLockReclaim => "skip-lock-reclaim",
    }
}

/// Replay `schedule` (0-padded past its end) on a trace-enabled machine,
/// stopping at the first safety violation or at quiescence. Returns the
/// machine so the caller can read its trace and state.
fn replay_traced(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    schedule: &[usize],
    opts: BuildOpts,
) -> Machine {
    let mut m = Machine::new(scenario.config(), protocol)
        .with_fault(fault)
        .with_value_tracking()
        .with_trace_filter(TraceFilter::all().sends_only(), TRACE_CAP)
        .with_flight_recorder(FLIGHT_CAP);
    if opts.races {
        m = m.with_race_detection();
    }
    if let Some((node, n)) = opts.crash_nth {
        m = m.with_fault_plan(FaultPlan::off(0).with_crash(CrashPlan::kill_nth(node, n)));
    }
    m.prepare(Box::new(scenario.script()));
    let mut step = 0usize;
    while m.num_pending() > 0 && step < REPLAY_STEPS {
        let want = schedule.get(step).copied().unwrap_or(0);
        let n = want.min(m.num_pending() - 1);
        m.step_choice(n);
        step += 1;
        if !m.check_violations().is_empty() {
            break;
        }
    }
    m
}

/// Render a counterexample as a full report: reproduction header, failure
/// description, and the protocol message timeline leading to it.
pub fn render(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    cex: &Counterexample,
) -> String {
    render_opts(scenario, protocol, fault, cex, BuildOpts::default())
}

/// [`render`] with control over race detection in the replay machine
/// ([`Failure::HbRace`] counterexamples need the detector armed to show
/// the race in the replayed state).
pub fn render_with(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    cex: &Counterexample,
    races: bool,
) -> String {
    render_opts(scenario, protocol, fault, cex, BuildOpts::raced(races))
}

/// [`render`] replaying under the full [`BuildOpts`] the counterexample
/// was found with; the reproduce line carries every armed option.
pub fn render_opts(
    scenario: &Scenario,
    protocol: Protocol,
    fault: Fault,
    cex: &Counterexample,
    opts: BuildOpts,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "counterexample: {} under {}", scenario.name, protocol.name());
    if fault != Fault::None {
        let _ = writeln!(out, "  injected fault: {}", fault_name(fault));
    }
    if let Some((node, n)) = opts.crash_nth {
        let _ = writeln!(out, "  crash choice point: node {node} dies after {n} handled events");
    }
    let _ = writeln!(out, "  schedule ({} forced choices): {:?}", cex.schedule.len(), cex.schedule);
    let crash_args = match opts.crash_nth {
        None => String::new(),
        Some((node, n)) => format!(" --crash-nth {n} --crash-node {node}"),
    };
    let _ = writeln!(
        out,
        "  reproduce: lrc-check --scenario {} --protocol {} --fault {}{}{} --replay {}",
        scenario.name,
        protocol.name(),
        fault_name(fault),
        if opts.races { " --races" } else { "" },
        crash_args,
        schedule_arg(&cex.schedule),
    );
    let _ = writeln!(out);

    let m = replay_traced(scenario, protocol, fault, &cex.schedule, opts);
    let trace = m.trace_records();
    let _ = writeln!(out, "  message timeline ({} messages):", trace.len());
    for rec in &trace {
        let _ = writeln!(out, "    {rec}");
    }
    let tail = m.flight_tail();
    if !tail.is_empty() {
        let _ = writeln!(out, "  last {} events before the failure:", tail.len());
        for rec in &tail {
            let _ = writeln!(out, "    {rec}");
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  violated: {}", cex.failure);
    if matches!(cex.failure, Failure::Liveness(_)) {
        let _ = writeln!(
            out,
            "  (machine drained after {} pending events; nothing left to fire)",
            m.num_pending()
        );
    }
    out
}

/// Comma-separated schedule for the `--replay` CLI flag ("-" when empty:
/// the natural event order already fails).
pub fn schedule_arg(schedule: &[usize]) -> String {
    if schedule.is_empty() {
        "-".to_string()
    } else {
        schedule.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(",")
    }
}

/// Parse the `--replay` flag back into a schedule.
pub fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|e| format!("bad choice {p:?}: {e}")))
        .collect()
}

//! The checker's own test suite.
//!
//! Default tier: exhaustively verify the cheapest 2-processor scenarios
//! under all four protocols, boundedly verify the rest, and prove the
//! checker actually *catches* bugs by injecting two protocol mutations and
//! asserting a minimized counterexample of the right class comes back.
//! The full exhaustive sweep over every scenario is `#[ignore]`d — run it
//! with `cargo test -p lrc-check -- --ignored`.

use lrc_check::explore::{check, replay_schedule, Failure, Limits};
use lrc_check::minimize::FailureClass;
use lrc_check::{check_and_minimize, scenario};
use lrc_core::Fault;
use lrc_sim::Protocol;

const EXHAUSTIVE: Limits = Limits { max_states: 0, max_depth: 4_000 };

fn bounded(max_states: usize) -> Limits {
    Limits { max_states, max_depth: 4_000 }
}

/// The cheap scenarios: small enough to exhaust under every protocol in
/// debug builds.
const CHEAP: &[&str] = &["handoff", "barrier-phases", "counter", "three-way"];

#[test]
fn cheap_scenarios_pass_exhaustively_under_all_protocols() {
    for name in CHEAP {
        let s = scenario::by_name(name).unwrap();
        for p in Protocol::ALL {
            // `counter` under plain lazy is the one cheap case with a six-
            // figure state space; bound it in the default tier (the ignored
            // sweep exhausts it).
            let limits = if *name == "counter" && p == Protocol::Lrc {
                bounded(30_000)
            } else {
                EXHAUSTIVE
            };
            let r = check(&s, p, Fault::None, limits);
            assert!(
                r.counterexample.is_none(),
                "{name} under {} failed: {}",
                p.name(),
                r.counterexample.unwrap().failure
            );
            if limits.max_states == 0 {
                assert!(r.complete, "{name} under {} did not exhaust", p.name());
                assert!(r.terminals > 0, "{name} under {} reached no terminal", p.name());
            }
        }
    }
}

#[test]
fn remaining_scenarios_pass_bounded_under_all_protocols() {
    for name in ["two-locks", "conflict-evict"] {
        let s = scenario::by_name(name).unwrap();
        for p in Protocol::ALL {
            let r = check(&s, p, Fault::None, bounded(15_000));
            assert!(
                r.counterexample.is_none(),
                "{name} under {} failed: {}",
                p.name(),
                r.counterexample.unwrap().failure
            );
            assert!(r.terminals > 0 || !r.complete, "{name} under {} explored nothing", p.name());
        }
    }
}

#[test]
#[ignore = "full exhaustive sweep (~minutes in debug builds)"]
fn all_scenarios_pass_exhaustively_under_all_protocols() {
    for s in scenario::all() {
        for p in Protocol::ALL {
            let r = check(&s, p, Fault::None, EXHAUSTIVE);
            assert!(
                r.counterexample.is_none(),
                "{} under {} failed: {}",
                s.name,
                p.name(),
                r.counterexample.unwrap().failure
            );
            assert!(r.complete, "{} under {} did not exhaust", s.name, p.name());
        }
    }
}

#[test]
fn skip_invalidate_fault_yields_minimized_safety_counterexample() {
    let s = scenario::by_name("counter").unwrap();
    let outcome = check_and_minimize(&s, Protocol::Erc, Fault::SkipInvalidate, EXHAUSTIVE);
    assert!(!outcome.passed(), "injected stale-copy bug went undetected");
    let cex = outcome.report.counterexample.as_ref().unwrap();
    assert_eq!(FailureClass::of(&cex.failure), FailureClass::Safety, "{}", cex.failure);

    let minimized = outcome.minimized.as_ref().unwrap();
    assert!(
        minimized.len() <= cex.schedule.len(),
        "minimizer grew the schedule: {} -> {}",
        cex.schedule.len(),
        minimized.len()
    );
    // The minimized schedule must still reproduce a safety violation.
    let (failure, _) = replay_schedule(&s, Protocol::Erc, Fault::SkipInvalidate, minimized, 50_000);
    assert!(matches!(failure, Some(Failure::Safety(_))), "{failure:?}");

    let rendered = outcome.rendered.as_ref().unwrap();
    assert!(rendered.contains("safety:"), "{rendered}");
    assert!(rendered.contains("message timeline"), "{rendered}");
    assert!(rendered.contains("reproduce: lrc-check"), "{rendered}");
}

#[test]
fn skip_write_notice_fault_yields_minimized_liveness_counterexample() {
    let s = scenario::by_name("handoff").unwrap();
    let outcome = check_and_minimize(&s, Protocol::Lrc, Fault::SkipWriteNotice, EXHAUSTIVE);
    assert!(!outcome.passed(), "injected lost-write-notice bug went undetected");
    let cex = outcome.report.counterexample.as_ref().unwrap();
    assert_eq!(FailureClass::of(&cex.failure), FailureClass::Liveness, "{}", cex.failure);

    let minimized = outcome.minimized.as_ref().unwrap();
    let (failure, m) =
        replay_schedule(&s, Protocol::Lrc, Fault::SkipWriteNotice, minimized, 50_000);
    assert!(matches!(failure, Some(Failure::Liveness(_))), "{failure:?}");
    assert_eq!(m.num_pending(), 0, "liveness counterexample must drain the queue");

    let rendered = outcome.rendered.as_ref().unwrap();
    assert!(rendered.contains("liveness:"), "{rendered}");
    assert!(rendered.contains("stuck"), "{rendered}");
}

#[test]
fn counterexample_schedules_replay_deterministically() {
    let s = scenario::by_name("handoff").unwrap();
    let outcome = check_and_minimize(&s, Protocol::Lrc, Fault::SkipWriteNotice, EXHAUSTIVE);
    let minimized = outcome.minimized.unwrap();
    let render = |sched: &[usize]| {
        let (f, _) = replay_schedule(&s, Protocol::Lrc, Fault::SkipWriteNotice, sched, 50_000);
        format!("{}", f.unwrap())
    };
    assert_eq!(render(&minimized), render(&minimized), "replay is not deterministic");
}

#[test]
fn clean_protocols_have_no_failure_on_natural_order() {
    // The empty schedule (pure 0-padding) is the simulator's own event
    // order; it must drain cleanly for every scenario and protocol.
    for s in scenario::all() {
        for p in Protocol::ALL {
            let (failure, m) = replay_schedule(&s, p, Fault::None, &[], 50_000);
            assert!(failure.is_none(), "{} under {}: {}", s.name, p.name(), failure.unwrap());
            assert_eq!(m.num_pending(), 0, "{} under {} did not drain", s.name, p.name());
        }
    }
}

#[test]
fn raced_checking_keeps_drf_scenarios_clean() {
    // With the detector armed, the DRF scenarios must still verify: no
    // HbRace counterexamples, and the value checks (now gated on the
    // detector's race-freedom verdict) still run and pass. Detector state
    // widens the state space, so the bigger scenarios get bounds.
    use lrc_check::explore::check_raced;
    for name in ["handoff", "barrier-phases"] {
        let s = scenario::by_name(name).unwrap();
        for p in Protocol::ALL {
            let r = check_raced(&s, p, Fault::None, bounded(20_000));
            assert!(
                r.counterexample.is_none(),
                "{name} under {} failed with races armed: {}",
                p.name(),
                r.counterexample.unwrap().failure
            );
            assert!(r.terminals > 0 || !r.complete, "{name} under {} explored nothing", p.name());
        }
    }
}

#[test]
fn racy_scenario_yields_minimized_race_counterexample() {
    // The positive control: the deliberately racy scenario must be flagged
    // as a first-class violation with a ddmin-minimized witness whose
    // replay reproduces a failure of the same class.
    use lrc_check::check_and_minimize_raced;
    use lrc_check::explore::replay_schedule_raced;
    let s = scenario::racy();
    for p in [Protocol::Sc, Protocol::Lrc] {
        let outcome = check_and_minimize_raced(&s, p, Fault::None, bounded(20_000));
        assert!(!outcome.passed(), "racy scenario passed under {}", p.name());
        let cex = outcome.report.counterexample.as_ref().unwrap();
        assert_eq!(
            FailureClass::of(&cex.failure),
            FailureClass::HbRace,
            "wrong class under {}: {}",
            p.name(),
            cex.failure
        );

        let minimized = outcome.minimized.as_ref().unwrap();
        let (failure, m) = replay_schedule_raced(&s, p, Fault::None, minimized, 50_000);
        assert!(
            matches!(failure, Some(Failure::HbRace(_))),
            "minimized witness does not replay under {}: {failure:?}",
            p.name()
        );
        let rs = m.race_stats().expect("detector armed");
        assert!(rs.races_found > 0);
        // The race is on word 0 of line 0, planted by the scenario.
        assert!(rs.reports.iter().any(|r| r.addr == 0), "wrong word: {:?}", rs.reports);

        let rendered = outcome.rendered.as_ref().unwrap();
        assert!(rendered.contains("data race"), "{rendered}");
        assert!(rendered.contains("--races"), "reproduce line must arm the detector: {rendered}");
    }
}

#[test]
fn race_verdict_gates_value_checks_on_the_racy_scenario() {
    // Natural-order replay of the racy scenario with the detector armed:
    // the failure must be the race itself, never a ValueMismatch or
    // WriteRace — racy programs have no SC reference execution, so the
    // DRF => SC comparison is skipped once the premise is void.
    use lrc_check::explore::replay_schedule_raced;
    let s = scenario::racy();
    for p in Protocol::ALL {
        let (failure, _) = replay_schedule_raced(&s, p, Fault::None, &[], 50_000);
        match failure {
            Some(Failure::HbRace(reports)) => {
                assert!(!reports.is_empty(), "{}: race flagged without a report", p.name())
            }
            other => panic!("{}: expected HbRace, got {other:?}", p.name()),
        }
    }
}

#[test]
fn nack_choice_point_passes_on_every_scenario() {
    // Arm the deterministic BUSY-NACK choice point: the nth busy-directory
    // encounter is answered with a retriable NACK instead of parking. The
    // NACK round-trip and backoff retry must stay safe and live against
    // every explored interleaving. Only the eager protocols park at a busy
    // home, so they get several trigger points; the lazy protocols (where
    // the point can never fire) get one run each proving the machinery is
    // inert for them.
    use lrc_check::explore::check_nacked;
    for s in scenario::all() {
        for p in Protocol::ALL {
            let nths: &[u64] = if p.is_lazy() { &[0] } else { &[0, 1, 2] };
            for &nth in nths {
                let r = check_nacked(&s, p, Fault::None, nth, bounded(12_000));
                assert!(
                    r.counterexample.is_none(),
                    "{} under {} with nack_nth={nth} failed: {}",
                    s.name,
                    p.name(),
                    r.counterexample.unwrap().failure
                );
                assert!(
                    r.terminals > 0 || !r.complete,
                    "{} under {} with nack_nth={nth} explored nothing",
                    s.name,
                    p.name()
                );
            }
        }
    }
}

#[test]
fn nacked_exploration_reaches_clean_terminals_on_natural_order() {
    // The natural event order with the very first busy encounter NACKed:
    // the run must drain clean and the final memory must still match the
    // reference SC execution (the NACK changes timing, never values).
    use lrc_check::explore::{build_machine_nacked, terminal_failure};
    let mut nacks_fired = 0u64;
    for s in scenario::all() {
        for p in [Protocol::Sc, Protocol::Erc] {
            let script = s.script();
            let mut m = build_machine_nacked(&s, p, Fault::None, 0);
            let mut steps = 0usize;
            while m.num_pending() > 0 && steps < 100_000 {
                m.step_choice(0);
                steps += 1;
            }
            assert_eq!(m.num_pending(), 0, "{} under {} did not drain", s.name, p.name());
            let f = terminal_failure(&m, &script);
            assert!(f.is_none(), "{} under {}: {}", s.name, p.name(), f.unwrap());
            nacks_fired += m.resource_stats().busy_nacks;
        }
    }
    assert!(nacks_fired > 0, "no scenario's natural order ever reached the choice point");
}

#[test]
fn dropped_messages_recover_under_every_protocol() {
    // Deterministic fault injection: kill exactly the n-th message of one
    // class and step the natural event order. The link layer's ACK/retry
    // machinery must recover the loss on every protocol — the terminal
    // state drains clean and final memory still matches the reference SC
    // execution.
    use lrc_check::explore::{build_machine_with_plan, terminal_failure};
    use lrc_core::{FaultPlan, MsgClass};
    let s = scenario::by_name("handoff").unwrap();
    let script = s.script();
    for p in Protocol::ALL {
        for class in [MsgClass::Request, MsgClass::Response, MsgClass::Notice, MsgClass::Sync] {
            for n in 0..4u64 {
                let plan = FaultPlan::drop_nth(class, n);
                let mut m = build_machine_with_plan(&s, p, Fault::None, plan);
                let mut steps = 0usize;
                while m.num_pending() > 0 && steps < 100_000 {
                    m.step_choice(0);
                    steps += 1;
                }
                assert_eq!(
                    m.num_pending(),
                    0,
                    "{} drop {}#{n}: did not drain within {steps} steps",
                    p.name(),
                    class.name(),
                );
                let f = terminal_failure(&m, &script);
                assert!(f.is_none(), "{} drop {}#{n}: {}", p.name(), class.name(), f.unwrap());
            }
        }
    }
}

#[test]
fn fault_recovery_stepping_is_deterministic() {
    // Same plan, same schedule: the recovered machine reaches the same
    // logical fingerprint both times (retry timers and all).
    use lrc_check::explore::build_machine_with_plan;
    use lrc_core::{FaultPlan, MsgClass};
    let s = scenario::by_name("handoff").unwrap();
    let run = || {
        let plan = FaultPlan::drop_nth(MsgClass::Response, 1);
        let mut m = build_machine_with_plan(&s, Protocol::LrcExt, Fault::None, plan);
        let mut steps = 0usize;
        while m.num_pending() > 0 && steps < 100_000 {
            m.step_choice(0);
            steps += 1;
        }
        (steps, m.fingerprint())
    };
    assert_eq!(run(), run());
}

//! Stream validation: drains a workload (without simulating it) and checks
//! the structural properties the machine depends on — addresses in range,
//! lock discipline, and barrier matching across processors.
//!
//! Useful both for the workload test suites and for users developing their
//! own workloads.

use lrc_sim::{Op, Workload};
use std::collections::{BTreeMap, HashSet};

/// Summary of a drained workload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total ops across all processors (excluding `Done`).
    pub total_ops: u64,
    /// Total memory references.
    pub refs: u64,
    /// Total compute cycles.
    pub compute_cycles: u64,
    /// Number of barrier rounds each processor participates in.
    pub barrier_rounds: u64,
    /// Total lock acquires across all processors.
    pub lock_acquires: u64,
    /// Per-processor op counts (load-balance check).
    pub per_proc_ops: Vec<u64>,
}

/// Drain `w` completely, checking structural invariants. Returns the
/// summary, or a description of the first violation.
///
/// Checks:
/// * every `Read`/`Write` address is below `addr_space()`;
/// * every lock id is below `num_locks()`, every barrier id below
///   `num_barriers()`;
/// * locks are released only while held and all are released by `Done`;
/// * every processor executes the *same sequence* of barrier ids (the
///   machine requires full participation in every round).
pub fn validate(w: &mut dyn Workload) -> Result<StreamSummary, String> {
    let p = w.num_procs();
    let addr_space = w.addr_space();
    let num_locks = w.num_locks();
    let num_barriers = w.num_barriers();

    let mut summary = StreamSummary { per_proc_ops: vec![0; p], ..Default::default() };
    let mut barrier_seqs: Vec<Vec<u32>> = vec![Vec::new(); p];

    #[allow(clippy::needless_range_loop)] // proc drives next_op too
    for proc in 0..p {
        let mut held: BTreeMap<u32, u32> = BTreeMap::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let _ = &mut seen;
        let mut guard: u64 = 0;
        loop {
            guard += 1;
            if guard > 2_000_000_000 {
                return Err(format!("proc {proc}: stream appears infinite"));
            }
            let op = w.next_op(proc);
            if op != Op::Done {
                summary.total_ops += 1;
                summary.per_proc_ops[proc] += 1;
            }
            match op {
                Op::Read(a) | Op::Write(a) => {
                    if a >= addr_space {
                        return Err(format!(
                            "proc {proc}: address {a:#x} outside addr_space {addr_space:#x}"
                        ));
                    }
                    summary.refs += 1;
                }
                Op::Compute(c) => summary.compute_cycles += u64::from(c),
                Op::Acquire(l) => {
                    if l >= num_locks {
                        return Err(format!("proc {proc}: lock {l} >= num_locks {num_locks}"));
                    }
                    let held_count = held.entry(l).or_insert(0);
                    if *held_count > 0 {
                        return Err(format!("proc {proc}: re-acquired held lock {l}"));
                    }
                    *held_count += 1;
                    summary.lock_acquires += 1;
                }
                Op::Release(l) => {
                    match held.get_mut(&l) {
                        Some(c) if *c > 0 => *c -= 1,
                        _ => return Err(format!("proc {proc}: released un-held lock {l}")),
                    }
                }
                Op::Barrier(b) => {
                    if b >= num_barriers {
                        return Err(format!(
                            "proc {proc}: barrier {b} >= num_barriers {num_barriers}"
                        ));
                    }
                    if !held.values().all(|&c| c == 0) {
                        return Err(format!("proc {proc}: entered barrier {b} holding a lock"));
                    }
                    barrier_seqs[proc].push(b);
                }
                Op::Fence => {}
                Op::Done => {
                    if !held.values().all(|&c| c == 0) {
                        return Err(format!("proc {proc}: finished holding locks {held:?}"));
                    }
                    break;
                }
            }
        }
    }

    #[allow(clippy::needless_range_loop)]
    for proc in 1..p {
        if barrier_seqs[proc] != barrier_seqs[0] {
            return Err(format!(
                "barrier sequences differ: proc 0 has {} rounds {:?}..., proc {} has {} rounds {:?}...",
                barrier_seqs[0].len(),
                &barrier_seqs[0][..barrier_seqs[0].len().min(8)],
                proc,
                barrier_seqs[proc].len(),
                &barrier_seqs[proc][..barrier_seqs[proc].len().min(8)],
            ));
        }
    }
    summary.barrier_rounds = barrier_seqs.first().map_or(0, |s| s.len() as u64);
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_sim::Script;

    #[test]
    fn accepts_well_formed_script() {
        let mut w = Script::new(
            "ok",
            vec![
                vec![Op::Acquire(0), Op::Write(8), Op::Release(0), Op::Barrier(0)],
                vec![Op::Barrier(0)],
            ],
        );
        let s = validate(&mut w).unwrap();
        assert_eq!(s.lock_acquires, 1);
        assert_eq!(s.barrier_rounds, 1);
        assert_eq!(s.refs, 1);
    }

    #[test]
    fn rejects_unmatched_barriers() {
        let mut w = Script::new(
            "bad",
            vec![vec![Op::Barrier(0)], vec![]],
        );
        assert!(validate(&mut w).is_err());
    }

    #[test]
    fn rejects_release_without_acquire() {
        let mut w = Script::new("bad", vec![vec![Op::Release(0)]]);
        assert!(validate(&mut w).is_err());
    }

    #[test]
    fn rejects_finishing_with_held_lock() {
        let mut w = Script::new("bad", vec![vec![Op::Acquire(0)]]);
        assert!(validate(&mut w).is_err());
    }

    #[test]
    fn rejects_barrier_while_holding_lock() {
        let mut w = Script::new(
            "bad",
            vec![vec![Op::Acquire(0), Op::Barrier(0), Op::Release(0)]],
        );
        assert!(validate(&mut w).is_err());
    }
}

//! `cholesky` — sparse Cholesky factorization (paper input: bcsstk15).
//!
//! Column-oriented fan-out factorization: processors draw column tasks,
//! factor the column, then scatter updates into a few dependent columns
//! under per-column locks. Dominated by cold and eviction misses plus
//! write (upgrade) misses on the update targets, with almost no false
//! sharing — matching the paper's Table 2 profile for cholesky.
//!
//! Substitution note: bcsstk15's exact sparsity structure is replaced by a
//! fixed-seed synthetic structure with matching scale (≈ 4K columns,
//! supernodal column lengths 8–56 elements, ≈ 8 updates per column, target
//! columns skewed to be nearby — the profile that drives the miss mix).
//! Task assignment is static round-robin rather than a dynamic queue, but
//! the shared queue-head line is still read-modify-written under its lock,
//! preserving the queue's coherence traffic.

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use crate::scale::Scale;
use lrc_sim::{AddressAllocator, Op, Rng};

/// Number of columns for `scale`.
pub fn size(scale: Scale) -> usize {
    scale.pick(3948, 2048, 1024, 256, 64)
}

const QUEUE_LOCK: u32 = 0;
const COL_LOCKS: u32 = 63;

/// Build the workload for `p` processors (canonical seed 0).
pub fn build(p: usize, scale: Scale) -> Streams {
    build_seeded(p, scale, 0)
}

/// Build with an explicit input seed: synthesizes a different sparse
/// structure from the same distribution (column lengths, update lists).
/// Seed 0 is bit-identical to [`build`].
pub fn build_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    let ncols = size(scale);
    // Synthesize the sparse structure once (shared by all generators).
    let mut rng = Rng::new(0xC0_1E5C ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut col_len = Vec::with_capacity(ncols);
    let mut col_base = Vec::with_capacity(ncols);
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let queue = alloc.alloc(64);
    for _ in 0..ncols {
        let len = 8 + rng.below(49) as usize; // 8..56 doubles
        col_len.push(len);
        col_base.push(alloc.alloc_array(len as u64, 8));
    }
    // Update lists: each column updates ~8 later columns, mostly nearby.
    let mut updates: Vec<Vec<usize>> = Vec::with_capacity(ncols);
    for j in 0..ncols {
        let mut u = Vec::new();
        let n_up = 4 + rng.below(9) as usize; // 4..12
        for _ in 0..n_up {
            if j + 1 >= ncols {
                break;
            }
            let span = ((ncols - j - 1) as u64).min(64);
            let t = j + 1 + rng.below(span.max(1)) as usize;
            if t < ncols {
                u.push(t);
            }
        }
        updates.push(u);
    }
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 4096)).collect();
    let addr_space = alloc.used();

    let col_len = std::sync::Arc::new(col_len);
    let col_base = std::sync::Arc::new(col_base);
    let updates = std::sync::Arc::new(updates);

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            let col_len = col_len.clone();
            let col_base = col_base.clone();
            let updates = updates.clone();
            let mut scratch = scratches.remove(0);
            let mut next_col = proc; // static round-robin task assignment
            let f: ChunkFn = Box::new(move |out| {
                if next_col >= ncols {
                    return false;
                }
                let j = next_col;
                next_col += p;

                // Draw the task from the shared queue (migratory line).
                out.push(Op::Acquire(QUEUE_LOCK));
                out.push(Op::Read(queue));
                out.push(Op::Compute(4));
                out.push(Op::Write(queue));
                out.push(Op::Release(QUEUE_LOCK));

                // Factor column j: scale by the diagonal. The column's own
                // lock orders factoring against updates scattered into j by
                // other processors — static assignment has no dependency
                // counts, so the lock is what stands in for the real
                // fan-out algorithm's "all updates received" ordering.
                let jlock = 1 + (j as u32 % COL_LOCKS);
                out.push(Op::Acquire(jlock));
                for e in 0..col_len[j] {
                    out.push(Op::Read(col_base[j] + e as u64 * 8));
                    out.push(Op::Compute(6));
                    out.push(Op::Write(col_base[j] + e as u64 * 8));
                    scratch.work(out, 4, 5);
                }
                out.push(Op::Release(jlock));

                // Scatter updates into dependent columns under their locks.
                // The source operands come from the processor's private copy
                // of the column it just factored (as the real program's
                // local accumulation buffer does), so the only shared data
                // touched here is the target column — under its lock.
                for &t in &updates[j] {
                    let lock = 1 + (t as u32 % COL_LOCKS);
                    out.push(Op::Acquire(lock));
                    let span = col_len[t].min(12);
                    for e in 0..span {
                        out.push(Op::Read(col_base[t] + e as u64 * 8));
                        out.push(Op::Compute(4));
                        out.push(Op::Write(col_base[t] + e as u64 * 8));
                        scratch.work(out, 5, 5);
                    }
                    out.push(Op::Release(lock));
                }
                true
            });
            f
        })
        .collect();

    Streams::new("cholesky", addr_space, 1 + COL_LOCKS, 0, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn tiny_cholesky_is_well_formed() {
        let mut w = build(4, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        assert!(s.lock_acquires >= size(Scale::Tiny) as u64, "queue draws");
        assert_eq!(s.barrier_rounds, 0);
    }

    #[test]
    fn structure_is_deterministic() {
        let mut a = build(3, Scale::Tiny);
        let mut b = build(3, Scale::Tiny);
        let sa = validate(&mut a).unwrap();
        let sb = validate(&mut b).unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn columns_do_not_overlap() {
        // Column allocations must be disjoint: validated by the allocator's
        // monotonicity; spot-check the first few bases are increasing.
        let ncols = size(Scale::Tiny);
        let mut rng = Rng::new(0xC0_1E5C);
        let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
        let _q = alloc.alloc(64);
        let mut last = 0;
        for _ in 0..ncols {
            let len = 8 + rng.below(49) as usize;
            let base = alloc.alloc_array(len as u64, 8);
            assert!(base >= last);
            last = base + (len as u64) * 8;
        }
    }
}

//! Input-size scaling.
//!
//! The paper runs each program on the largest input that simulates in
//! reasonable time (Section 3). We expose those sizes as [`Scale::Paper`]
//! and provide smaller scales for tests and quick benchmarks.


/// Input-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's input sizes (448×448 matrices, 64K-point FFT, 4K bodies,
    /// 40K particles, ~3K wires/columns).
    Paper,
    /// Sized for big machines (the 256-node mesh scaling runs): roughly
    /// half the paper's work so a 16×16 mesh still has work per node.
    Large,
    /// Roughly 1/4 the paper's work: minutes become seconds.
    Medium,
    /// Small inputs for fast benchmark iterations.
    Small,
    /// Tiny inputs for unit/integration tests.
    Tiny,
}

impl Scale {
    /// Pick among per-scale values.
    pub fn pick<T: Copy>(self, paper: T, large: T, medium: T, small: T, tiny: T) -> T {
        match self {
            Scale::Paper => paper,
            Scale::Large => large,
            Scale::Medium => medium,
            Scale::Small => small,
            Scale::Tiny => tiny,
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Large => "large",
            Scale::Medium => "medium",
            Scale::Small => "small",
            Scale::Tiny => "tiny",
        }
    }

    /// Parse a CLI-style scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "paper" | "full" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            "medium" => Some(Scale::Medium),
            "small" => Some(Scale::Small),
            "tiny" => Some(Scale::Tiny),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Paper.pick(1, 2, 3, 4, 5), 1);
        assert_eq!(Scale::Large.pick(1, 2, 3, 4, 5), 2);
        assert_eq!(Scale::Medium.pick(1, 2, 3, 4, 5), 3);
        assert_eq!(Scale::Small.pick(1, 2, 3, 4, 5), 4);
        assert_eq!(Scale::Tiny.pick(1, 2, 3, 4, 5), 5);
    }

    #[test]
    fn names_roundtrip() {
        for s in [Scale::Paper, Scale::Large, Scale::Medium, Scale::Small, Scale::Tiny] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("nope"), None);
    }
}

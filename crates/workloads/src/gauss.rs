//! `gauss` — Gaussian elimination without pivoting on an `n × n` matrix
//! (paper: 448 × 448).
//!
//! Rows are interleaved across processors (`row i` on `proc i mod P`);
//! iterations are separated by a barrier, so every processor reads the
//! freshly produced pivot row each iteration. This reproduces the paper's
//! key observation for gauss: the pivot row is *dirty* at its producer when
//! consumers fetch it, so the eager protocol pays a 3-hop forward per line
//! while the lazy protocol serves it from memory in 2 hops.

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use crate::scale::Scale;
use lrc_sim::{AddressAllocator, Op};

/// Matrix dimension for `scale`.
pub fn size(scale: Scale) -> usize {
    scale.pick(448, 320, 224, 112, 48)
}

/// Build with an explicit input seed. Elimination is fully deterministic,
/// so the seed rotates the processor→stream placement (see
/// [`Streams::rotate`]), moving the pivot producers around the mesh.
/// Seed 0 is bit-identical to [`build`].
pub fn build_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    build(p, scale).rotate((seed % p.max(1) as u64) as usize)
}

/// Build the workload for `p` processors.
pub fn build(p: usize, scale: Scale) -> Streams {
    let n = size(scale);
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let a = alloc.alloc_array((n * n) as u64, 8);
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 4096)).collect();
    let addr_space = alloc.used();
    let addr = move |i: usize, j: usize| a + ((i * n + j) as u64) * 8;

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            let mut scratch = scratches.remove(0);
            let mut k = 0usize;
            let mut initialized = false;
            let f: ChunkFn = Box::new(move |out| {
                if !initialized {
                    initialized = true;
                    // Initialize this processor's rows (cold writes).
                    let mut i = proc;
                    while i < n {
                        for j in 0..n {
                            out.push(Op::Write(addr(i, j)));
                            out.push(Op::Compute(2));
                        }
                        i += p;
                    }
                    out.push(Op::Barrier(0));
                    return true;
                }
                if k >= n - 1 {
                    return false;
                }
                // Iteration k: eliminate column k from this processor's
                // rows below the pivot, reading pivot row k.
                let mut i = proc;
                while i < n {
                    if i > k {
                        // multiplier = A[i][k] / A[k][k]
                        out.push(Op::Read(addr(i, k)));
                        out.push(Op::Read(addr(k, k)));
                        out.push(Op::Compute(10));
                        out.push(Op::Write(addr(i, k)));
                        for j in (k + 1)..n {
                            out.push(Op::Read(addr(k, j)));
                            out.push(Op::Read(addr(i, j)));
                            out.push(Op::Compute(4));
                            out.push(Op::Write(addr(i, j)));
                            scratch.work(out, 2, 2);
                        }
                    }
                    i += p;
                }
                out.push(Op::Barrier(0));
                k += 1;
                true
            });
            f
        })
        .collect();

    Streams::new("gauss", addr_space, 0, 1, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn tiny_gauss_is_well_formed() {
        let mut w = build(4, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        assert!(s.total_ops > 1000);
        assert_eq!(s.barrier_rounds, 48); // init + 47 elimination rounds
    }

    #[test]
    fn row_interleaving_covers_matrix() {
        // Each element of the matrix must be written during init, exactly
        // once, by its owning processor.
        let n = size(Scale::Tiny);
        let mut w = build(3, Scale::Tiny);
        let mut writes = std::collections::HashSet::new();
        for proc in 0..3 {
            loop {
                match lrc_sim::Workload::next_op(&mut w, proc) {
                    Op::Write(a) => {
                        writes.insert(a);
                    }
                    Op::Barrier(_) => break, // end of init chunk
                    Op::Done => break,
                    _ => {}
                }
            }
        }
        assert_eq!(writes.len(), n * n);
    }
}

//! `barnes` — Barnes-Hut N-body simulation (paper: 4096 bodies, 4 time
//! steps).
//!
//! Structure preserved from the original: a lock-protected tree-build
//! phase, a read-dominated force-computation phase traversing shared tree
//! cells (skewed toward the hot upper levels), and an update phase writing
//! the owner's bodies. Bodies are 64-byte records assigned round-robin, so
//! two bodies share each 128-byte line and the update phase exhibits the
//! false sharing the paper measures; the tree traversal's working set
//! (cells + visited bodies) drives the large eviction-miss component.
//!
//! Substitution note: tree topology is synthesized from a fixed-seed PRNG
//! with a Zipf-like bias toward low-numbered (upper) cells instead of
//! being computed from body positions. Miss behaviour depends on the
//! *distribution* of cell touches, which the bias preserves.

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use crate::scale::Scale;
use lrc_sim::{AddressAllocator, Op, Rng};

const BODY_BYTES: u64 = 64;
const CELL_BYTES: u64 = 128;
/// Cell reads per body per force evaluation (≈ tree depth × node fanout).
const TRAVERSAL_CELLS: usize = 36;
/// Distinct remote bodies consulted per force evaluation.
const TRAVERSAL_BODIES: usize = 12;

/// `(bodies, steps)` for `scale`.
pub fn size(scale: Scale) -> (usize, usize) {
    scale.pick((4096, 4), (2048, 4), (1024, 4), (256, 2), (64, 2))
}

/// Build the workload for `p` processors (canonical seed 0).
pub fn build(p: usize, scale: Scale) -> Streams {
    build_seeded(p, scale, 0)
}

/// Build with an explicit input seed: perturbs the synthesized tree
/// topology (a different random instance of the same distribution), the
/// cross-seed variation axis for the statistics layer. Seed 0 is
/// bit-identical to [`build`].
pub fn build_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    let seed_mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let (nbodies, steps) = size(scale);
    let ncells = nbodies; // tree cells ≈ bodies for BH octrees
    let nlocks = 16u32;

    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let bodies = alloc.alloc_array(nbodies as u64, BODY_BYTES);
    // The tree is rebuilt from scratch every step; double-buffer the cell
    // pool (as the real program's fresh allocations do) so force-phase
    // traversals read the *previous* tree, which nobody is writing.
    let cells_a = alloc.alloc_array(ncells as u64, CELL_BYTES);
    let cells_b = alloc.alloc_array(ncells as u64, CELL_BYTES);
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 8192)).collect();
    let addr_space = alloc.used();
    let body_at = move |i: usize, field: u64| bodies + i as u64 * BODY_BYTES + field * 8;
    let cell_at = move |buf: usize, i: usize, field: u64| {
        let base = if buf.is_multiple_of(2) { cells_a } else { cells_b };
        base + i as u64 * CELL_BYTES + field * 8
    };

    // Zipf-ish cell pick: upper levels of the tree are touched by every
    // traversal.
    let pick_cell = move |rng: &mut Rng| -> usize {
        if rng.chance(0.4) {
            rng.below(64.min(ncells as u64)) as usize
        } else {
            rng.below(ncells as u64) as usize
        }
    };

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            let mut scratch = scratches.remove(0);
            let mut step = 0usize;
            let mut phase = 0u32;
            let mut rng = Rng::new(0x00BA_12E5 ^ seed_mix ^ (proc as u64).wrapping_mul(0x9E37_79B9));
            let f: ChunkFn = Box::new(move |out| {
                if step >= steps {
                    return false;
                }
                let my_bodies = (proc..nbodies).step_by(p);
                match phase {
                    0 => {
                        // Tree build: insert each owned body under a hashed
                        // cell lock.
                        for i in my_bodies {
                            // Descend the (hot) upper tree read-only, then
                            // insert at a leaf: writes land on uniformly
                            // distributed leaf cells, never the hot top.
                            let walk1 = pick_cell(&mut rng);
                            let walk2 = pick_cell(&mut rng);
                            let leaf = ncells / 4 + rng.below((ncells - ncells / 4) as u64) as usize;
                            // Walk the previous tree, insert into the new one.
                            out.push(Op::Read(cell_at(step + 1, walk1, 0)));
                            out.push(Op::Read(cell_at(step + 1, walk2, 0)));
                            let lock = (leaf as u32) % nlocks;
                            out.push(Op::Acquire(lock));
                            out.push(Op::Read(cell_at(step, leaf, 0)));
                            out.push(Op::Compute(6));
                            out.push(Op::Write(cell_at(step, leaf, 1)));
                            out.push(Op::Release(lock));
                            if rng.chance(0.1) {
                                // Subdivision: the parent (an upper cell of
                                // the new tree) is updated too — the
                                // migratory data the paper credits for the
                                // lazy protocol's barnes gains. The parent is
                                // shared between all leaves beneath it, so it
                                // gets its *own* critical section under its
                                // own hashed lock; riding under the leaf's
                                // lock (hashed by a different index) left
                                // concurrent subdivisions unordered.
                                let parent = (leaf / 8).min(ncells - 1);
                                let plock = (parent as u32) % nlocks;
                                out.push(Op::Acquire(plock));
                                out.push(Op::Read(cell_at(step, parent, 0)));
                                out.push(Op::Compute(4));
                                out.push(Op::Write(cell_at(step, parent, 0)));
                                out.push(Op::Release(plock));
                            }
                            out.push(Op::Read(body_at(i, 0)));
                            scratch.work(out, 6, 8);
                        }
                        out.push(Op::Barrier(0));
                        phase = 1;
                    }
                    1 => {
                        // Force computation: heavy read traversal, then
                        // write own body's acceleration.
                        for i in my_bodies {
                            for _ in 0..TRAVERSAL_CELLS {
                                let c = pick_cell(&mut rng);
                                out.push(Op::Read(cell_at(step, c, rng.below(4))));
                                // The force kernel: ~50 private refs and a
                                // few dozen FLOPs per visited node.
                                scratch.work(out, 48, 64);
                            }
                            for _ in 0..TRAVERSAL_BODIES {
                                let b = rng.below(nbodies as u64) as usize;
                                out.push(Op::Read(body_at(b, 0)));
                                scratch.work(out, 40, 56);
                            }
                            out.push(Op::Write(body_at(i, 4)));
                            out.push(Op::Write(body_at(i, 5)));
                        }
                        out.push(Op::Barrier(1));
                        phase = 2;
                    }
                    2 => {
                        // Position/velocity update of owned bodies.
                        for i in my_bodies {
                            out.push(Op::Read(body_at(i, 4)));
                            out.push(Op::Read(body_at(i, 2)));
                            out.push(Op::Compute(12));
                            out.push(Op::Write(body_at(i, 0)));
                            out.push(Op::Write(body_at(i, 2)));
                        }
                        out.push(Op::Barrier(2));
                        phase = 0;
                        step += 1;
                    }
                    _ => unreachable!(),
                }
                true
            });
            f
        })
        .collect();

    Streams::new("barnes", addr_space, nlocks, 3, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn tiny_barnes_is_well_formed() {
        let mut w = build(4, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        let (_, steps) = size(Scale::Tiny);
        assert_eq!(s.barrier_rounds, 3 * steps as u64);
        assert!(s.lock_acquires > 0);
    }

    #[test]
    fn bodies_share_lines_across_owners() {
        // Round-robin 64-byte bodies on 128-byte lines: bodies 2i and 2i+1
        // share a line and belong to different procs whenever p > 1.
        assert_eq!(BODY_BYTES * 2, 128);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = build(2, Scale::Tiny);
        let mut b = build(2, Scale::Tiny);
        for _ in 0..5000 {
            assert_eq!(
                lrc_sim::Workload::next_op(&mut a, 0),
                lrc_sim::Workload::next_op(&mut b, 0)
            );
        }
    }
}

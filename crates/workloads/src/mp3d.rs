//! `mp3d` — rarefied-fluid wind-tunnel simulation (paper: 40000 particles,
//! 10 steps).
//!
//! Each step moves every particle and accumulates statistics into the
//! space cell the particle lands in, with *no synchronization* on the cell
//! array (mp3d is the paper's canonical data-race program). Particles are
//! 32-byte records assigned round-robin, packing four to a 128-byte line
//! across four different owners — the source of mp3d's dominant false
//! sharing and write-miss components and of its top-of-table miss rate.

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use crate::scale::Scale;
use lrc_sim::{AddressAllocator, Op, Rng};

const PARTICLE_BYTES: u64 = 32;
const CELL_BYTES: u64 = 64;

/// `(particles, steps)` for `scale`.
pub fn size(scale: Scale) -> (usize, usize) {
    scale.pick((40000, 10), (20000, 8), (10000, 5), (4000, 3), (1000, 2))
}

/// Build the workload for `p` processors (canonical seed 0).
pub fn build(p: usize, scale: Scale) -> Streams {
    build_with(p, scale, PARTICLE_BYTES, 0)
}

/// Build with an explicit input seed: different particle trajectories and
/// collision partners from the same distributions. Seed 0 is bit-identical
/// to [`build`].
pub fn build_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    build_with(p, scale, PARTICLE_BYTES, seed)
}

/// Build a *padded* variant: each particle record occupies a full cache
/// line, eliminating the false sharing between line-mates. This is the
/// compiler-padding technique of the paper's Section 5 ("False sharing can
/// be dealt with in software using compiler techniques"), exposed for the
/// `ablate` experiment: with padding, the lazy protocol's advantage over
/// eager RC should largely disappear.
pub fn build_padded(p: usize, scale: Scale) -> Streams {
    build_with(p, scale, 128, 0)
}

/// [`build_padded`] with an explicit input seed (see [`build_seeded`]).
pub fn build_padded_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    build_with(p, scale, 128, seed)
}

fn build_with(p: usize, scale: Scale, particle_bytes: u64, seed: u64) -> Streams {
    let seed_mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let (nparticles, steps) = size(scale);
    // The wind tunnel's space-cell array is comparable in size to the
    // particle population (the original uses ~14K cells for 40K particles);
    // keeping it large also spreads the cell pages across many home nodes.
    let ncells = (nparticles / 3).max(256);

    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let particles = alloc.alloc_array(nparticles as u64, particle_bytes);
    let cells = alloc.alloc_array(ncells as u64, CELL_BYTES);
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 4096)).collect();
    let addr_space = alloc.used();
    let part_at = move |i: usize, f: u64| particles + i as u64 * particle_bytes + f * 8;
    let cell_at = move |i: usize, f: u64| cells + i as u64 * CELL_BYTES + f * 8;

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            let mut scratch = scratches.remove(0);
            let mut step = 0usize;
            let mut rng = Rng::new(0x3D ^ seed_mix ^ (proc as u64).wrapping_mul(0xD6E8_FEB8));
            let f: ChunkFn = Box::new(move |out| {
                if step >= steps {
                    return false;
                }
                // One time step = three passes over the owned particles
                // (move, collide, boundary/statistics), with no barriers in
                // between — each particle line and each collision cell is
                // touched several times per step, the intra-step reuse that
                // lets the lazy protocol keep falsely-shared lines cached
                // where the eager protocol ping-pongs them.
                let my: Vec<usize> = (proc..nparticles).step_by(p).collect();
                // Pass 1: move. Read position & velocity, write position.
                let mut cells_of: Vec<usize> = Vec::with_capacity(my.len());
                for &i in &my {
                    out.push(Op::Read(part_at(i, 0)));
                    out.push(Op::Read(part_at(i, 1)));
                    out.push(Op::Compute(12));
                    out.push(Op::Write(part_at(i, 0)));
                    scratch.work(out, 10, 12);
                    cells_of.push(rng.below(ncells as u64) as usize);
                }
                // Pass 2: collide. Unsynchronized scatter into the particle's
                // cell; sometimes the velocity changes too.
                for (k, &i) in my.iter().enumerate() {
                    let c = cells_of[k];
                    out.push(Op::Read(cell_at(c, 0)));
                    out.push(Op::Read(part_at(i, 1)));
                    // Collision partner: another particle in the same cell,
                    // usually owned by a different processor. Under the
                    // eager protocol these reads keep missing as the
                    // partners' owners update them; under the lazy protocol
                    // the copy fetched here survives until the barrier.
                    let partner = rng.below(nparticles as u64) as usize;
                    out.push(Op::Read(part_at(partner, 0)));
                    out.push(Op::Read(part_at(partner, 1)));
                    out.push(Op::Compute(10));
                    out.push(Op::Write(cell_at(c, 0)));
                    out.push(Op::Write(cell_at(c, 1)));
                    if rng.chance(0.4) {
                        out.push(Op::Compute(8));
                        out.push(Op::Write(part_at(i, 1)));
                    }
                    scratch.work(out, 10, 12);
                }
                // Pass 3: boundary handling and per-cell statistics.
                for (k, &i) in my.iter().enumerate() {
                    let c = cells_of[k];
                    out.push(Op::Read(part_at(i, 0)));
                    out.push(Op::Read(cell_at(c, 2)));
                    out.push(Op::Compute(8));
                    out.push(Op::Write(part_at(i, 2)));
                    out.push(Op::Write(cell_at(c, 2)));
                    scratch.work(out, 8, 10);
                }
                out.push(Op::Barrier(0));
                step += 1;
                true
            });
            f
        })
        .collect();

    let name = if particle_bytes >= 128 { "mp3d-padded" } else { "mp3d" };
    Streams::new(name, addr_space, 0, 1, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn tiny_mp3d_is_well_formed() {
        let mut w = build(4, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        let (_, steps) = size(Scale::Tiny);
        assert_eq!(s.barrier_rounds, steps as u64);
    }

    #[test]
    fn particles_pack_four_per_line() {
        assert_eq!(128 / PARTICLE_BYTES, 4);
    }

    #[test]
    fn all_particles_processed_each_step() {
        let (n, _) = size(Scale::Tiny);
        let p = 3;
        let mut seen = vec![false; n];
        for proc in 0..p {
            for i in (proc..n).step_by(p) {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

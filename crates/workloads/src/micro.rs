//! Protocol microbenchmarks: tiny, single-mechanism workloads that isolate
//! each sharing pattern the application suite mixes together. Used by the
//! test suites, the `false_sharing_lab` example, and anyone exploring how a
//! coherence protocol responds to a specific access pattern.

use crate::framework::{ChunkFn, Streams, ARRAY_ALIGN};
use lrc_sim::{AddressAllocator, Op, Rng};

/// Producer/consumer handoff through a lock: the *migratory* pattern.
/// Each round, one processor updates a record under a lock, and the next
/// processor reads-then-updates it. Lazy protocols serve the reads 2-hop
/// from memory; eager ones forward 3-hop from the previous owner.
pub fn migratory(procs: usize, rounds: u32, record_words: u64) -> Streams {
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let record = alloc.alloc(record_words * 4);
    let addr_space = alloc.used();
    let fills: Vec<ChunkFn> = (0..procs)
        .map(|_| {
            let mut left = rounds;
            let f: ChunkFn = Box::new(move |out| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                out.push(Op::Acquire(0));
                for w in 0..record_words {
                    out.push(Op::Read(record + w * 4));
                }
                out.push(Op::Compute(20));
                for w in 0..record_words {
                    out.push(Op::Write(record + w * 4));
                }
                out.push(Op::Release(0));
                out.push(Op::Compute(60));
                true
            });
            f
        })
        .collect();
    Streams::new("micro-migratory", addr_space, 1, 0, fills)
}

/// False sharing: each processor read-modify-writes its *own word* of one
/// shared line, with no synchronization and no true sharing.
pub fn false_sharing(procs: usize, iters: u32, gap_cycles: u32) -> Streams {
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let line = alloc.alloc(256);
    let addr_space = alloc.used();
    let fills: Vec<ChunkFn> = (0..procs)
        .map(|p| {
            let a = line + (p as u64 % 32) * 4;
            let mut left = iters;
            let f: ChunkFn = Box::new(move |out| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                out.push(Op::Read(a));
                out.push(Op::Compute(10));
                out.push(Op::Write(a));
                out.push(Op::Compute(gap_cycles));
                true
            });
            f
        })
        .collect();
    Streams::new("micro-false-sharing", addr_space, 0, 0, fills)
}

/// Producer/consumers through a barrier: one processor writes a buffer,
/// everyone reads it after the barrier — the pivot-row pattern of gauss.
pub fn broadcast(procs: usize, rounds: u32, buffer_lines: u64) -> Streams {
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let buf = alloc.alloc(buffer_lines * 128);
    let addr_space = alloc.used();
    let fills: Vec<ChunkFn> = (0..procs)
        .map(|p| {
            let mut round = 0u32;
            let f: ChunkFn = Box::new(move |out| {
                if round >= rounds {
                    return false;
                }
                let producer = (round as usize) % procs;
                if p == producer {
                    for l in 0..buffer_lines {
                        for w in 0..4 {
                            out.push(Op::Write(buf + l * 128 + w * 4));
                        }
                        out.push(Op::Compute(16));
                    }
                }
                out.push(Op::Barrier(0));
                if p != producer {
                    for l in 0..buffer_lines {
                        out.push(Op::Read(buf + l * 128));
                        out.push(Op::Compute(8));
                    }
                }
                out.push(Op::Barrier(1));
                round += 1;
                true
            });
            f
        })
        .collect();
    Streams::new("micro-broadcast", addr_space, 0, 2, fills)
}

/// Unsynchronized scatter: everyone read-modify-writes random words of a
/// shared table (the mp3d/locusroute race pattern).
pub fn scatter(procs: usize, iters: u32, table_lines: u64, seed: u64) -> Streams {
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let table = alloc.alloc(table_lines * 128);
    let addr_space = alloc.used();
    let fills: Vec<ChunkFn> = (0..procs)
        .map(|p| {
            let mut rng = Rng::new(seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
            let mut left = iters;
            let f: ChunkFn = Box::new(move |out| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                let a = table + rng.below(table_lines) * 128 + rng.below(32) * 4;
                out.push(Op::Read(a));
                out.push(Op::Compute(12));
                out.push(Op::Write(a));
                true
            });
            f
        })
        .collect();
    Streams::new("micro-scatter", addr_space, 0, 0, fills)
}

/// Fully private working sets: the control — protocols must tie (and
/// first-touch placement should beat round-robin, since every page can be
/// homed at its only user). Each region spans four pages so the placement
/// policies actually differ.
pub fn private_only(procs: usize, iters: u32) -> Streams {
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let bases: Vec<u64> = (0..procs).map(|_| alloc.alloc(4 * 4096)).collect();
    let addr_space = alloc.used();
    let fills: Vec<ChunkFn> = (0..procs)
        .map(|p| {
            let base = bases[p];
            let mut left = iters;
            let mut cursor = 0u64;
            let f: ChunkFn = Box::new(move |out| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                let a = base + (cursor % 4096) * 4;
                cursor += 1;
                out.push(Op::Read(a));
                out.push(Op::Compute(4));
                out.push(Op::Write(a));
                true
            });
            f
        })
        .collect();
    Streams::new("micro-private", addr_space, 0, 0, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn all_micros_validate() {
        for (name, mut w) in [
            ("migratory", migratory(4, 5, 8)),
            ("false_sharing", false_sharing(4, 10, 50)),
            ("broadcast", broadcast(4, 3, 4)),
            ("scatter", scatter(4, 20, 8, 7)),
            ("private", private_only(4, 20)),
        ] {
            let s = validate(&mut w).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(s.refs > 0, "{name}");
        }
    }

    #[test]
    fn broadcast_rotates_producers() {
        let mut w = broadcast(3, 3, 2);
        let s = validate(&mut w).unwrap();
        assert_eq!(s.barrier_rounds, 6);
    }

    #[test]
    fn private_regions_do_not_overlap() {
        let w = private_only(4, 1);
        // 4 KB each, aligned: addr space at least 16 KB.
        assert!(lrc_sim::Workload::addr_space(&w) >= 4 * 4096);
    }
}

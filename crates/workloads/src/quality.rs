//! The mp3d solution-quality experiment (paper Section 4.2).
//!
//! The paper checks whether delaying invalidations distorts the answer of
//! an *unsynchronized* program by running mp3d natively on an SGI twice —
//! once sequentially consistent, once with software-caching emulating lazy
//! data propagation — and comparing the cumulative particle velocity
//! vector after 10 steps (they report X off by 6.7%, Y and Z by < 0.1%).
//!
//! We ask the same question of the same kind of computation with a pure
//! functional simulation: a small particle-in-cell fluid model executed
//! twice, once with immediate visibility of every cell update (sequential
//! consistency) and once with each virtual processor seeing other
//! processors' cell updates only at step boundaries (acquire-delayed
//! visibility, the lazy-protocol worst case).

/// Result of the quality experiment: cumulative velocity vectors under the
/// two visibility models and their relative divergence per axis.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityResult {
    /// Cumulative velocity (x, y, z) with immediate (SC) visibility.
    pub sc: [f64; 3],
    /// Cumulative velocity (x, y, z) with acquire-delayed visibility.
    pub lazy: [f64; 3],
    /// `|sc_k - lazy_k| / ‖sc‖` per axis, in percent. (Normalizing by the
    /// vector magnitude keeps near-zero transverse axes meaningful.)
    pub divergence_pct: [f64; 3],
}

#[derive(Debug, Clone, Copy)]
struct Particle {
    pos: [f64; 3],
    vel: [f64; 3],
}

#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    momentum: [f64; 3],
    count: f64,
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn init_particles(n: usize, seed: u64) -> Vec<Particle> {
    let mut rng = SplitMix(seed);
    (0..n)
        .map(|_| Particle {
            pos: [rng.f64(), rng.f64(), rng.f64()],
            // Wind-tunnel flow: strong +X drift, small transverse noise.
            vel: [1.0 + 0.2 * rng.f64(), 0.05 * (rng.f64() - 0.5), 0.05 * (rng.f64() - 0.5)],
        })
        .collect()
}

const GRID: usize = 8; // GRID³ cells

fn cell_index(p: &Particle) -> usize {
    let g = |x: f64| (((x.rem_euclid(1.0)) * GRID as f64) as usize).min(GRID - 1);
    (g(p.pos[0]) * GRID + g(p.pos[1])) * GRID + g(p.pos[2])
}

/// Run the particle model. `delayed_visibility` makes each virtual
/// processor work against a stale snapshot of the cell field, merging its
/// updates only at the end of each step (the lazy-RC worst case for an
/// unsynchronized program).
fn run_model(n: usize, steps: usize, procs: usize, seed: u64, delayed_visibility: bool) -> [f64; 3] {
    let mut particles = init_particles(n, seed);
    let mut cells = vec![Cell::default(); GRID * GRID * GRID];
    let dt = 0.05;

    for _step in 0..steps {
        if delayed_visibility {
            // Every processor reads the same beginning-of-step snapshot and
            // accumulates private updates, merged at the "barrier".
            let snapshot = cells.clone();
            let mut deltas: Vec<Vec<Cell>> =
                vec![vec![Cell::default(); cells.len()]; procs];
            let norm = 2.2 * n as f64 / cells.len() as f64;
            for (i, p) in particles.iter_mut().enumerate() {
                let owner = i % procs;
                advance(p, &snapshot, &mut deltas[owner], dt, norm);
            }
            for d in deltas {
                for (c, dc) in cells.iter_mut().zip(d) {
                    c.momentum[0] += dc.momentum[0];
                    c.momentum[1] += dc.momentum[1];
                    c.momentum[2] += dc.momentum[2];
                    c.count += dc.count;
                }
            }
        } else {
            // Immediate visibility: every update is seen by the next
            // particle processed, as on a sequentially consistent machine.
            let norm = 2.2 * n as f64 / cells.len() as f64;
            for p in particles.iter_mut() {
                advance_in_place(p, &mut cells, dt, norm);
            }
        }
        // Decay cell fields slowly so the coupling stays bounded but the
        // visibility model leaves a lasting imprint on trajectories.
        for c in cells.iter_mut() {
            c.momentum = [c.momentum[0] * 0.85, c.momentum[1] * 0.85, c.momentum[2] * 0.85];
            c.count *= 0.85;
        }
    }

    let mut total = [0.0; 3];
    for p in &particles {
        total[0] += p.vel[0];
        total[1] += p.vel[1];
        total[2] += p.vel[2];
    }
    total
}

/// One particle step against a read snapshot, writing into `delta`.
fn advance(p: &mut Particle, snapshot: &[Cell], delta: &mut [Cell], dt: f64, norm: f64) {
    let ci = cell_index(p);
    let c = &snapshot[ci];
    couple_and_move(p, c, dt, norm);
    let d = &mut delta[ci];
    d.momentum[0] += p.vel[0];
    d.momentum[1] += p.vel[1];
    d.momentum[2] += p.vel[2];
    d.count += 1.0;
}

/// One particle step with immediate visibility (reads and writes the live
/// cell array).
fn advance_in_place(p: &mut Particle, cells: &mut [Cell], dt: f64, norm: f64) {
    let ci = cell_index(p);
    let c = cells[ci];
    couple_and_move(p, &c, dt, norm);
    let d = &mut cells[ci];
    d.momentum[0] += p.vel[0];
    d.momentum[1] += p.vel[1];
    d.momentum[2] += p.vel[2];
    d.count += 1.0;
}

/// Collide the particle with the local mean flow, then move it.
///
/// The collision both relaxes the velocity toward the cell mean and
/// deflects it by a term that depends nonlinearly on the *difference* —
/// the DSMC-style sensitivity that lets the two visibility models leave
/// measurably different cumulative velocities (the paper saw 6.7% on one
/// axis of the real mp3d).
fn couple_and_move(p: &mut Particle, c: &Cell, dt: f64, norm: f64) {
    // DSMC-style collision selection: the collision *rate* scales with the
    // local density the processor currently observes. Under immediate (SC)
    // visibility a cell's count includes particles already processed this
    // step; under delayed visibility it is the previous step's snapshot —
    // a systematically lower value. Fewer selected collisions mean the
    // delayed run keeps more of its +X drift: exactly the kind of
    // macroscopic deviation the paper measured on the real mp3d.
    let density = c.count;
    let h = (p.pos[0] * 7919.0 + p.pos[1] * 104729.0 + p.pos[2] * 1299709.0).fract().abs();
    let collide = density > 0.0 && h < (density / norm).min(0.95);
    if collide {
        let relax = 0.45;
        let mean = [
            c.momentum[0] / c.count,
            c.momentum[1] / c.count,
            c.momentum[2] / c.count,
        ];
        let rel = [mean[0] - p.vel[0], mean[1] - p.vel[1], mean[2] - p.vel[2]];
        // Deflection: rotate part of the relative velocity between axes, so
        // small upstream differences do not simply average away.
        p.vel[0] += relax * rel[0] + 0.20 * rel[1] - 0.10 * rel[2];
        p.vel[1] += relax * rel[1] + 0.20 * rel[2] - 0.10 * rel[0];
        p.vel[2] += relax * rel[2] + 0.20 * rel[0] - 0.10 * rel[1];
        // Each collision bleeds a little streamwise momentum into the gas
        // (viscous drag): the collision *rate* now maps directly onto the
        // cumulative velocity, so the two visibility models' different
        // observed densities produce a macroscopic difference.
        p.vel[0] = p.vel[0] * 0.97 + 0.03 * 0.4;
    }
    for k in 0..3 {
        p.pos[k] = (p.pos[k] + p.vel[k] * dt).rem_euclid(1.0);
    }
}

/// Run the full experiment at the paper's scale (40000 particles, 10
/// steps) unless smaller numbers are given. Canonical seed 0.
pub fn quality_experiment(particles: usize, steps: usize, procs: usize) -> QualityResult {
    quality_experiment_seeded(particles, steps, procs, 0)
}

/// [`quality_experiment`] with an explicit input seed: a different random
/// initial particle population from the same distribution. Seed 0 is
/// bit-identical to the canonical run.
pub fn quality_experiment_seeded(
    particles: usize,
    steps: usize,
    procs: usize,
    input_seed: u64,
) -> QualityResult {
    let seed = 0x0009_3D07 ^ input_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let sc = run_model(particles, steps, procs, seed, false);
    let lazy = run_model(particles, steps, procs, seed, true);
    let norm = (sc[0] * sc[0] + sc[1] * sc[1] + sc[2] * sc[2]).sqrt().max(1e-12);
    let mut divergence_pct = [0.0; 3];
    for k in 0..3 {
        divergence_pct[k] = 100.0 * (sc[k] - lazy[k]).abs() / norm;
    }
    QualityResult { sc, lazy, divergence_pct }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_is_deterministic() {
        let a = quality_experiment(2000, 5, 8);
        let b = quality_experiment(2000, 5, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn divergence_is_small_but_nonzero() {
        let r = quality_experiment(4000, 10, 16);
        // The two visibility models must actually differ...
        assert!(r.divergence_pct.iter().any(|&d| d > 0.0), "{r:?}");
        // ...but only modestly — the paper saw ≤ 6.7% on the worst axis.
        assert!(r.divergence_pct.iter().all(|&d| d < 25.0), "{r:?}");
    }

    #[test]
    fn bulk_flow_dominates() {
        let r = quality_experiment(2000, 5, 8);
        // +X drift of ~1.0+ per particle.
        assert!(r.sc[0] > 1000.0, "{r:?}");
        assert!(r.sc[1].abs() < r.sc[0] / 10.0);
    }
}

//! Fence insertion: the paper's suggestion for data-race programs.
//!
//! Section 4.2: *"the lazy protocol can match the performance of the eager
//! protocol simply by adding fence operations in the code that would force
//! the protocol processor to process invalidations at regular intervals."*
//!
//! [`Fenced`] wraps any workload and inserts an [`Op::Fence`] every
//! `interval` memory references on each processor, so the effect of fence
//! frequency on the racy applications (mp3d, locusroute) can be measured —
//! the `ablate` experiment sweeps it.

use lrc_sim::{Op, ProcId, Workload};

/// A workload with periodic fences injected per processor.
pub struct Fenced {
    inner: Box<dyn Workload>,
    interval: u64,
    name: String,
    since_fence: Vec<u64>,
    pending: Vec<Option<Op>>,
}

impl Fenced {
    /// Wrap `inner`, fencing every `interval` memory references (≥ 1).
    pub fn new(inner: Box<dyn Workload>, interval: u64) -> Self {
        assert!(interval >= 1);
        let n = inner.num_procs();
        let name = format!("{}+fence{}", inner.name(), interval);
        Fenced { inner, interval, name, since_fence: vec![0; n], pending: vec![None; n] }
    }
}

impl Workload for Fenced {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }

    fn addr_space(&self) -> u64 {
        self.inner.addr_space()
    }

    fn num_locks(&self) -> u32 {
        self.inner.num_locks()
    }

    fn num_barriers(&self) -> u32 {
        self.inner.num_barriers()
    }

    fn next_op(&mut self, proc: ProcId) -> Op {
        if let Some(op) = self.pending[proc].take() {
            return op;
        }
        let op = self.inner.next_op(proc);
        if matches!(op, Op::Read(_) | Op::Write(_)) {
            self.since_fence[proc] += 1;
            if self.since_fence[proc] >= self.interval {
                self.since_fence[proc] = 0;
                self.pending[proc] = Some(op);
                return Op::Fence;
            }
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrc_sim::Script;

    #[test]
    fn fences_are_injected_at_the_interval() {
        let inner = Script::new(
            "t",
            vec![vec![Op::Read(0), Op::Read(4), Op::Read(8), Op::Read(12)]],
        );
        let mut f = Fenced::new(Box::new(inner), 2);
        let ops: Vec<Op> = std::iter::from_fn(|| {
            let op = f.next_op(0);
            (op != Op::Done).then_some(op)
        })
        .collect();
        assert_eq!(
            ops,
            vec![
                Op::Read(0),
                Op::Fence,
                Op::Read(4),
                Op::Read(8),
                Op::Fence,
                Op::Read(12),
            ]
        );
    }

    #[test]
    fn non_memory_ops_do_not_count() {
        let inner = Script::new(
            "t",
            vec![vec![Op::Compute(5), Op::Compute(5), Op::Read(0), Op::Read(4)]],
        );
        let mut f = Fenced::new(Box::new(inner), 2);
        let mut fences = 0;
        loop {
            match f.next_op(0) {
                Op::Done => break,
                Op::Fence => fences += 1,
                _ => {}
            }
        }
        assert_eq!(fences, 1);
    }

    #[test]
    fn metadata_passes_through() {
        let inner = Script::new("t", vec![vec![Op::Barrier(0), Op::Acquire(1), Op::Release(1)]]);
        let f = Fenced::new(Box::new(inner), 10);
        assert_eq!(f.num_procs(), 1);
        assert_eq!(f.num_barriers(), 1);
        assert_eq!(f.num_locks(), 2);
        assert!(f.name().contains("fence10"));
    }
}

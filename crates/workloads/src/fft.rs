//! `fft` — one-dimensional FFT on `n` complex points (paper: 65536),
//! organized as the classic transpose-based algorithm: local row FFTs on a
//! `√n × √n` matrix, a global transpose, then local row FFTs again.
//!
//! All communication happens in the transpose, which sits between barriers
//! — the pattern that makes fft the one program where the paper's *lazier*
//! protocol wins (write requests arrive together at the barrier and can be
//! combined by the home).

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use crate::scale::Scale;
use lrc_sim::{AddressAllocator, Op};

/// Number of complex points for `scale`.
pub fn size(scale: Scale) -> usize {
    scale.pick(65536, 32768, 16384, 4096, 1024)
}

const COMPLEX_BYTES: u64 = 16;

/// Build with an explicit input seed. The FFT is fully deterministic, so
/// the seed rotates the processor→stream placement (see
/// [`Streams::rotate`]), perturbing home-node distances in the transpose.
/// Seed 0 is bit-identical to [`build`].
pub fn build_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    build(p, scale).rotate((seed % p.max(1) as u64) as usize)
}

/// Build the workload for `p` processors.
pub fn build(p: usize, scale: Scale) -> Streams {
    let n = size(scale);
    let m = (n as f64).sqrt() as usize; // matrix is m × m
    assert_eq!(m * m, n, "fft sizes are perfect squares");
    let log_m = m.trailing_zeros() as usize;

    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let a = alloc.alloc_array(n as u64, COMPLEX_BYTES);
    let b = alloc.alloc_array(n as u64, COMPLEX_BYTES);
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 4096)).collect();
    let addr_space = alloc.used();
    let at = move |base: u64, i: usize, j: usize| base + ((i * m + j) as u64) * COMPLEX_BYTES;

    // Row i belongs to proc i*p/m (contiguous blocks of rows).
    let rows_of = move |proc: usize| -> std::ops::Range<usize> {
        let lo = proc * m / p;
        let hi = (proc + 1) * m / p;
        lo..hi
    };

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            let mut scratch = scratches.remove(0);
            let mut phase = 0u32;
            let rows = rows_of(proc);
            let f: ChunkFn = Box::new(move |out| {
                match phase {
                    0 => {
                        // Initialize own rows.
                        for i in rows.clone() {
                            for j in 0..m {
                                out.push(Op::Write(at(a, i, j)));
                                out.push(Op::Compute(2));
                            }
                        }
                        out.push(Op::Barrier(0));
                    }
                    1 => {
                        // Local FFT over own rows of A: log m butterfly
                        // passes, each touching every element.
                        for i in rows.clone() {
                            for _pass in 0..log_m {
                                for j in 0..m {
                                    out.push(Op::Read(at(a, i, j)));
                                    out.push(Op::Compute(6));
                                    out.push(Op::Write(at(a, i, j)));
                                    scratch.work(out, 8, 8);
                                }
                            }
                        }
                        out.push(Op::Barrier(1));
                    }
                    2 => {
                        // Transpose with twiddle multiply: B[i][j] = A[j][i].
                        // Reads stride across every other processor's rows,
                        // visited in the standard skewed (rotated) order so
                        // the all-to-all does not convoy on hot rows.
                        let start = rows.start;
                        for i in rows.clone() {
                            for jj in 0..m {
                                let j = (jj + start) % m;
                                out.push(Op::Read(at(a, j, i)));
                                out.push(Op::Compute(4));
                                out.push(Op::Write(at(b, i, j)));
                                scratch.work(out, 4, 4);
                            }
                        }
                        out.push(Op::Barrier(2));
                    }
                    3 => {
                        // Local FFT over own rows of B.
                        for i in rows.clone() {
                            for _pass in 0..log_m {
                                for j in 0..m {
                                    out.push(Op::Read(at(b, i, j)));
                                    out.push(Op::Compute(6));
                                    out.push(Op::Write(at(b, i, j)));
                                    scratch.work(out, 8, 8);
                                }
                            }
                        }
                        out.push(Op::Barrier(3));
                    }
                    _ => return false,
                }
                phase += 1;
                true
            });
            f
        })
        .collect();

    Streams::new("fft", addr_space, 0, 4, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn tiny_fft_is_well_formed() {
        let mut w = build(4, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        assert_eq!(s.barrier_rounds, 4);
        // n=1024, m=32, log m = 5: refs ≈ init 1024w + 2 × (1024×5×2) + transpose 2048.
        assert!(s.refs > 20_000, "refs = {}", s.refs);
    }

    #[test]
    fn row_partition_is_complete() {
        let n = size(Scale::Tiny);
        let m = (n as f64).sqrt() as usize;
        let p = 4;
        let mut covered = vec![false; m];
        for proc in 0..p {
            for (i, c) in covered
                .iter_mut()
                .enumerate()
                .take((proc + 1) * m / p)
                .skip(proc * m / p)
            {
                assert!(!*c, "row {i} covered twice");
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn works_with_more_procs_than_rows() {
        // 64 procs, 32 rows: half the procs idle but still barrier.
        let mut w = build(64, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        assert_eq!(s.barrier_rounds, 4);
    }
}

//! `racy` — a deliberately data-racy micro workload: the race detector's
//! positive-control fixture.
//!
//! The program mixes correctly synchronized traffic (a lock-protected
//! counter and a barrier-separated phase) with two *known* races at fixed
//! addresses:
//!
//! * a **write/write** race on [`WW_ADDR`]: every processor writes the
//!   word with no synchronization at all;
//! * a **write/read** race on [`WR_ADDR`]: processor 0 writes the word
//!   and every other processor reads it, again with no ordering edge.
//!
//! The synchronized portion proves the detector does not cry wolf (those
//! words must stay clean); the fixed racy addresses let tests assert the
//! detector pinpoints the right words and access kinds. The generator is
//! DRF *except* for the two planted words, so a correct detector reports
//! exactly two racy words here.

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use lrc_sim::{AddressAllocator, Op};

/// Byte address of the planted write/write race.
pub const WW_ADDR: u64 = 0;
/// Byte address of the planted write/read race.
pub const WR_ADDR: u64 = 4;
/// Lock protecting the clean shared counter.
pub const COUNTER_LOCK: u32 = 0;

/// Build the positive-control workload for `p` processors (`p >= 2`;
/// `rounds` controls the length).
pub fn build(p: usize, rounds: u32) -> Streams {
    assert!(p >= 2, "the planted races need at least two processors");
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    // The racy line comes first so WW_ADDR/WR_ADDR are stable constants.
    let racy_line = alloc.alloc(128);
    assert_eq!(racy_line, WW_ADDR);
    let counter = alloc.alloc(64);
    let phase_buf = alloc.alloc(128);
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 1024)).collect();
    let addr_space = alloc.used();

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            let mut scratch = scratches.remove(0);
            let mut round = 0u32;
            let f: ChunkFn = Box::new(move |out| {
                if round >= rounds {
                    return false;
                }
                // Clean part 1: lock-protected counter update.
                out.push(Op::Acquire(COUNTER_LOCK));
                out.push(Op::Read(counter));
                out.push(Op::Compute(4));
                out.push(Op::Write(counter));
                out.push(Op::Release(COUNTER_LOCK));
                scratch.work(out, 8, 8);

                // Planted race 1: unsynchronized write/write.
                out.push(Op::Write(WW_ADDR));

                // Planted race 2: P0 writes, everyone else reads — with no
                // edge between the write and the reads.
                if proc == 0 {
                    out.push(Op::Write(WR_ADDR));
                } else {
                    out.push(Op::Read(WR_ADDR));
                }
                scratch.work(out, 8, 8);

                // Clean part 2: barrier-separated broadcast (P0 produces,
                // everyone consumes after the barrier).
                if proc == 0 {
                    out.push(Op::Write(phase_buf));
                    out.push(Op::Write(phase_buf + 4));
                }
                out.push(Op::Barrier(0));
                out.push(Op::Read(phase_buf));
                out.push(Op::Read(phase_buf + 4));
                out.push(Op::Barrier(1));
                round += 1;
                true
            });
            f
        })
        .collect();

    Streams::new("racy", addr_space, 1, 2, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn racy_is_well_formed() {
        let mut w = build(4, 3);
        let s = validate(&mut w).expect("valid streams");
        assert_eq!(s.lock_acquires, 12);
        assert_eq!(s.barrier_rounds, 6);
        assert!(s.refs > 0);
    }

    #[test]
    fn planted_addresses_are_distinct_words() {
        assert_ne!(WW_ADDR / 4, WR_ADDR / 4);
        // Both in the first line, so even tiny-cache runs touch them.
        assert_eq!(WW_ADDR / 128, WR_ADDR / 128);
    }
}

//! `blu` — blocked right-looking LU decomposition of an `n × n` matrix
//! (paper: 448 × 448, reference [5] of the paper), with 16 × 16 blocks
//! assigned round-robin to processors.
//!
//! The matrix is stored row-major, so a block's rows are 128-byte strips;
//! with the paper's 128-byte lines the strips of horizontally adjacent
//! blocks share cache lines whenever `n` is not a multiple of the line
//! size, and block edges interleave between owners — the source of blu's
//! substantial false-sharing component (Table 2).

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use crate::scale::Scale;
use lrc_sim::{AddressAllocator, Op};

const B: usize = 16; // block edge

/// Matrix dimension for `scale`.
pub fn size(scale: Scale) -> usize {
    scale.pick(448, 320, 224, 112, 48)
}

/// Build with an explicit input seed. LU's access pattern is fully
/// deterministic — there is no randomness to reseed — so the seed rotates
/// the processor→stream placement instead (see [`Streams::rotate`]),
/// moving each block set onto a different mesh node. Seed 0 is
/// bit-identical to [`build`].
pub fn build_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    build(p, scale).rotate((seed % p.max(1) as u64) as usize)
}

/// Build the workload for `p` processors.
pub fn build(p: usize, scale: Scale) -> Streams {
    let n = size(scale);
    let nb = n / B; // blocks per dimension
    assert!(nb >= 1);

    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let a = alloc.alloc_array((n * n) as u64, 8);
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 4096)).collect();
    let addr_space = alloc.used();
    // Element (r, c) of block (bi, bj), row-major storage.
    let at = move |bi: usize, bj: usize, r: usize, c: usize| {
        a + (((bi * B + r) * n + (bj * B + c)) as u64) * 8
    };
    let owner = move |bi: usize, bj: usize| (bi + bj * nb) % p;

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            // Phases per outer iteration k: 0 = factor diagonal, 1 = solve
            // row/column panels, 2 = update trailing blocks. Phase 3 is a
            // one-time init before k = 0.
            let mut scratch = scratches.remove(0);
            let mut k = 0usize;
            let mut phase = 3u32;
            let f: ChunkFn = Box::new(move |out| {
                if phase == 3 {
                    // Initialize owned blocks.
                    for bi in 0..nb {
                        for bj in 0..nb {
                            if owner(bi, bj) == proc {
                                for r in 0..B {
                                    for c in 0..B {
                                        out.push(Op::Write(at(bi, bj, r, c)));
                                    }
                                    out.push(Op::Compute(8));
                                }
                            }
                        }
                    }
                    out.push(Op::Barrier(0));
                    phase = 0;
                    return true;
                }
                if k >= nb {
                    return false;
                }
                match phase {
                    0 => {
                        // Factor the diagonal block (its owner only).
                        if owner(k, k) == proc {
                            for r in 0..B {
                                for c in 0..B {
                                    out.push(Op::Read(at(k, k, r, c)));
                                    out.push(Op::Compute(6));
                                    out.push(Op::Write(at(k, k, r, c)));
                                }
                            }
                        }
                        out.push(Op::Barrier(1));
                        phase = 1;
                    }
                    1 => {
                        // Triangular solves on panel blocks (column k and
                        // row k), reading the diagonal block.
                        for i in (k + 1)..nb {
                            for (bi, bj) in [(i, k), (k, i)] {
                                if owner(bi, bj) == proc {
                                    for r in 0..B {
                                        for c in 0..B {
                                            out.push(Op::Read(at(k, k, r, c)));
                                            out.push(Op::Read(at(bi, bj, r, c)));
                                            out.push(Op::Compute(4));
                                            out.push(Op::Write(at(bi, bj, r, c)));
                                        }
                                    }
                                }
                            }
                        }
                        out.push(Op::Barrier(2));
                        phase = 2;
                    }
                    2 => {
                        // Trailing update: A[i][j] -= L[i][k] · U[k][j].
                        for bi in (k + 1)..nb {
                            for bj in (k + 1)..nb {
                                if owner(bi, bj) == proc {
                                    for r in 0..B {
                                        for c in 0..B {
                                            // One dot-product step per
                                            // element (inner loop folded
                                            // into the compute cost).
                                            out.push(Op::Read(at(bi, k, r, c % B)));
                                            out.push(Op::Read(at(k, bj, r % B, c)));
                                            out.push(Op::Read(at(bi, bj, r, c)));
                                            out.push(Op::Compute(2 * B as u32));
                                            out.push(Op::Write(at(bi, bj, r, c)));
                                            scratch.work(out, 3, 4);
                                        }
                                    }
                                }
                            }
                        }
                        out.push(Op::Barrier(0));
                        phase = 0;
                        k += 1;
                    }
                    _ => unreachable!(),
                }
                true
            });
            f
        })
        .collect();

    Streams::new("blu", addr_space, 0, 3, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn tiny_blu_is_well_formed() {
        let mut w = build(4, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        let nb = size(Scale::Tiny) / B;
        assert_eq!(s.barrier_rounds, 1 + 3 * nb as u64);
        assert!(s.refs > 10_000);
    }

    #[test]
    fn block_ownership_is_balanced() {
        let nb = size(Scale::Small) / B;
        let p = 7;
        let mut counts = vec![0usize; p];
        for bi in 0..nb {
            for bj in 0..nb {
                counts[(bi + bj * nb) % p] += 1;
            }
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 2, "{counts:?}");
    }
}

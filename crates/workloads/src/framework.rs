//! Chunked per-processor op-stream framework.
//!
//! Workloads are written as *chunk generators*: for each processor, a
//! closure fills a buffer with the ops of the next program phase (one outer
//! loop iteration, one task, one time step). Memory stays bounded — only
//! one chunk per processor is materialized — while the generator code reads
//! like the natural loop nest of the original program.

use lrc_sim::{Op, ProcId, Workload};

/// A per-processor chunk generator: append the next chunk of ops to `out`;
/// return `false` when the processor's program is complete.
pub type ChunkFn = Box<dyn FnMut(&mut Vec<Op>) -> bool + Send>;

/// A [`Workload`] assembled from per-processor chunk generators.
pub struct Streams {
    name: String,
    addr_space: u64,
    num_locks: u32,
    num_barriers: u32,
    fills: Vec<ChunkFn>,
    bufs: Vec<Vec<Op>>,
    cursors: Vec<usize>,
    done: Vec<bool>,
}

impl Streams {
    /// Assemble a workload. `fills.len()` fixes the processor count.
    pub fn new(
        name: impl Into<String>,
        addr_space: u64,
        num_locks: u32,
        num_barriers: u32,
        fills: Vec<ChunkFn>,
    ) -> Self {
        let n = fills.len();
        Streams {
            name: name.into(),
            addr_space,
            num_locks,
            num_barriers,
            fills,
            bufs: (0..n).map(|_| Vec::with_capacity(4096)).collect(),
            cursors: vec![0; n],
            done: vec![false; n],
        }
    }

    /// Rotate the processor→stream assignment: processor `p` executes the
    /// stream originally built for processor `(p + by) % P`.
    ///
    /// This is the seed knob for the *dense* deterministic workloads (LU,
    /// FFT, Gauss) whose access patterns contain no randomness to reseed:
    /// rotating the placement moves each slice of the data onto a
    /// different mesh node, perturbing home-node distances and contention
    /// timing without changing the computation. SPMD phase structure makes
    /// this safe — every stream participates in the same barrier episodes.
    /// `by % P == 0` is the identity, so seed 0 stays bit-identical to the
    /// unrotated build.
    pub fn rotate(mut self, by: usize) -> Self {
        let n = self.fills.len();
        if n > 0 {
            self.fills.rotate_left(by % n);
        }
        self
    }
}

impl Workload for Streams {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_procs(&self) -> usize {
        self.fills.len()
    }

    fn addr_space(&self) -> u64 {
        self.addr_space
    }

    fn num_locks(&self) -> u32 {
        self.num_locks
    }

    fn num_barriers(&self) -> u32 {
        self.num_barriers
    }

    fn next_op(&mut self, proc: ProcId) -> Op {
        loop {
            if self.cursors[proc] < self.bufs[proc].len() {
                let op = self.bufs[proc][self.cursors[proc]];
                self.cursors[proc] += 1;
                return op;
            }
            if self.done[proc] {
                return Op::Done;
            }
            self.bufs[proc].clear();
            self.cursors[proc] = 0;
            if !(self.fills[proc])(&mut self.bufs[proc]) {
                self.done[proc] = true;
            }
        }
    }
}

/// Fixed inter-array alignment: generous enough for both the default
/// (128-byte) and future-machine (256-byte) line sizes, so distinct data
/// structures never share a line by accident. False sharing *within* an
/// array is a property of the workload and is preserved.
pub const ARRAY_ALIGN: usize = 256;

/// Per-processor private data region.
///
/// Real programs spend most of their references on private data — locals,
/// scalars, loop state, per-processor buffers — which hit in the cache after
/// warm-up. The paper's miss rates (Table 3: 0.4–4.8%) are fractions of
/// *all* references, so reproducing them (and the cpu fractions of the
/// overhead figures) requires modelling that private-access stream. Each
/// workload interleaves `Scratch::work` calls with its shared accesses.
#[derive(Debug, Clone)]
pub struct Scratch {
    base: u64,
    words: u64,
    cursor: u64,
}

impl Scratch {
    /// A private region of `bytes` bytes carved from `alloc`.
    pub fn new(alloc: &mut lrc_sim::AddressAllocator, bytes: u64) -> Self {
        let base = alloc.alloc(bytes);
        Scratch { base, words: (bytes / 4).max(1), cursor: 0 }
    }

    /// Emit `reads` private reads, one private "stack" write per four reads,
    /// and `compute` cycles of arithmetic.
    ///
    /// Reads cycle through the whole region; writes rotate over a small
    /// stack-top window (64 words), matching the strong temporal locality of
    /// real private writes — under the write-through protocols they coalesce
    /// in the buffer instead of flooding the network.
    pub fn work(&mut self, out: &mut Vec<Op>, reads: u32, compute: u32) {
        const STACK_WORDS: u64 = 64;
        for k in 0..reads {
            self.cursor += 1;
            if k % 4 == 3 {
                let a = self.base + (self.cursor % STACK_WORDS) * 4;
                out.push(Op::Write(a));
            } else {
                let a = self.base
                    + (STACK_WORDS + self.cursor % (self.words - STACK_WORDS).max(1)) % self.words * 4;
                out.push(Op::Read(a));
            }
        }
        if compute > 0 {
            out.push(Op::Compute(compute));
        }
    }
}

/// Convenience ops builder used by the generators.
#[derive(Debug, Default)]
pub struct OpsBuilder;

impl OpsBuilder {
    /// Read an 8-byte (double) element at `addr`.
    #[inline]
    pub fn read_f64(out: &mut Vec<Op>, addr: u64) {
        out.push(Op::Read(addr));
    }

    /// Write an 8-byte (double) element at `addr`.
    #[inline]
    pub fn write_f64(out: &mut Vec<Op>, addr: u64) {
        out.push(Op::Write(addr));
    }

    /// Read-modify-write with `flops` cycles of arithmetic.
    #[inline]
    pub fn rmw(out: &mut Vec<Op>, addr: u64, flops: u32) {
        out.push(Op::Read(addr));
        if flops > 0 {
            out.push(Op::Compute(flops));
        }
        out.push(Op::Write(addr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_deliver_chunks_in_order() {
        let mut calls = 0usize;
        let fills: Vec<ChunkFn> = vec![Box::new(move |out| {
            calls += 1;
            if calls <= 2 {
                out.push(Op::Compute(calls as u32));
                out.push(Op::Read(calls as u64 * 8));
                true
            } else {
                false
            }
        })];
        let mut w = Streams::new("t", 64, 0, 0, fills);
        assert_eq!(w.next_op(0), Op::Compute(1));
        assert_eq!(w.next_op(0), Op::Read(8));
        assert_eq!(w.next_op(0), Op::Compute(2));
        assert_eq!(w.next_op(0), Op::Read(16));
        assert_eq!(w.next_op(0), Op::Done);
        assert_eq!(w.next_op(0), Op::Done);
    }

    #[test]
    fn empty_chunks_are_skipped() {
        let mut calls = 0usize;
        let fills: Vec<ChunkFn> = vec![Box::new(move |out| {
            calls += 1;
            match calls {
                1 | 2 => true, // empty chunk
                3 => {
                    out.push(Op::Compute(7));
                    true
                }
                _ => false,
            }
        })];
        let mut w = Streams::new("t", 64, 0, 0, fills);
        assert_eq!(w.next_op(0), Op::Compute(7));
        assert_eq!(w.next_op(0), Op::Done);
    }

    #[test]
    fn procs_are_independent() {
        let mk = |tag: u32| -> ChunkFn {
            let mut sent = false;
            Box::new(move |out| {
                if sent {
                    return false;
                }
                sent = true;
                out.push(Op::Compute(tag));
                true
            })
        };
        let mut w = Streams::new("t", 64, 0, 0, vec![mk(1), mk(2)]);
        assert_eq!(w.next_op(1), Op::Compute(2));
        assert_eq!(w.next_op(0), Op::Compute(1));
        assert_eq!(w.next_op(1), Op::Done);
        assert_eq!(w.next_op(0), Op::Done);
    }
}

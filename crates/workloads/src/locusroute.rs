//! `locusroute` — VLSI standard-cell router (paper input: Primary2.grin,
//! 3029 wires).
//!
//! Wires are routed through a shared cost grid: each wire evaluates two
//! candidate L-shaped routes (read-only sweeps over the grid), picks one,
//! and bumps the occupancy of every cell along it. The cost-grid updates
//! are deliberately *unsynchronized* — locusroute is one of the two
//! programs the paper notes does not obey the release-consistency model —
//! and, with 4-byte cells packed 32 to a line, neighboring wires produce
//! the heavy false sharing of Table 2 (33%).
//!
//! Substitution note: Primary2's geometry is replaced by a fixed-seed
//! synthetic channel grid of comparable size (768 × 96 cells ≈ 288 KB,
//! comfortably exceeding the 128 KB cache) and random wire endpoints with
//! bounded spans. Task distribution is static round-robin with the task
//! queue's lock/head traffic preserved.

use crate::framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
use crate::scale::Scale;
use lrc_sim::{AddressAllocator, Op, Rng};

const GRID_W: usize = 768;
const GRID_H: usize = 96;
const CELL_BYTES: u64 = 4;
const QUEUE_LOCK: u32 = 0;

/// Number of wires for `scale`.
pub fn size(scale: Scale) -> usize {
    scale.pick(3029, 2048, 1024, 256, 64)
}

/// Build the workload for `p` processors (canonical seed 0).
pub fn build(p: usize, scale: Scale) -> Streams {
    build_seeded(p, scale, 0)
}

/// Build with an explicit input seed: different random wire endpoints
/// from the same span distribution. Seed 0 is bit-identical to [`build`].
pub fn build_seeded(p: usize, scale: Scale, seed: u64) -> Streams {
    let seed_mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let nwires = size(scale);
    let mut alloc = AddressAllocator::new(ARRAY_ALIGN);
    let queue = alloc.alloc(64);
    let grid = alloc.alloc_array((GRID_W * GRID_H) as u64, CELL_BYTES);
    let mut scratches: Vec<Scratch> = (0..p).map(|_| Scratch::new(&mut alloc, 4096)).collect();
    let addr_space = alloc.used();
    let cell = move |x: usize, y: usize| grid + ((y * GRID_W + x) as u64) * CELL_BYTES;

    let fills: Vec<ChunkFn> = (0..p)
        .map(|proc| {
            let mut scratch = scratches.remove(0);
            let mut rng = Rng::new(0x10C05 ^ seed_mix ^ (proc as u64).wrapping_mul(0x517C_C1B7));
            let mut next_wire = proc;
            let f: ChunkFn = Box::new(move |out| {
                if next_wire >= nwires {
                    return false;
                }
                next_wire += p;

                // Draw a wire from the shared work queue.
                out.push(Op::Acquire(QUEUE_LOCK));
                out.push(Op::Read(queue));
                out.push(Op::Compute(4));
                out.push(Op::Write(queue));
                out.push(Op::Release(QUEUE_LOCK));

                // Wire endpoints with bounded span.
                let x0 = rng.below((GRID_W - 64) as u64) as usize;
                let y0 = rng.below((GRID_H - 24) as u64) as usize;
                let dx = 8 + rng.below(56) as usize;
                let dy = 4 + rng.below(20) as usize;
                let (x1, y1) = (x0 + dx, y0 + dy);

                // Candidate 1: horizontal then vertical. Candidate 2:
                // vertical then horizontal. Cost evaluation reads only.
                for x in x0..=x1 {
                    out.push(Op::Read(cell(x, y0)));
                    scratch.work(out, 2, 2);
                }
                for y in y0..=y1 {
                    out.push(Op::Read(cell(x1, y)));
                    scratch.work(out, 2, 2);
                }
                out.push(Op::Compute(32));
                for y in y0..=y1 {
                    out.push(Op::Read(cell(x0, y)));
                    scratch.work(out, 2, 2);
                }
                for x in x0..=x1 {
                    out.push(Op::Read(cell(x, y1)));
                    scratch.work(out, 2, 2);
                }
                out.push(Op::Compute(32));

                // Commit the cheaper route: unsynchronized read-modify-write
                // of every cell along it.
                if rng.chance(0.5) {
                    for x in x0..=x1 {
                        out.push(Op::Read(cell(x, y0)));
                        out.push(Op::Write(cell(x, y0)));
                        scratch.work(out, 3, 3);
                    }
                    for y in y0..=y1 {
                        out.push(Op::Read(cell(x1, y)));
                        out.push(Op::Write(cell(x1, y)));
                        scratch.work(out, 3, 3);
                    }
                } else {
                    for y in y0..=y1 {
                        out.push(Op::Read(cell(x0, y)));
                        out.push(Op::Write(cell(x0, y)));
                        scratch.work(out, 3, 3);
                    }
                    for x in x0..=x1 {
                        out.push(Op::Read(cell(x, y1)));
                        out.push(Op::Write(cell(x, y1)));
                        scratch.work(out, 3, 3);
                    }
                }
                out.push(Op::Compute(40));
                true
            });
            f
        })
        .collect();

    Streams::new("locusroute", addr_space, 1, 0, fills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn tiny_locusroute_is_well_formed() {
        let mut w = build(4, Scale::Tiny);
        let s = validate(&mut w).expect("valid streams");
        assert_eq!(s.lock_acquires, size(Scale::Tiny) as u64);
    }

    #[test]
    fn grid_exceeds_cache() {
        assert!(GRID_W * GRID_H * CELL_BYTES as usize > 128 * 1024);
    }

    #[test]
    fn cells_pack_many_per_line() {
        assert_eq!(128 / CELL_BYTES, 32);
    }
}

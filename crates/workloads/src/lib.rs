//! `lrc-workloads` — the application suite: op-stream reproductions of the
//! seven SPLASH programs the paper evaluates (Section 3), plus the mp3d
//! solution-quality functional experiment (Section 4.2).
//!
//! Each workload reproduces the original program's loop structure, data
//! partitioning, record packing (hence false-sharing geometry), and
//! synchronization (locks / barriers / work queues). Data-dependent
//! structure (tree shape, routes, sparsity) is synthesized from fixed
//! seeds — see the substitution notes in each module and DESIGN.md §3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

pub mod barnes;
pub mod blu;
pub mod cholesky;
pub mod fenced;
pub mod fft;
pub mod framework;
pub mod gauss;
pub mod locusroute;
pub mod micro;
pub mod mp3d;
pub mod quality;
pub mod racy;
pub mod scale;
pub mod validate;

pub use fenced::Fenced;
pub use framework::{ChunkFn, Scratch, Streams, ARRAY_ALIGN};
pub use quality::{quality_experiment, quality_experiment_seeded, QualityResult};
pub use scale::Scale;
pub use validate::{validate, StreamSummary};

use lrc_sim::Workload;

/// The seven applications of the paper's Table 2, in its row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Barnes-Hut N-body (4K bodies, 4 steps).
    Barnes,
    /// Blocked right-looking LU (448×448).
    Blu,
    /// Sparse Cholesky factorization (bcsstk15-scale).
    Cholesky,
    /// 1-D FFT (65536 points).
    Fft,
    /// Gaussian elimination without pivoting (448×448).
    Gauss,
    /// VLSI standard-cell router (Primary2-scale, 3029 wires).
    Locusroute,
    /// Wind-tunnel particle simulation (40000 particles, 10 steps).
    Mp3d,
}

impl WorkloadKind {
    /// All seven, in the paper's table order.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Barnes,
        WorkloadKind::Blu,
        WorkloadKind::Cholesky,
        WorkloadKind::Fft,
        WorkloadKind::Gauss,
        WorkloadKind::Locusroute,
        WorkloadKind::Mp3d,
    ];

    /// Stable report/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Barnes => "barnes",
            WorkloadKind::Blu => "blu",
            WorkloadKind::Cholesky => "cholesky",
            WorkloadKind::Fft => "fft",
            WorkloadKind::Gauss => "gauss",
            WorkloadKind::Locusroute => "locusroute",
            WorkloadKind::Mp3d => "mp3d",
        }
    }

    /// Display name matching the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            WorkloadKind::Barnes => "Barnes-Hut",
            WorkloadKind::Blu => "Blocked-LU",
            WorkloadKind::Cholesky => "Cholesky",
            WorkloadKind::Fft => "Fft",
            WorkloadKind::Gauss => "Gauss",
            WorkloadKind::Locusroute => "Locusroute",
            WorkloadKind::Mp3d => "Mp3d",
        }
    }

    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL.into_iter().find(|k| k.name() == s.to_ascii_lowercase())
    }

    /// Build this workload for `num_procs` processors at `scale`
    /// (canonical seed 0).
    pub fn build(self, num_procs: usize, scale: Scale) -> Box<dyn Workload> {
        self.build_seeded(num_procs, scale, 0)
    }

    /// Build with an explicit input seed — the cross-seed variation axis
    /// for the statistics layer. Generators with synthesized random
    /// structure (barnes, cholesky, locusroute, mp3d) reseed their PRNG;
    /// fully deterministic ones (blu, fft, gauss) rotate the
    /// processor→stream placement instead. Seed 0 is always bit-identical
    /// to [`WorkloadKind::build`], so golden fingerprints are unaffected.
    pub fn build_seeded(self, num_procs: usize, scale: Scale, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Barnes => Box::new(barnes::build_seeded(num_procs, scale, seed)),
            WorkloadKind::Blu => Box::new(blu::build_seeded(num_procs, scale, seed)),
            WorkloadKind::Cholesky => Box::new(cholesky::build_seeded(num_procs, scale, seed)),
            WorkloadKind::Fft => Box::new(fft::build_seeded(num_procs, scale, seed)),
            WorkloadKind::Gauss => Box::new(gauss::build_seeded(num_procs, scale, seed)),
            WorkloadKind::Locusroute => Box::new(locusroute::build_seeded(num_procs, scale, seed)),
            WorkloadKind::Mp3d => Box::new(mp3d::build_seeded(num_procs, scale, seed)),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build the full seven-application suite at `scale`.
pub fn paper_suite(num_procs: usize, scale: Scale) -> Vec<Box<dyn Workload>> {
    WorkloadKind::ALL.iter().map(|k| k.build(num_procs, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_roundtrip() {
        for k in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::parse(k.name()), Some(k));
        }
        assert_eq!(WorkloadKind::parse("nope"), None);
    }

    #[test]
    fn suite_has_seven_members() {
        let suite = paper_suite(4, Scale::Tiny);
        assert_eq!(suite.len(), 7);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["barnes", "blu", "cholesky", "fft", "gauss", "locusroute", "mp3d"]
        );
    }

    #[test]
    fn every_workload_validates_at_tiny_scale() {
        for k in WorkloadKind::ALL {
            let mut w = k.build(4, Scale::Tiny);
            let s = validate(w.as_mut()).unwrap_or_else(|e| panic!("{k}: {e}"));
            assert!(s.refs > 500, "{k}: refs = {}", s.refs);
        }
    }

    #[test]
    fn seed_zero_is_identity_and_nonzero_diverges() {
        for k in WorkloadKind::ALL {
            let mut a = k.build(4, Scale::Tiny);
            let mut b = k.build_seeded(4, Scale::Tiny, 0);
            for _ in 0..2000 {
                assert_eq!(a.next_op(0), b.next_op(0), "{k}: seed 0 must be bit-identical");
            }
            // A nonzero seed must still validate and must actually change
            // the op stream of some processor.
            let mut c = k.build_seeded(4, Scale::Tiny, 1);
            validate(c.as_mut()).unwrap_or_else(|e| panic!("{k} seed 1: {e}"));
            let mut base = k.build(4, Scale::Tiny);
            let mut seeded = k.build_seeded(4, Scale::Tiny, 1);
            let mut diverged = false;
            'scan: for proc in 0..4 {
                for _ in 0..20000 {
                    if base.next_op(proc) != seeded.next_op(proc) {
                        diverged = true;
                        break 'scan;
                    }
                }
            }
            assert!(diverged, "{k}: seed 1 must perturb the op stream");
        }
    }

    #[test]
    fn every_workload_validates_with_64_procs() {
        for k in WorkloadKind::ALL {
            let mut w = k.build(64, Scale::Tiny);
            validate(w.as_mut()).unwrap_or_else(|e| panic!("{k}: {e}"));
        }
    }
}

//! Serde round-trips for everything the experiment harness serializes.

use lrc_sim::{Breakdown, MachineConfig, MachineStats, MissClass, MissCounts, ProcStats, Protocol};

#[test]
fn machine_config_roundtrips() {
    let cfg = MachineConfig::future_machine(64);
    let s = serde_json::to_string(&cfg).unwrap();
    let back: MachineConfig = serde_json::from_str(&s).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn protocol_names_serialize_stably() {
    for p in Protocol::ALL {
        let s = serde_json::to_string(&p).unwrap();
        let back: Protocol = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}

#[test]
fn stats_roundtrip_preserves_counts() {
    let mut stats = MachineStats::new(2);
    stats.procs[0].refs = 100;
    stats.procs[0].read_misses = 7;
    stats.procs[0].miss_classes.record(MissClass::FalseShare);
    stats.procs[0].breakdown = Breakdown { cpu: 1, read: 2, write: 3, sync: 4 };
    stats.total_cycles = 1234;
    let s = serde_json::to_string(&stats).unwrap();
    let back: MachineStats = serde_json::from_str(&s).unwrap();
    assert_eq!(back.total_cycles, 1234);
    assert_eq!(back.procs[0].refs, 100);
    assert_eq!(back.procs[0].miss_classes.get(MissClass::FalseShare), 1);
    assert_eq!(back.procs[0].breakdown.total(), 10);
}

#[test]
fn proc_stats_defaults_are_zero() {
    let p = ProcStats::default();
    assert_eq!(p.total_misses(), 0);
    assert_eq!(p.miss_rate(), 0.0);
    let m = MissCounts::default();
    assert_eq!(m.total(), 0);
}

//! JSON round-trips for everything the experiment harness serializes,
//! through the workspace's offline `lrc-json` layer (text out, parse back,
//! reconstruct).

use lrc_json::{FromJson, ToJson};
use lrc_sim::{Breakdown, MachineConfig, MachineStats, MissClass, MissCounts, ProcStats, Protocol};

fn roundtrip<T: ToJson + FromJson>(x: &T) -> T {
    let text = x.to_json().pretty();
    let v = lrc_json::parse(&text).expect("rendered JSON parses back");
    T::from_json(&v).expect("value reconstructs")
}

#[test]
fn machine_config_roundtrips() {
    let cfg = MachineConfig::future_machine(64);
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn protocol_names_serialize_stably() {
    for p in Protocol::ALL {
        assert_eq!(roundtrip(&p), p);
        assert_eq!(p.to_json().as_str(), Some(p.name()));
    }
}

#[test]
fn stats_roundtrip_preserves_counts() {
    let mut stats = MachineStats::new(2);
    stats.procs[0].refs = 100;
    stats.procs[0].read_misses = 7;
    stats.procs[0].miss_classes.record(MissClass::FalseShare);
    stats.procs[0].breakdown = Breakdown { cpu: 1, read: 2, write: 3, sync: 4 };
    stats.total_cycles = 1234;
    let back = roundtrip(&stats);
    assert_eq!(back.total_cycles, 1234);
    assert_eq!(back.procs[0].refs, 100);
    assert_eq!(back.procs[0].miss_classes.get(MissClass::FalseShare), 1);
    assert_eq!(back.procs[0].breakdown.total(), 10);
}

#[test]
fn proc_stats_defaults_are_zero() {
    let p = ProcStats::default();
    assert_eq!(p.total_misses(), 0);
    assert_eq!(p.miss_rate(), 0.0);
    let m = MissCounts::default();
    assert_eq!(m.total(), 0);
}

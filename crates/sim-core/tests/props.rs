//! Randomized property tests for the simulation kernel, driven by the
//! crate's own deterministic PRNG (the workspace builds offline, so no
//! external property-testing framework is used).

use lrc_sim::{EventQueue, LineAddr, MachineConfig, Rng};

#[test]
fn event_queue_is_time_ordered() {
    let mut rng = Rng::new(0x5eed_0001);
    for _ in 0..50 {
        let n = 1 + rng.below(300) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(rng.below(1000), i as u64, i);
        }
        let mut last_t = 0;
        let mut seen_at_t: Vec<usize> = Vec::new();
        while let Some((t, i)) = q.pop() {
            assert!(t >= last_t);
            if t != last_t {
                seen_at_t.clear();
                last_t = t;
            }
            // Key order within a timestamp: indices (= keys) increase.
            if let Some(&prev) = seen_at_t.last() {
                assert!(i > prev);
            }
            seen_at_t.push(i);
        }
    }
}

#[test]
fn pop_nth_fires_any_pending_event_and_keeps_time_monotone() {
    let mut rng = Rng::new(0x5eed_0002);
    for _ in 0..50 {
        let n = 1 + rng.below(40) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(rng.below(100), i as u64, i);
        }
        let mut remaining = n;
        let mut last_now = 0;
        while remaining > 0 {
            let pending = q.pending_times();
            assert_eq!(pending.len(), remaining);
            let pick = rng.below(remaining as u64) as usize;
            let (t, _) = q.pop_nth(pick).expect("index in range");
            // Effective firing time is monotone even when events fire out
            // of schedule order, and never before the event's schedule.
            assert!(t >= last_now);
            assert!(t >= pending[pick]);
            assert_eq!(q.now(), t);
            last_now = t;
            remaining -= 1;
        }
        assert!(q.pop_nth(0).is_none());
    }
}

#[test]
fn line_addr_roundtrip() {
    let mut rng = Rng::new(0x5eed_0003);
    for _ in 0..500 {
        let addr = rng.below(1_000_000);
        let shift = 5 + rng.below(4) as u32;
        let line_size = 1usize << shift;
        let line = LineAddr::containing(addr, line_size);
        assert!(line.base(line_size) <= addr);
        assert!(addr < line.base(line_size) + line_size as u64);
        let w = line.word_index(addr, line_size, 4);
        assert!(w < line_size / 4);
    }
}

#[test]
fn placement_is_total() {
    let mut rng = Rng::new(0x5eed_0004);
    for _ in 0..500 {
        let addr = rng.below(100_000_000);
        let procs = 1 + rng.below(64) as usize;
        let cfg = MachineConfig::paper_default(procs);
        assert!(cfg.home_of(addr) < procs);
    }
}

#[test]
fn rng_below_is_bounded() {
    let mut seeds = Rng::new(0x5eed_0005);
    for _ in 0..100 {
        let mut r = Rng::new(seeds.next_u64());
        let n = 1 + seeds.below(10_000);
        for _ in 0..50 {
            assert!(r.below(n) < n);
        }
    }
}

/// Reference event queue: a plain binary heap over `(time, key, seq)` —
/// the caller's tie key first, a global insertion counter to keep equal
/// keys stable — plus the same `now` clamp/advance rules as the real
/// queue. Obviously correct, O(log n) everywhere — the oracle the
/// calendar implementation must match.
struct RefQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, u64, u32)>>,
    seq: u64,
    now: u64,
}

impl RefQueue {
    fn new() -> Self {
        RefQueue { heap: std::collections::BinaryHeap::new(), seq: 0, now: 0 }
    }

    fn push(&mut self, time: u64, key: u64, payload: u32) {
        let time = time.max(self.now);
        self.heap.push(std::cmp::Reverse((time, key, self.seq, payload)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let std::cmp::Reverse((t, _, _, v)) = self.heap.pop()?;
        self.now = self.now.max(t);
        Some((self.now, v))
    }

    /// The `n`-th event in (time, key) order: pop `n + 1`, reinsert the
    /// first `n`.
    fn pop_nth(&mut self, n: usize) -> Option<(u64, u32)> {
        if n >= self.heap.len() {
            return None;
        }
        let mut skipped = Vec::with_capacity(n);
        for _ in 0..n {
            skipped.push(self.heap.pop().expect("length checked"));
        }
        let std::cmp::Reverse((t, _, _, v)) = self.heap.pop().expect("length checked");
        for e in skipped {
            self.heap.push(e);
        }
        self.now = self.now.max(t);
        Some((self.now, v))
    }

    fn pending_times(&self) -> Vec<u64> {
        let mut all: Vec<(u64, u64, u64)> =
            self.heap.iter().map(|&std::cmp::Reverse((t, k, s, _))| (t, k, s)).collect();
        all.sort_unstable();
        all.into_iter().map(|(t, ..)| t).collect()
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|&std::cmp::Reverse((t, ..))| t)
    }
}

/// The two-tier calendar queue is observationally equivalent to the
/// reference binary heap under random interleavings of push / pop /
/// pop_nth, including same-cycle FIFO ties, the far-future overflow rung,
/// and the tiny-to-calendar promotion boundary.
#[test]
fn event_queue_matches_binary_heap_reference() {
    let mut rng = Rng::new(0x5eed_0006);
    for case in 0..60 {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut r = RefQueue::new();
        // Small cases stay on the flat tier; large ones promote mid-stream.
        let ops = if case % 2 == 0 { 80 } else { 600 };
        let mut next_payload = 0u32;
        for _ in 0..ops {
            match rng.below(100) {
                // Push: mostly near-future (the simulator's regime), with
                // occasional same-cycle ties and far-future outliers that
                // must take the calendar's overflow rung.
                0..=59 => {
                    let t = match rng.below(10) {
                        0 => q.now(),                    // same-cycle tie
                        1 => q.now() + 2_000 + rng.below(3_000), // overflow
                        _ => q.now() + rng.below(400),
                    };
                    // Random keys: same-cycle order must follow the key,
                    // not insertion order (equal keys stay stable).
                    let k = rng.below(8);
                    q.push(t, k, next_payload);
                    r.push(t, k, next_payload);
                    next_payload += 1;
                }
                60..=84 => {
                    assert_eq!(q.pop(), r.pop());
                    assert_eq!(q.now(), r.now);
                }
                85..=94 => {
                    let n = rng.below(1 + q.len() as u64 + 2) as usize;
                    assert_eq!(q.pop_nth(n), r.pop_nth(n));
                    assert_eq!(q.now(), r.now);
                }
                _ => {
                    assert_eq!(q.len(), r.heap.len());
                    assert_eq!(q.peek_time(), r.peek_time());
                    assert_eq!(q.pending_times(), r.pending_times());
                }
            }
        }
        // Drain both to empty, comparing every remaining event.
        loop {
            let (a, b) = (q.pop(), r.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

//! Property tests for the simulation kernel.

use lrc_sim::{EventQueue, LineAddr, MachineConfig, Rng};
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order, FIFO within a timestamp.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last_t = 0;
        let mut seen_at_t: Vec<usize> = Vec::new();
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last_t);
            if t != last_t {
                seen_at_t.clear();
                last_t = t;
            }
            // FIFO within a timestamp: indices increase.
            if let Some(&prev) = seen_at_t.last() {
                prop_assert!(i > prev);
            }
            seen_at_t.push(i);
        }
    }

    /// Line addressing round-trips for every power-of-two line size.
    #[test]
    fn line_addr_roundtrip(addr in 0u64..1_000_000, shift in 5u32..9) {
        let line_size = 1usize << shift;
        let line = LineAddr::containing(addr, line_size);
        prop_assert!(line.base(line_size) <= addr);
        prop_assert!(addr < line.base(line_size) + line_size as u64);
        let w = line.word_index(addr, line_size, 4);
        prop_assert!(w < line_size / 4);
    }

    /// Round-robin placement spreads pages over all nodes.
    #[test]
    fn placement_is_total(addr in 0u64..100_000_000, procs in 1usize..64) {
        let cfg = MachineConfig::paper_default(procs);
        prop_assert!(cfg.home_of(addr) < procs);
    }

    /// The PRNG's bounded draws respect their bounds.
    #[test]
    fn rng_below_is_bounded(seed in any::<u64>(), n in 1u64..10_000) {
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(n) < n);
        }
    }
}

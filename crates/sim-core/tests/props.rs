//! Randomized property tests for the simulation kernel, driven by the
//! crate's own deterministic PRNG (the workspace builds offline, so no
//! external property-testing framework is used).

use lrc_sim::{EventQueue, LineAddr, MachineConfig, Rng};

#[test]
fn event_queue_is_time_ordered() {
    let mut rng = Rng::new(0x5eed_0001);
    for _ in 0..50 {
        let n = 1 + rng.below(300) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(rng.below(1000), i);
        }
        let mut last_t = 0;
        let mut seen_at_t: Vec<usize> = Vec::new();
        while let Some((t, i)) = q.pop() {
            assert!(t >= last_t);
            if t != last_t {
                seen_at_t.clear();
                last_t = t;
            }
            // FIFO within a timestamp: indices increase.
            if let Some(&prev) = seen_at_t.last() {
                assert!(i > prev);
            }
            seen_at_t.push(i);
        }
    }
}

#[test]
fn pop_nth_fires_any_pending_event_and_keeps_time_monotone() {
    let mut rng = Rng::new(0x5eed_0002);
    for _ in 0..50 {
        let n = 1 + rng.below(40) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(rng.below(100), i);
        }
        let mut remaining = n;
        let mut last_now = 0;
        while remaining > 0 {
            let pending = q.pending_times();
            assert_eq!(pending.len(), remaining);
            let pick = rng.below(remaining as u64) as usize;
            let (t, _) = q.pop_nth(pick).expect("index in range");
            // Effective firing time is monotone even when events fire out
            // of schedule order, and never before the event's schedule.
            assert!(t >= last_now);
            assert!(t >= pending[pick]);
            assert_eq!(q.now(), t);
            last_now = t;
            remaining -= 1;
        }
        assert!(q.pop_nth(0).is_none());
    }
}

#[test]
fn line_addr_roundtrip() {
    let mut rng = Rng::new(0x5eed_0003);
    for _ in 0..500 {
        let addr = rng.below(1_000_000);
        let shift = 5 + rng.below(4) as u32;
        let line_size = 1usize << shift;
        let line = LineAddr::containing(addr, line_size);
        assert!(line.base(line_size) <= addr);
        assert!(addr < line.base(line_size) + line_size as u64);
        let w = line.word_index(addr, line_size, 4);
        assert!(w < line_size / 4);
    }
}

#[test]
fn placement_is_total() {
    let mut rng = Rng::new(0x5eed_0004);
    for _ in 0..500 {
        let addr = rng.below(100_000_000);
        let procs = 1 + rng.below(64) as usize;
        let cfg = MachineConfig::paper_default(procs);
        assert!(cfg.home_of(addr) < procs);
    }
}

#[test]
fn rng_below_is_bounded() {
    let mut seeds = Rng::new(0x5eed_0005);
    for _ in 0..100 {
        let mut r = Rng::new(seeds.next_u64());
        let n = 1 + seeds.below(10_000);
        for _ in 0..50 {
            assert!(r.below(n) < n);
        }
    }
}

//! Machine configuration: every knob from Table 1 of the paper, plus the
//! structural parameters (write-buffer depth, page size, placement policy)
//! fixed in the paper's text.

use crate::types::Protocol;

/// A machine configuration rejected by [`MachineConfig::validate`]: names
/// the offending field so config errors are actionable instead of opaque.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The `MachineConfig` field (or field combination) at fault.
    pub field: &'static str,
    /// What is wrong with it.
    pub why: String,
}

impl ConfigError {
    fn new(field: &'static str, why: impl Into<String>) -> Self {
        ConfigError { field, why: why.into() }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine config field `{}`: {}", self.field, self.why)
    }
}

impl std::error::Error for ConfigError {}

/// Policy for assigning pages of the shared address space to home nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Page `i` lives at node `i mod P`. The default; spreads directory and
    /// memory load and is what most simulators of the era did.
    RoundRobinPages,
    /// Every page lives at node 0. Useful in tests to concentrate contention.
    AllAtZero,
    /// A page is homed at the first node that touches it (the machine
    /// records the assignment at the first reference). Improves locality
    /// for partitioned data at the cost of imbalance on shared structures.
    FirstTouch,
}

/// Finite protocol-resource limits. The paper's protocols run on
/// programmable protocol processors with *finite* hardware — bounded
/// network-interface queues, a directory with limited request storage, and
/// a write-notice buffer of fixed size. Each limit here is optional:
/// `None` models the idealized unbounded structure (the default, which
/// preserves the golden fingerprints), `Some(k)` bounds it at `k` and
/// routes overflow through the graceful-degradation paths (BUSY-NACK +
/// retry backpressure, or the conservative invalidate-all fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Per-node NI ingress (receive) queue depth: at most this many
    /// messages may be in flight *into* one node at once. `None` =
    /// unbounded.
    pub ni_ingress: Option<usize>,
    /// Per-node NI egress (send) queue depth: at most this many messages
    /// may be queued *out of* one node at once. `None` = unbounded.
    pub ni_egress: Option<usize>,
    /// Directory request slots per line: how many requests a home may park
    /// against a busy/transient entry before it starts BUSY-NACKing
    /// newcomers back to the requester. `Some(0)` = NACK every request
    /// that races an in-flight transaction (pure DASH-style backoff);
    /// `None` = park everything (the idealized unbounded queue).
    pub dir_request_slots: Option<usize>,
    /// Per-node write-notice buffer capacity (lazy protocols): how many
    /// distinct lines may be queued for invalidation-at-next-acquire.
    /// Overflow sets the conservative "invalidate everything at the next
    /// acquire" bit instead of losing a notice. `None` = unbounded.
    pub write_notice_buffer: Option<usize>,
    /// Base delay in cycles for the capped exponential backoff applied to
    /// NACKed and NI-rejected messages (doubles per attempt, capped).
    pub nack_backoff_base: u64,
    /// BUSY-NACKs a home will send per busy episode of one line before it
    /// parks the request anyway, guaranteeing forward progress without
    /// unbounded retry storms.
    pub nack_retry_budget: u32,
}

/// Attempts beyond this shift count stop growing the backoff (2^6 = 64×
/// base), mirroring the link layer's `BACKOFF_CAP`.
const NACK_BACKOFF_CAP: u32 = 6;

impl ResourceLimits {
    /// The idealized machine: every queue and table unbounded. This is the
    /// default and leaves simulation results bit-identical to a build
    /// without resource modeling.
    pub fn unbounded() -> Self {
        ResourceLimits {
            ni_ingress: None,
            ni_egress: None,
            dir_request_slots: None,
            write_notice_buffer: None,
            nack_backoff_base: 40,
            nack_retry_budget: 8,
        }
    }

    /// Capped exponential backoff before retrying a rejected message:
    /// `base << min(attempt, 6)`, never zero so retries always make time
    /// progress.
    pub fn backoff(&self, attempt: u32) -> u64 {
        (self.nack_backoff_base << attempt.min(NACK_BACKOFF_CAP)).max(1)
    }

    /// True when no limit is set — the hot paths skip all occupancy
    /// tracking in this case.
    pub fn is_unbounded(&self) -> bool {
        self.ni_ingress.is_none()
            && self.ni_egress.is_none()
            && self.dir_request_slots.is_none()
            && self.write_notice_buffer.is_none()
    }
}

impl Default for ResourceLimits {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Full description of the simulated machine.
///
/// [`MachineConfig::paper_default`] matches Table 1 of the paper;
/// [`MachineConfig::future_machine`] matches the "hypothetical future
/// machine" of Section 4.3 (Figures 8 and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of processors (= nodes). The paper evaluates 64.
    pub num_procs: usize,
    /// Cache line size in bytes (Table 1: 128).
    pub line_size: usize,
    /// Per-node cache capacity in bytes (Table 1: 128 KB).
    pub cache_size: usize,
    /// Cache associativity (Table 1: direct-mapped = 1).
    pub cache_assoc: usize,
    /// Memory setup (startup) time in cycles (Table 1: 20).
    pub mem_setup: u64,
    /// Memory bandwidth in bytes per cycle (Table 1: 2).
    pub mem_bytes_per_cycle: u64,
    /// Node bus bandwidth in bytes per cycle (Table 1: 2).
    pub bus_bytes_per_cycle: u64,
    /// Network link bandwidth in bytes per cycle, bidirectional (Table 1: 2).
    pub net_bytes_per_cycle: u64,
    /// Latency of one mesh switch in cycles (Table 1: 2).
    pub switch_latency: u64,
    /// Latency of one wire segment in cycles (Table 1: 1).
    pub wire_latency: u64,
    /// Protocol-processor cost of handling one write notice (Table 1: 4).
    pub write_notice_cost: u64,
    /// Directory access cost for the lazy protocols (Table 1: 25).
    pub dir_cost_lazy: u64,
    /// Directory access cost for ERC and SC (Table 1: 15).
    pub dir_cost_eager: u64,
    /// Entries in the processor write buffer used by the relaxed protocols
    /// (paper Section 4.2: 4, with read bypass and coalescing).
    pub write_buffer_entries: usize,
    /// Entries in the fully-associative coalescing write-through buffer used
    /// by the lazy protocols (paper Section 4.2: 16).
    pub coalescing_buffer_entries: usize,
    /// Page size for home-node placement.
    pub page_size: usize,
    /// Size in bytes of a control (data-less) protocol message header.
    pub ctrl_msg_bytes: u64,
    /// Word size in bytes; per-word dirty bits and the miss classifier work
    /// at this granularity (MIPS II: 4).
    pub word_size: usize,
    /// Protocol-processor cost of servicing a lock or barrier message.
    pub sync_service_cost: u64,
    /// Maximum cycles a processor may run ahead of the global event clock
    /// before yielding (bounds inter-processor skew in the batched stepper).
    pub skew_quantum: u64,
    /// Residence time of a coalescing-buffer entry before the background
    /// drain flushes it to the home node (the coalescing window).
    pub cb_flush_delay: u64,
    /// NAK-and-retry round trip charged to a request that found the
    /// directory entry busy (3-hop in flight) or mid-collection, as in
    /// DASH. The request is queued at the home and re-dispatched this many
    /// cycles after the entry frees.
    pub nack_retry_delay: u64,
    /// Page placement policy.
    pub placement: Placement,
    /// Directory organization: `None` = full-map (one presence bit per
    /// node, the default); `Some(k)` = k limited pointers with broadcast
    /// fallback — once more than `k` nodes share a block the directory
    /// loses precision and coherence actions for it must be broadcast.
    pub dir_pointers: Option<usize>,
    /// Finite protocol-resource limits (NI queues, directory request
    /// slots, write-notice buffers). Default = unbounded.
    pub resources: ResourceLimits,
}

impl MachineConfig {
    /// The default machine of Table 1, with `num_procs` processors.
    pub fn paper_default(num_procs: usize) -> Self {
        MachineConfig {
            num_procs,
            line_size: 128,
            cache_size: 128 * 1024,
            cache_assoc: 1,
            mem_setup: 20,
            mem_bytes_per_cycle: 2,
            bus_bytes_per_cycle: 2,
            net_bytes_per_cycle: 2,
            switch_latency: 2,
            wire_latency: 1,
            write_notice_cost: 4,
            dir_cost_lazy: 25,
            dir_cost_eager: 15,
            write_buffer_entries: 4,
            coalescing_buffer_entries: 16,
            page_size: 4096,
            ctrl_msg_bytes: 8,
            word_size: 4,
            sync_service_cost: 5,
            skew_quantum: 200,
            cb_flush_delay: 100,
            nack_retry_delay: 40,
            placement: Placement::RoundRobinPages,
            dir_pointers: None,
            resources: ResourceLimits::unbounded(),
        }
    }

    /// The "hypothetical future machine" of Section 4.3: high latency
    /// (40-cycle memory startup), high bandwidth (4 bytes/cycle), long cache
    /// lines (256 bytes).
    pub fn future_machine(num_procs: usize) -> Self {
        MachineConfig {
            mem_setup: 40,
            mem_bytes_per_cycle: 4,
            bus_bytes_per_cycle: 4,
            net_bytes_per_cycle: 4,
            line_size: 256,
            ..Self::paper_default(num_procs)
        }
    }

    /// Directory access cost for `protocol` (Table 1 distinguishes lazy from
    /// eager because the lazy directory entry carries more state).
    pub fn dir_cost(&self, protocol: Protocol) -> u64 {
        if protocol.is_lazy() {
            self.dir_cost_lazy
        } else {
            self.dir_cost_eager
        }
    }

    /// Number of words in a cache line.
    pub fn words_per_line(&self) -> usize {
        self.line_size / self.word_size
    }

    /// Number of lines in a cache.
    pub fn lines_per_cache(&self) -> usize {
        self.cache_size / self.line_size
    }

    /// Home node of the page containing byte address `addr` under the
    /// *static* policies. [`Placement::FirstTouch`] is resolved by the
    /// machine (which knows who touched first); this falls back to
    /// round-robin for it, so config-level callers stay total.
    pub fn home_of(&self, addr: u64) -> usize {
        match self.placement {
            Placement::RoundRobinPages | Placement::FirstTouch => {
                // Hot path: both divisors are powers of two for every real
                // configuration, so use shift/mask there (an integer divide
                // is ~20× a shift and this runs on every reference).
                let page = if self.page_size.is_power_of_two() {
                    addr as usize >> self.page_size.trailing_zeros()
                } else {
                    addr as usize / self.page_size
                };
                if self.num_procs.is_power_of_two() {
                    page & (self.num_procs - 1)
                } else {
                    page % self.num_procs
                }
            }
            Placement::AllAtZero => 0,
        }
    }

    /// Home node servicing lock `lock`.
    pub fn lock_home(&self, lock: u32) -> usize {
        if self.num_procs.is_power_of_two() {
            lock as usize & (self.num_procs - 1)
        } else {
            lock as usize % self.num_procs
        }
    }

    /// Home node servicing barrier `barrier`.
    pub fn barrier_home(&self, barrier: u32) -> usize {
        if self.num_procs.is_power_of_two() {
            barrier as usize & (self.num_procs - 1)
        } else {
            barrier as usize % self.num_procs
        }
    }

    /// Cycles to move `bytes` across one bandwidth-limited resource of
    /// `bytes_per_cycle` throughput (rounded up, minimum one cycle for a
    /// non-empty transfer).
    #[inline]
    pub fn transfer_cycles(bytes: u64, bytes_per_cycle: u64) -> u64 {
        if bytes == 0 {
            0
        } else if bytes_per_cycle.is_power_of_two() {
            // All real configurations move a power-of-two bytes per cycle;
            // shift instead of dividing (this runs once per message).
            ((bytes + bytes_per_cycle - 1) >> bytes_per_cycle.trailing_zeros()).max(1)
        } else {
            bytes.div_ceil(bytes_per_cycle).max(1)
        }
    }

    /// Validates internal consistency; the error names the offending field
    /// for the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_procs == 0 {
            return Err(ConfigError::new("num_procs", "must be > 0"));
        }
        if !self.line_size.is_power_of_two() {
            return Err(ConfigError::new(
                "line_size",
                format!("{} must be a power of two", self.line_size),
            ));
        }
        if !self.word_size.is_power_of_two() || self.word_size > self.line_size {
            return Err(ConfigError::new(
                "word_size",
                format!("{} invalid for line_size {}", self.word_size, self.line_size),
            ));
        }
        if !self.cache_size.is_multiple_of(self.line_size * self.cache_assoc) {
            return Err(ConfigError::new(
                "cache_size",
                format!(
                    "{} must be a multiple of line_size * assoc ({} * {})",
                    self.cache_size, self.line_size, self.cache_assoc
                ),
            ));
        }
        if !self.page_size.is_multiple_of(self.line_size) {
            return Err(ConfigError::new(
                "page_size",
                format!("{} must be a multiple of line_size {}", self.page_size, self.line_size),
            ));
        }
        if self.words_per_line() > 64 {
            return Err(ConfigError::new(
                "word_size",
                format!(
                    "lines carry {} words but dirty masks are u64 (max 64)",
                    self.words_per_line()
                ),
            ));
        }
        if self.mem_bytes_per_cycle == 0 {
            return Err(ConfigError::new("mem_bytes_per_cycle", "bandwidth must be non-zero"));
        }
        if self.bus_bytes_per_cycle == 0 {
            return Err(ConfigError::new("bus_bytes_per_cycle", "bandwidth must be non-zero"));
        }
        if self.net_bytes_per_cycle == 0 {
            return Err(ConfigError::new("net_bytes_per_cycle", "bandwidth must be non-zero"));
        }
        if self.dir_pointers == Some(0) {
            return Err(ConfigError::new("dir_pointers", "must be at least 1 when limited"));
        }
        if self.resources.ni_ingress == Some(0) {
            return Err(ConfigError::new(
                "resources.ni_ingress",
                "a zero-slot NI queue can never accept a message; use at least 1",
            ));
        }
        if self.resources.ni_egress == Some(0) {
            return Err(ConfigError::new(
                "resources.ni_egress",
                "a zero-slot NI queue can never accept a message; use at least 1",
            ));
        }
        if self.resources.nack_backoff_base == 0 {
            return Err(ConfigError::new(
                "resources.nack_backoff_base",
                "retry backoff must advance time; use at least 1 cycle",
            ));
        }
        Ok(())
    }
}

/// A `(name, value)` listing of the Table 1 parameters, used by the `table1`
/// experiment to regenerate the paper's parameter table.
pub fn table1_rows(cfg: &MachineConfig) -> Vec<(String, String)> {
    vec![
        ("Cache line size".into(), format!("{} bytes", cfg.line_size)),
        (
            "Cache size".into(),
            format!(
                "{} Kbytes {}",
                cfg.cache_size / 1024,
                if cfg.cache_assoc == 1 {
                    "direct-mapped".to_string()
                } else {
                    format!("{}-way", cfg.cache_assoc)
                }
            ),
        ),
        ("Memory setup time".into(), format!("{} cycles", cfg.mem_setup)),
        ("Memory bandwidth".into(), format!("{} bytes/cycle", cfg.mem_bytes_per_cycle)),
        ("Bus bandwidth".into(), format!("{} bytes/cycle", cfg.bus_bytes_per_cycle)),
        (
            "Network bandwidth".into(),
            format!("{} bytes/cycle (bidirectional)", cfg.net_bytes_per_cycle),
        ),
        ("Switch node latency".into(), format!("{} cycles", cfg.switch_latency)),
        ("Wire latency".into(), format!("{} cycles", cfg.wire_latency)),
        ("Write Notice Processing".into(), format!("{} cycles", cfg.write_notice_cost)),
        ("LRC Directory access cost".into(), format!("{} cycles", cfg.dir_cost_lazy)),
        ("ERC Directory access cost".into(), format!("{} cycles", cfg.dir_cost_eager)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = MachineConfig::paper_default(64);
        assert_eq!(c.line_size, 128);
        assert_eq!(c.cache_size, 128 * 1024);
        assert_eq!(c.cache_assoc, 1);
        assert_eq!(c.mem_setup, 20);
        assert_eq!(c.mem_bytes_per_cycle, 2);
        assert_eq!(c.bus_bytes_per_cycle, 2);
        assert_eq!(c.net_bytes_per_cycle, 2);
        assert_eq!(c.switch_latency, 2);
        assert_eq!(c.wire_latency, 1);
        assert_eq!(c.write_notice_cost, 4);
        assert_eq!(c.dir_cost_lazy, 25);
        assert_eq!(c.dir_cost_eager, 15);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn future_machine_matches_section_4_3() {
        let c = MachineConfig::future_machine(64);
        assert_eq!(c.mem_setup, 40);
        assert_eq!(c.mem_bytes_per_cycle, 4);
        assert_eq!(c.line_size, 256);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn paper_cache_fill_example() {
        // Section 3 works through a 10-hop cache fill: request 30 cycles,
        // memory 20 + 128/2 = 84, reply 30 + 64 = 94, bus fill 64 => 272.
        let c = MachineConfig::paper_default(64);
        let hops = 10u64;
        let req = hops * (c.switch_latency + c.wire_latency);
        let mem = c.mem_setup + MachineConfig::transfer_cycles(c.line_size as u64, c.mem_bytes_per_cycle);
        let reply = hops * (c.switch_latency + c.wire_latency)
            + MachineConfig::transfer_cycles(c.line_size as u64, c.net_bytes_per_cycle);
        let bus = MachineConfig::transfer_cycles(c.line_size as u64, c.bus_bytes_per_cycle);
        assert_eq!(req, 30);
        assert_eq!(mem, 84);
        assert_eq!(reply, 94);
        assert_eq!(bus, 64);
        assert_eq!(req + mem + reply + bus, 272);
    }

    #[test]
    fn dir_cost_by_protocol() {
        let c = MachineConfig::paper_default(4);
        assert_eq!(c.dir_cost(Protocol::Lrc), 25);
        assert_eq!(c.dir_cost(Protocol::LrcExt), 25);
        assert_eq!(c.dir_cost(Protocol::Erc), 15);
        assert_eq!(c.dir_cost(Protocol::Sc), 15);
    }

    #[test]
    fn home_placement_round_robin() {
        let c = MachineConfig::paper_default(4);
        assert_eq!(c.home_of(0), 0);
        assert_eq!(c.home_of(4096), 1);
        assert_eq!(c.home_of(4096 * 4), 0);
        assert_eq!(c.home_of(4096 * 5 + 17), 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = MachineConfig::paper_default(4);
        c.line_size = 100;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::paper_default(4);
        c.num_procs = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::paper_default(4);
        c.word_size = 1; // 128 words/line > 64
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_errors_name_the_offending_field() {
        let mut c = MachineConfig::paper_default(4);
        c.line_size = 100;
        let e = c.validate().unwrap_err();
        assert_eq!(e.field, "line_size");
        assert!(e.to_string().contains("`line_size`"), "{e}");
        let mut c = MachineConfig::paper_default(4);
        c.net_bytes_per_cycle = 0;
        assert_eq!(c.validate().unwrap_err().field, "net_bytes_per_cycle");
        let mut c = MachineConfig::paper_default(4);
        c.dir_pointers = Some(0);
        assert_eq!(c.validate().unwrap_err().field, "dir_pointers");
    }

    #[test]
    fn resource_limits_default_unbounded() {
        let c = MachineConfig::paper_default(4);
        assert!(c.resources.is_unbounded());
        assert_eq!(c.resources, ResourceLimits::default());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn resource_limit_validation() {
        let mut c = MachineConfig::paper_default(4);
        c.resources.ni_ingress = Some(0);
        assert_eq!(c.validate().unwrap_err().field, "resources.ni_ingress");
        let mut c = MachineConfig::paper_default(4);
        c.resources.ni_egress = Some(0);
        assert_eq!(c.validate().unwrap_err().field, "resources.ni_egress");
        let mut c = MachineConfig::paper_default(4);
        c.resources.nack_backoff_base = 0;
        assert_eq!(c.validate().unwrap_err().field, "resources.nack_backoff_base");
        // Zero directory slots and zero write-notice budget are legal: they
        // mean "always NACK" and "always fall back", both of which make
        // progress.
        let mut c = MachineConfig::paper_default(4);
        c.resources.dir_request_slots = Some(0);
        c.resources.write_notice_buffer = Some(0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = ResourceLimits { nack_backoff_base: 40, ..ResourceLimits::unbounded() };
        assert_eq!(r.backoff(0), 40);
        assert_eq!(r.backoff(1), 80);
        assert_eq!(r.backoff(6), 40 << 6);
        assert_eq!(r.backoff(60), 40 << 6); // capped
        let tiny = ResourceLimits { nack_backoff_base: 1, ..ResourceLimits::unbounded() };
        assert!(tiny.backoff(0) >= 1);
    }

    #[test]
    fn transfer_cycles_rounds_up() {
        assert_eq!(MachineConfig::transfer_cycles(128, 2), 64);
        assert_eq!(MachineConfig::transfer_cycles(129, 2), 65);
        assert_eq!(MachineConfig::transfer_cycles(1, 2), 1);
        assert_eq!(MachineConfig::transfer_cycles(0, 2), 0);
    }

    #[test]
    fn table1_has_eleven_rows() {
        let rows = table1_rows(&MachineConfig::paper_default(64));
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].1, "128 bytes");
    }
}

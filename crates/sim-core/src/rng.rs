//! A tiny, dependency-free deterministic PRNG (SplitMix64) used by the
//! synthetic workload generators.
//!
//! The workloads need reproducible pseudo-random structure (particle
//! placement, wire endpoints, sparse-matrix patterns). SplitMix64 is more
//! than adequate statistically for this purpose, is endian-independent, and
//! keeps the simulator core free of external dependencies.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection-free mapping is fine here; a tiny
        // modulo bias is irrelevant for workload synthesis, so use the cheap
        // widening multiply.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fork a statistically independent generator (e.g. one per processor).
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Raw generator state, for checkpointing. A generator rebuilt with
    /// [`Rng::from_state`] continues the exact same stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a previously captured [`Rng::state`].
    pub fn from_state(state: u64) -> Rng {
        Rng { state }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniforms should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut root = Rng::new(11);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}

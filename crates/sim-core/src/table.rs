//! Dense and hash-based lookup tables for line-addressed kernel state.
//!
//! The simulator keys almost all protocol metadata by line address, and line
//! addresses are dense small integers (workload allocators hand out compact
//! address spaces starting at zero, and `LineAddr` is the byte address
//! shifted down by the line-size bits). Two structures exploit that:
//!
//! * [`LineMap`] — a `Vec`-indexed slab for tables where most lines
//!   eventually get an entry (the directory). O(1) access with no hashing
//!   at all, and iteration is in ascending key order for free, which the
//!   deterministic fingerprint/diagnostic paths rely on.
//! * [`FxHashMap`] / [`FxHashSet`] — `std` maps with the Fx polynomial
//!   hash (the rustc hasher) instead of SipHash, for per-node tables that
//!   stay sparse (outstanding transactions, pending invalidations).
//!   Iteration order is arbitrary; every order-sensitive consumer sorts.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx string/word hash used by rustc: a rotate-xor-multiply over
/// 64-bit words. Far cheaper than SipHash for small integer keys; not
/// DoS-resistant, which is irrelevant for simulator-internal tables.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// A map from dense `u64` keys (line or page indices) to `V`, stored as a
/// `Vec<Option<V>>` slab that grows to the largest key touched.
///
/// All point operations are O(1) with no hashing; [`LineMap::iter`] and
/// [`LineMap::keys`] walk the slab and therefore yield entries in ascending
/// key order — deterministic by construction.
#[derive(Debug, Clone)]
pub struct LineMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for LineMap<V> {
    fn default() -> Self {
        LineMap::new()
    }
}

impl<V> LineMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        LineMap { slots: Vec::new(), len: 0 }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No occupied entries?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_mut(&mut self, key: u64) -> &mut Option<V> {
        let idx = usize::try_from(key).expect("LineMap key fits in usize");
        if idx >= self.slots.len() {
            // Grow geometrically so a rising address sweep costs amortized
            // O(1) per new line rather than O(n) per insert.
            let cap = (idx + 1).max(self.slots.len() * 2).max(16);
            self.slots.resize_with(cap, || None);
        }
        &mut self.slots[idx]
    }

    /// The value at `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.slots.get(key as usize).and_then(|s| s.as_ref())
    }

    /// Mutable value at `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.slots.get_mut(key as usize).and_then(|s| s.as_mut())
    }

    /// Is there an entry at `key`?
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let slot = self.slot_mut(key);
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove and return the entry at `key`.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let old = self.slots.get_mut(key as usize).and_then(|s| s.take());
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The entry at `key`, inserting `V::default()` first if vacant.
    #[inline]
    pub fn entry_or_default(&mut self, key: u64) -> &mut V
    where
        V: Default,
    {
        self.entry_or_insert_with(key, V::default)
    }

    /// The entry at `key`, inserting `make()` first if vacant.
    #[inline]
    pub fn entry_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key, make());
        }
        self.get_mut(key).expect("slot just filled")
    }

    /// Iterate `(key, &value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u64, v)))
    }

    /// Iterate occupied keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_map_point_operations() {
        let mut m: LineMap<u32> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(7), None);
        assert_eq!(m.insert(7, 70), None);
        assert_eq!(m.insert(7, 71), Some(70));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(7), Some(&71));
        *m.get_mut(7).unwrap() += 1;
        assert_eq!(m.remove(7), Some(72));
        assert_eq!(m.remove(7), None);
        assert!(m.is_empty());
    }

    #[test]
    fn line_map_grows_to_key() {
        let mut m: LineMap<u8> = LineMap::new();
        m.insert(10_000, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(10_000), Some(&1));
        assert_eq!(m.get(9_999), None);
    }

    #[test]
    fn line_map_entry_or_default() {
        let mut m: LineMap<u64> = LineMap::new();
        *m.entry_or_default(3) |= 0b10;
        *m.entry_or_default(3) |= 0b01;
        assert_eq!(m.get(3), Some(&0b11));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn line_map_iterates_in_ascending_key_order() {
        let mut m: LineMap<&str> = LineMap::new();
        for k in [9, 2, 40, 0, 17] {
            m.insert(k, "x");
        }
        let keys: Vec<u64> = m.keys().collect();
        assert_eq!(keys, vec![0, 2, 9, 17, 40]);
        assert_eq!(m.iter().count(), 5);
    }

    #[test]
    fn fx_maps_work_with_u64_keys() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..100u64 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&40), Some(&80));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(5);
        assert!(s.contains(&5) && !s.contains(&6));
    }

    #[test]
    fn fx_hash_differs_across_keys() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let hash = |k: u64| b.hash_one(k);
        assert_ne!(hash(1), hash(2));
        assert_eq!(hash(42), hash(42));
    }
}

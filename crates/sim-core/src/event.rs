//! Deterministic discrete-event queue.
//!
//! Events fire in nondecreasing time order; events scheduled for the same
//! cycle fire in insertion order (a monotone sequence number breaks ties),
//! which makes whole-machine simulations bit-reproducible.

use crate::types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: Cycle,
    seq: u64,
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, u64)>>,
    slab: Vec<Option<E>>,
    free: Vec<u64>,
    seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), slab: Vec::new(), free: Vec::new(), seq: 0, now: 0 }
    }

    /// Current simulated time: the firing time of the most recently popped
    /// event (0 before any pop).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedule `event` to fire at absolute time `time`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// release builds clamp to `now` so a small modelling slip degrades
    /// accuracy rather than ordering.
    pub fn push(&mut self, time: Cycle, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {} < {}", time, self.now);
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(event);
                i
            }
            None => {
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u64
            }
        };
        self.heap.push(Reverse((Key { time, seq }, slot)));
    }

    /// Schedule `event` to fire `delay` cycles from now.
    pub fn push_after(&mut self, delay: Cycle, event: E) {
        self.push(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing `now`.
    ///
    /// `now` never moves backwards: if [`EventQueue::pop_nth`] already
    /// advanced past this event's scheduled time, the event fires "late" at
    /// the current time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.pop_nth(0)
    }

    /// Remove and return the `n`-th pending event in (time, insertion)
    /// order — the model checker's choice-point hook. `pop_nth(0)` is
    /// [`EventQueue::pop`]; larger `n` fires a later-scheduled event first,
    /// exploring an alternative interleaving of in-flight activity.
    ///
    /// Advances `now` to the fired event's time if that is later than the
    /// current time (time is monotone even under out-of-order firing).
    /// Returns `None` when fewer than `n + 1` events are pending.
    pub fn pop_nth(&mut self, n: usize) -> Option<(Cycle, E)> {
        if n >= self.heap.len() {
            return None;
        }
        let mut held = Vec::with_capacity(n);
        for _ in 0..n {
            held.push(self.heap.pop().expect("length checked above"));
        }
        let Reverse((key, slot)) = self.heap.pop().expect("length checked above");
        self.heap.extend(held);
        self.now = self.now.max(key.time);
        let ev = self.slab[slot as usize].take().expect("slab slot already vacated");
        self.free.push(slot);
        Some((self.now, ev))
    }

    /// Scheduled firing times of every pending event, in (time, insertion)
    /// order — index `i` here is the `n` accepted by
    /// [`EventQueue::pop_nth`]. Intended for checker-sized queues; cost is
    /// O(len log len).
    pub fn pending_times(&self) -> Vec<Cycle> {
        let mut keys: Vec<Key> = self.heap.iter().map(|&Reverse((k, _))| k).collect();
        keys.sort();
        keys.into_iter().map(|k| k.time).collect()
    }

    /// References to every pending event payload, in (time, insertion)
    /// order — index `i` here is the `n` accepted by
    /// [`EventQueue::pop_nth`]. The model checker hashes these into its
    /// state fingerprint. Cost is O(len log len).
    pub fn pending_events(&self) -> Vec<&E> {
        let mut keys: Vec<(Key, u64)> = self.heap.iter().map(|&Reverse(k)| k).collect();
        keys.sort();
        keys.into_iter()
            .map(|(_, slot)| self.slab[slot as usize].as_ref().expect("pending slot occupied"))
            .collect()
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((k, _))| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.push_after(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for i in 0..8 {
                q.push(round * 100 + i, i);
            }
            for _ in 0..8 {
                q.pop();
            }
        }
        // The slab never needed more than one round's worth of slots.
        assert!(q.slab.len() <= 8);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(42, 1);
        q.push(41, 2);
        assert_eq!(q.peek_time(), Some(41));
        assert_eq!(q.pop(), Some((41, 2)));
        assert_eq!(q.peek_time(), Some(42));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }
}

//! Deterministic discrete-event queue.
//!
//! Events fire in nondecreasing time order; events scheduled for the same
//! cycle fire in ascending **tie-key** order. The key is supplied by the
//! caller at push time and makes the queue's total order independent of
//! insertion order — the property the parallel engine needs: a sequential
//! run that pushes an event mid-window and a sharded run that ingests the
//! same event at a window boundary land it at the same position, so
//! whole-machine simulations are bit-reproducible across engines.
//!
//! # Two-tier calendar-queue implementation
//!
//! Simulation events are near-monotone: almost everything is scheduled
//! within a couple of hundred cycles of `now` (Table-1 latencies — memory,
//! network hops, the coalescing-buffer flush delay, the clock-skew quantum —
//! are all well under [`HORIZON`]). Large queues exploit that with a
//! calendar of [`HORIZON`] one-cycle-wide buckets covering the window
//! `[window_lo, window_lo + HORIZON)`; an event at time `t` in the window
//! lives in bucket `t % HORIZON`. Because the bucket width is one cycle,
//! every bucket holds events of exactly one time value, so each bucket is
//! simply kept sorted by key (a backward scan from the tail — same-cycle
//! runs are short and near-sorted). An occupancy bitmap (one bit per
//! bucket) finds the next non-empty bucket in a handful of word scans, and
//! `pop` slides the window up to each fired time so the full horizon always
//! extends ahead of `now`.
//!
//! The rare far-future event (beyond the window) goes to a sorted overflow
//! rung — a `BTreeMap` keyed by time, holding a key-sorted run per time
//! value. Window invariants: every bucketed event's time is in
//! `[window_lo, window_lo + HORIZON)` and every overflow time is
//! `>= window_lo + HORIZON`, so all bucketed events fire before all
//! overflow events; sliding the window migrates newly-in-window overflow
//! entries into their (necessarily empty) buckets, at most once per event.
//!
//! Queues that never grow past [`TINY_MAX`] pending events — the model
//! checker's scenario machines, unit-test scripts — instead stay on a flat
//! bottom tier: one (time, key)-sorted `Vec`. That keeps `Machine::clone`
//! (which the checker performs at every explored state) a single small
//! memcpy instead of a 512-bucket traversal. The first push that would
//! exceed [`TINY_MAX`] promotes the queue to the calendar for the rest of
//! its life.

use crate::types::Cycle;
use std::collections::{BTreeMap, VecDeque};

/// Width of the calendar window in cycles (and number of buckets). A power
/// of two so `time % HORIZON` is a mask. Must comfortably exceed the
/// machine's largest routine scheduling delay (~200 cycles: the clock-skew
/// quantum) so the overflow rung stays cold.
const HORIZON: usize = 512;
const MASK: u64 = HORIZON as u64 - 1;
const WORDS: usize = HORIZON / 64;

/// Queues at or below this many pending events use the flat bottom tier.
const TINY_MAX: usize = 64;

/// Insert `(key, event)` into a key-sorted same-cycle run. Keys are
/// near-monotone in practice, so a backward scan from the tail beats
/// binary search. Strict `>` keeps insertion order for equal keys.
#[inline]
fn insert_by_key<E>(run: &mut VecDeque<(u64, E)>, key: u64, event: E) {
    let mut at = run.len();
    while at > 0 && run[at - 1].0 > key {
        at -= 1;
    }
    run.insert(at, (key, event));
}

/// Calendar tier: the bucketed window plus the far-future overflow rung.
#[derive(Debug, Clone)]
struct Calendar<E> {
    /// `buckets[t % HORIZON]` holds the key-sorted run of events at window
    /// time `t`.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Low edge of the calendar window; never decreases.
    window_lo: Cycle,
    /// Far-future rung: time -> key-sorted run of events at that time.
    overflow: BTreeMap<Cycle, VecDeque<(u64, E)>>,
}

impl<E> Calendar<E> {
    fn new(window_lo: Cycle) -> Self {
        Calendar {
            buckets: (0..HORIZON).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            window_lo,
            overflow: BTreeMap::new(),
        }
    }

    #[inline]
    fn mark(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn unmark(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// The unique window time stored in bucket `idx`.
    #[inline]
    fn bucket_time(&self, idx: usize) -> Cycle {
        self.window_lo + ((idx as u64).wrapping_sub(self.window_lo) & MASK)
    }

    /// Index of the earliest non-empty bucket (circular bitmap scan starting
    /// at the window's low edge), or `None` if all buckets are empty.
    fn first_bucket(&self) -> Option<usize> {
        let start = (self.window_lo & MASK) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let head = self.occupied[sw] & (!0u64 << sb);
        if head != 0 {
            return Some(sw * 64 + head.trailing_zeros() as usize);
        }
        for k in 1..WORDS {
            let wi = (sw + k) % WORDS;
            if self.occupied[wi] != 0 {
                return Some(wi * 64 + self.occupied[wi].trailing_zeros() as usize);
            }
        }
        let tail = self.occupied[sw] & !(!0u64 << sb);
        if tail != 0 {
            return Some(sw * 64 + tail.trailing_zeros() as usize);
        }
        None
    }

    /// Indices of all non-empty buckets in increasing-time order.
    fn occupied_buckets(&self) -> Vec<usize> {
        fn bits_of(out: &mut Vec<usize>, wi: usize, mut word: u64) {
            while word != 0 {
                out.push(wi * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
        let start = (self.window_lo & MASK) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let mut out = Vec::new();
        bits_of(&mut out, sw, self.occupied[sw] & (!0u64 << sb));
        for k in 1..WORDS {
            let wi = (sw + k) % WORDS;
            bits_of(&mut out, wi, self.occupied[wi]);
        }
        bits_of(&mut out, sw, self.occupied[sw] & !(!0u64 << sb));
        out
    }

    /// Earliest pending time, or `None` when the calendar is empty.
    fn min_time(&self) -> Option<Cycle> {
        match self.first_bucket() {
            Some(idx) => Some(self.bucket_time(idx)),
            None => self.overflow.first_key_value().map(|(&t, _)| t),
        }
    }

    /// Slide the window's low edge up to `t` (the caller guarantees every
    /// pending event's time is `>= t`) and migrate overflow entries that the
    /// move brings inside the horizon. Each event migrates at most once.
    fn advance_window(&mut self, t: Cycle) {
        debug_assert!(t >= self.window_lo);
        if t == self.window_lo {
            return;
        }
        self.window_lo = t;
        let horizon_end = t + HORIZON as Cycle;
        while let Some(entry) = self.overflow.first_entry() {
            if *entry.key() >= horizon_end {
                break;
            }
            let (time, mut run) = entry.remove_entry();
            let idx = (time & MASK) as usize;
            debug_assert!(self.buckets[idx].is_empty(), "bucket collision at t={time}");
            self.buckets[idx].append(&mut run);
            self.mark(idx);
        }
    }

    /// Insert `event` at `(time, key)` (`time >= window_lo` — the queue
    /// clamps to `now` first, and `now` never trails the window).
    fn insert(&mut self, time: Cycle, key: u64, event: E) {
        if time < self.window_lo + HORIZON as Cycle {
            let idx = (time & MASK) as usize;
            insert_by_key(&mut self.buckets[idx], key, event);
            self.mark(idx);
        } else {
            insert_by_key(self.overflow.entry(time).or_default(), key, event);
        }
    }

    /// Remove the earliest event, sliding the window to its time.
    fn pop_earliest(&mut self) -> Option<(Cycle, E)> {
        let t = self.min_time()?;
        self.advance_window(t);
        let idx = (t & MASK) as usize;
        let (_, ev) = self.buckets[idx].pop_front().expect("earliest bucket non-empty");
        if self.buckets[idx].is_empty() {
            self.unmark(idx);
        }
        Some((t, ev))
    }

    /// Remove the `n`-th event in (time, key) order (`n` in range).
    fn remove_nth(&mut self, mut n: usize) -> (Cycle, E) {
        for idx in self.occupied_buckets() {
            if n < self.buckets[idx].len() {
                let t = self.bucket_time(idx);
                let (_, ev) = self.buckets[idx].remove(n).expect("index checked");
                if self.buckets[idx].is_empty() {
                    self.unmark(idx);
                }
                return (t, ev);
            }
            n -= self.buckets[idx].len();
        }
        let mut hit: Option<Cycle> = None;
        for (&t, run) in &self.overflow {
            if n < run.len() {
                hit = Some(t);
                break;
            }
            n -= run.len();
        }
        let t = hit.expect("pop_nth index within overflow");
        let run = self.overflow.get_mut(&t).expect("overflow rung exists");
        let (_, ev) = run.remove(n).expect("index checked");
        if run.is_empty() {
            self.overflow.remove(&t);
        }
        (t, ev)
    }
}

/// Storage tier: flat sorted vec for small queues, calendar for large ones.
#[derive(Debug, Clone)]
enum Tier<E> {
    /// (time, key)-sorted flat storage. A deque so the hot `pop` is O(1)
    /// at the front while pushes (almost always near the back, times being
    /// near-monotone) shift only the short side.
    Tiny(VecDeque<(Cycle, u64, E)>),
    Calendar(Calendar<E>),
}

/// A (time, tie-key)-ordered event queue.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    tier: Tier<E>,
    len: usize,
    peak_len: usize,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue { tier: Tier::Tiny(VecDeque::new()), len: 0, peak_len: 0, now: 0 }
    }

    /// Current simulated time: the firing time of the most recently popped
    /// event (0 before any pop).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Move a queue that outgrew the bottom tier onto the calendar,
    /// preserving (time, key) order: the tiny vec is already sorted, so
    /// appending front-to-back lands each same-time run in its bucket in
    /// key order.
    fn promote(&mut self) {
        let Tier::Tiny(flat) = &mut self.tier else { return };
        let flat = std::mem::take(flat);
        // Pending events may sit before `now` (fired "late" after an
        // out-of-order pop_nth); the window must start at the earliest.
        let window_lo = flat.front().map_or(self.now, |&(t, ..)| t.min(self.now));
        let mut cal = Calendar::new(window_lo);
        for (t, k, ev) in flat {
            cal.insert(t, k, ev);
        }
        self.tier = Tier::Calendar(cal);
    }

    /// Schedule `event` to fire at absolute time `time`, ordered among
    /// same-cycle events by ascending `key`. The caller owns key
    /// assignment; keys must be deterministic for reproducible runs (the
    /// machine derives them from the scheduling node and a per-node
    /// counter, which makes the total order insertion-order independent).
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// release builds clamp to `now` so a small modelling slip degrades
    /// accuracy rather than ordering.
    pub fn push(&mut self, time: Cycle, key: u64, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {} < {}", time, self.now);
        let time = time.max(self.now);
        if matches!(&self.tier, Tier::Tiny(_)) && self.len >= TINY_MAX {
            self.promote();
        }
        match &mut self.tier {
            Tier::Tiny(flat) => {
                // Times are near-monotone, so the insertion point is almost
                // always at (or a step from) the back — a backward linear
                // scan beats binary search here. Strict `>` keeps insertion
                // order for equal (time, key) pairs.
                let mut at = flat.len();
                while at > 0 && (flat[at - 1].0, flat[at - 1].1) > (time, key) {
                    at -= 1;
                }
                flat.insert(at, (time, key, event));
            }
            Tier::Calendar(cal) => cal.insert(time, key, event),
        }
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
    }

    /// Schedule `event` to fire `delay` cycles from now.
    pub fn push_after(&mut self, delay: Cycle, key: u64, event: E) {
        self.push(self.now + delay, key, event);
    }

    /// Remove and return the earliest event, advancing `now`.
    ///
    /// `now` never moves backwards: if [`EventQueue::pop_nth`] already
    /// advanced past this event's scheduled time, the event fires "late" at
    /// the current time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let (t, ev) = match &mut self.tier {
            Tier::Tiny(flat) => {
                let (t, _, ev) = flat.pop_front()?;
                (t, ev)
            }
            Tier::Calendar(cal) => cal.pop_earliest()?,
        };
        self.len -= 1;
        self.now = self.now.max(t);
        Some((self.now, ev))
    }

    /// Remove and return the `n`-th pending event in (time, key) order —
    /// the model checker's choice-point hook. `pop_nth(0)` is
    /// [`EventQueue::pop`]; larger `n` fires a later-scheduled event first,
    /// exploring an alternative interleaving of in-flight activity.
    ///
    /// Advances `now` to the fired event's time if that is later than the
    /// current time (time is monotone even under out-of-order firing).
    /// Returns `None` when fewer than `n + 1` events are pending.
    ///
    /// Cost: O(n) on the flat tier; on the calendar, O(HORIZON/64) to scan
    /// the occupancy bitmap plus O(k) to splice the event out of its rung
    /// (k = its position there).
    pub fn pop_nth(&mut self, n: usize) -> Option<(Cycle, E)> {
        if n >= self.len {
            return None;
        }
        if n == 0 {
            return self.pop();
        }
        let (t, ev) = match &mut self.tier {
            Tier::Tiny(flat) => {
                let (t, _, ev) = flat.remove(n).expect("index checked");
                (t, ev)
            }
            Tier::Calendar(cal) => {
                // Keep the window hugging the earliest pending event so
                // overflow migration stays amortized even when firing
                // out of order.
                let t_min = cal.min_time().expect("len > 0");
                cal.advance_window(t_min);
                cal.remove_nth(n)
            }
        };
        self.len -= 1;
        self.now = self.now.max(t);
        Some((self.now, ev))
    }

    /// Scheduled firing times of every pending event, in (time, key)
    /// order — index `i` here is the `n` accepted by
    /// [`EventQueue::pop_nth`]. Cost is O(len) (plus an O(HORIZON/64)
    /// bitmap scan on the calendar tier).
    pub fn pending_times(&self) -> Vec<Cycle> {
        match &self.tier {
            Tier::Tiny(flat) => flat.iter().map(|&(t, ..)| t).collect(),
            Tier::Calendar(cal) => {
                let mut out = Vec::with_capacity(self.len);
                for idx in cal.occupied_buckets() {
                    let t = cal.bucket_time(idx);
                    out.extend(std::iter::repeat_n(t, cal.buckets[idx].len()));
                }
                for (&t, run) in &cal.overflow {
                    out.extend(std::iter::repeat_n(t, run.len()));
                }
                out
            }
        }
    }

    /// References to every pending event payload, in (time, key) order —
    /// index `i` here is the `n` accepted by [`EventQueue::pop_nth`]. The
    /// model checker hashes these into its state fingerprint. Cost matches
    /// [`EventQueue::pending_times`].
    pub fn pending_events(&self) -> Vec<&E> {
        match &self.tier {
            Tier::Tiny(flat) => flat.iter().map(|(_, _, ev)| ev).collect(),
            Tier::Calendar(cal) => {
                let mut out = Vec::with_capacity(self.len);
                for idx in cal.occupied_buckets() {
                    out.extend(cal.buckets[idx].iter().map(|(_, ev)| ev));
                }
                for run in cal.overflow.values() {
                    out.extend(run.iter().map(|(_, ev)| ev));
                }
                out
            }
        }
    }

    /// Every pending entry as `(time, key, event)`, in (time, key) order —
    /// the full pending state, tie keys included, for checkpointing. A
    /// queue rebuilt from this listing via [`EventQueue::from_entries`]
    /// pops identically to this one.
    pub fn pending_entries(&self) -> Vec<(Cycle, u64, &E)> {
        match &self.tier {
            Tier::Tiny(flat) => flat.iter().map(|(t, k, ev)| (*t, *k, ev)).collect(),
            Tier::Calendar(cal) => {
                let mut out = Vec::with_capacity(self.len);
                for idx in cal.occupied_buckets() {
                    let t = cal.bucket_time(idx);
                    out.extend(cal.buckets[idx].iter().map(|(k, ev)| (t, *k, ev)));
                }
                for (&t, run) in &cal.overflow {
                    out.extend(run.iter().map(|(k, ev)| (t, *k, ev)));
                }
                out
            }
        }
    }

    /// Rebuild a queue from a checkpoint: the pending entries (any order),
    /// the simulated time, and the lifetime high-water mark. The restored
    /// queue pops the same (time, key, event) sequence the checkpointed
    /// queue would have.
    pub fn from_entries(entries: Vec<(Cycle, u64, E)>, now: Cycle, peak_len: usize) -> Self {
        let mut q = EventQueue::new();
        // Push against now = 0 so no entry is clamped, then pin the clock
        // and the high-water mark to their checkpointed values.
        for (t, k, ev) in entries {
            q.push(t, k, ev);
        }
        q.now = now;
        q.peak_len = peak_len;
        q
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        match &self.tier {
            Tier::Tiny(flat) => flat.front().map(|&(t, ..)| t),
            Tier::Calendar(cal) => cal.min_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime —
    /// cheap in-situ observability for performance work.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Force a queue onto the calendar tier regardless of its size, so the
    /// small-queue tests below can exercise both representations.
    fn promoted<E>(mut q: EventQueue<E>) -> EventQueue<E> {
        q.promote();
        q
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 0, "c");
        q.push(10, 1, "a");
        q.push(20, 2, "b");
        for q in [&mut promoted(q.clone()), &mut q] {
            assert_eq!(q.pop(), Some((10, "a")));
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.pop(), Some((30, "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn same_time_key_order_is_insertion_independent() {
        // The same set of (time, key) pairs pushed in two different orders
        // pops identically — the property the parallel engine relies on.
        // 100 same-cycle events also crosses TINY_MAX, covering the
        // mid-stream promotion path splitting one run across tiers.
        let mut fwd = EventQueue::new();
        for i in 0..100u64 {
            fwd.push(5, i, i);
        }
        let mut rev = EventQueue::new();
        for i in (0..100u64).rev() {
            rev.push(5, i, i);
        }
        assert!(matches!(fwd.tier, Tier::Calendar(_)));
        for q in [&mut fwd, &mut rev] {
            for i in 0..100 {
                assert_eq!(q.pop(), Some((5, i)));
            }
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(7, 0, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.push_after(3, 0, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    fn far_future_events_take_the_overflow_rung() {
        let mut q = promoted(EventQueue::new());
        // Straddle the horizon in both directions, including exact-boundary
        // times and key ordering within the overflow rung.
        q.push(HORIZON as Cycle * 10, 7, "far-c");
        q.push(3, 0, "near");
        q.push(HORIZON as Cycle * 10, 2, "far-b");
        q.push(HORIZON as Cycle - 1, 0, "edge-in");
        q.push(HORIZON as Cycle, 0, "edge-out");
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((HORIZON as Cycle - 1, "edge-in")));
        assert_eq!(q.pop(), Some((HORIZON as Cycle, "edge-out")));
        assert_eq!(q.pop(), Some((HORIZON as Cycle * 10, "far-b")));
        assert_eq!(q.pop(), Some((HORIZON as Cycle * 10, "far-c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn window_wraps_across_many_horizons() {
        // A self-rescheduling timer marches the window through dozens of
        // wraps; interleave short and long hops to stress migration.
        let mut q = promoted(EventQueue::new());
        let mut t = 0;
        q.push(0, 0, 0u64);
        for i in 1..200u64 {
            let (fired, _) = q.pop().expect("timer pending");
            assert_eq!(fired, t);
            let hop = if i % 3 == 0 { HORIZON as Cycle + 37 } else { 17 };
            t = fired + hop;
            q.push(t, i, i);
        }
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_nth_orders_and_is_monotone() {
        let mut q = EventQueue::new();
        q.push(10, 0, "a");
        q.push(10, 1, "b");
        q.push(2000, 0, "z"); // overflow rung once promoted
        q.push(20, 0, "c");
        for q in [&mut promoted(q.clone()), &mut q] {
            // Pending order: a(10,0), b(10,1), c(20), z(2000).
            assert_eq!(q.pending_times(), vec![10, 10, 20, 2000]);
            assert_eq!(q.pop_nth(3), Some((2000, "z")));
            // Remaining events fire "late" at the advanced time.
            assert_eq!(q.pop_nth(1), Some((2000, "b")));
            assert_eq!(q.pop(), Some((2000, "a")));
            assert_eq!(q.pop(), Some((2000, "c")));
            assert_eq!(q.pop_nth(0), None);
        }
    }

    #[test]
    fn small_queues_stay_on_the_flat_tier() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..8 {
                q.push(round * 100 + i, i, i);
            }
            for _ in 0..8 {
                q.pop();
            }
        }
        // Never exceeded TINY_MAX pending events, so no calendar was built
        // (keeps clone-heavy users like the model checker cheap).
        assert!(matches!(q.tier, Tier::Tiny(_)));
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 8);
    }

    #[test]
    fn promotion_preserves_order_and_recycles_buckets() {
        let mut q = EventQueue::new();
        for i in 0..(TINY_MAX as u64 + 40) {
            q.push(i / 3, i, i); // runs of 3 same-time events
        }
        assert!(matches!(q.tier, Tier::Calendar(_)));
        let mut expect = 0;
        while let Some((t, v)) = q.pop() {
            assert_eq!((t, v), (expect / 3, expect));
            expect += 1;
        }
        assert_eq!(expect, TINY_MAX as u64 + 40);
        let Tier::Calendar(cal) = &q.tier else { panic!("still calendar") };
        assert_eq!(cal.buckets.len(), HORIZON);
        assert!(cal.overflow.is_empty());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(42, 0, 1);
        q.push(41, 0, 2);
        for q in [&mut promoted(q.clone()), &mut q] {
            assert_eq!(q.peek_time(), Some(41));
            assert_eq!(q.pop(), Some((41, 2)));
            assert_eq!(q.peek_time(), Some(42));
        }
    }

    #[test]
    fn pending_listings_agree_with_pop_order() {
        let mut q = EventQueue::new();
        for (t, k, v) in [(600, 1, 0), (5, 9, 1), (5, 10, 2), (90, 0, 3), (600, 0, 4), (1300, 0, 5)]
        {
            q.push(t, k, v);
        }
        for q in [&mut promoted(q.clone()), &mut q] {
            assert_eq!(q.pending_times(), vec![5, 5, 90, 600, 600, 1300]);
            assert_eq!(q.pending_events(), vec![&1, &2, &3, &4, &0, &5]);
            let mut popped = Vec::new();
            while let Some((_, v)) = q.pop() {
                popped.push(v);
            }
            assert_eq!(popped, vec![1, 2, 3, 4, 0, 5]);
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(10, 0, ());
        q.pop();
        q.push(5, 0, ());
    }
}

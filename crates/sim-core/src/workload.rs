//! The front-end interface: workloads feed each simulated processor a
//! deterministic stream of abstract operations.
//!
//! This is the substitute for the paper's Mint (MIPS II) execution-driven
//! front end. The coherence protocols are sensitive to the *address stream
//! and synchronization structure* of a program, not to its instruction
//! semantics, so each application is expressed as a per-processor generator
//! of [`Op`]s. Synchronization operations (locks and barriers) are resolved
//! by the simulated machine, so the interleaving — and therefore all timing —
//! is decided by the simulated protocol exactly as in an execution-driven
//! simulation of a data-race-free program.

use crate::types::{Addr, BarrierId, LockId, ProcId};

/// One abstract operation issued by a simulated processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Execute `cycles` of purely local computation.
    Compute(u32),
    /// Load one word at the given byte address.
    Read(Addr),
    /// Store one word at the given byte address.
    Write(Addr),
    /// Acquire the given lock (an *acquire* in the RC sense).
    Acquire(LockId),
    /// Release the given lock (a *release* in the RC sense).
    Release(LockId),
    /// Wait at the given barrier (a release on arrival + acquire on exit).
    Barrier(BarrierId),
    /// Force pending invalidations to be applied without acquiring anything
    /// (the "fence" the paper suggests for programs with data races).
    Fence,
    /// This processor has finished; it will issue no further operations.
    Done,
}

/// A parallel program presented as per-processor operation streams.
///
/// Implementations must be deterministic: `next_op(p)` depends only on the
/// sequence of previous calls for processor `p`, never on simulated time.
/// That per-processor independence is also what lets the sharded parallel
/// engine give each shard its own instance and advance only its own
/// processors' streams. `Send` is required so machines (which own their
/// workload) can move onto worker threads.
pub trait Workload: Send {
    /// Short stable name (used in reports: `gauss`, `fft`, ...).
    fn name(&self) -> &str;

    /// Number of processors this instance was built for.
    fn num_procs(&self) -> usize;

    /// Size in bytes of the shared address space the workload touches.
    /// Addresses produced by `next_op` must be `< addr_space()`.
    fn addr_space(&self) -> u64;

    /// Number of distinct lock variables used (lock ids are `0..num_locks`).
    fn num_locks(&self) -> u32 {
        0
    }

    /// Number of distinct barriers used (ids are `0..num_barriers`).
    fn num_barriers(&self) -> u32 {
        0
    }

    /// Produce the next operation for processor `proc`. After returning
    /// [`Op::Done`] for a processor, every subsequent call for that
    /// processor must also return [`Op::Done`].
    fn next_op(&mut self, proc: ProcId) -> Op;

    /// Clone this workload mid-run, for machine snapshotting during state
    /// exploration. Workloads that cannot be forked return `None` (the
    /// default); [`Script`] supports forking.
    fn fork(&self) -> Option<Box<dyn Workload>> {
        None
    }

    /// A value summarizing front-end progress (e.g. cursor positions),
    /// folded into state fingerprints by the model checker. Two forked
    /// copies in the same logical state must return equal tokens. The
    /// default (always 0) is sound but prevents no revisits.
    fn state_token(&self) -> u64 {
        0
    }
}

/// A scripted workload: explicit per-processor op vectors.
///
/// The workhorse of the protocol test suites — lets a test express an exact
/// interleaving-constrained scenario ("P0 writes x, releases L; P1 acquires
/// L, reads x") in a couple of lines.
#[derive(Debug, Clone)]
pub struct Script {
    name: String,
    addr_space: u64,
    num_locks: u32,
    num_barriers: u32,
    streams: Vec<Vec<Op>>,
    cursor: Vec<usize>,
}

impl Script {
    /// Create a script with one op vector per processor. `Done` is appended
    /// automatically if missing.
    pub fn new(name: impl Into<String>, mut streams: Vec<Vec<Op>>) -> Self {
        let mut addr_space: u64 = 0;
        let mut num_locks = 0u32;
        let mut num_barriers = 0u32;
        for s in &mut streams {
            if s.last() != Some(&Op::Done) {
                s.push(Op::Done);
            }
            for op in s.iter() {
                match *op {
                    Op::Read(a) | Op::Write(a) => addr_space = addr_space.max(a + 8),
                    Op::Acquire(l) | Op::Release(l) => num_locks = num_locks.max(l + 1),
                    Op::Barrier(b) => num_barriers = num_barriers.max(b + 1),
                    _ => {}
                }
            }
        }
        let cursor = vec![0; streams.len()];
        Script {
            name: name.into(),
            addr_space: addr_space.max(64),
            num_locks,
            num_barriers,
            streams,
            cursor,
        }
    }

    /// The per-processor op vectors (reference-interpreter input).
    pub fn streams(&self) -> &[Vec<Op>] {
        &self.streams
    }
}

impl Workload for Script {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_procs(&self) -> usize {
        self.streams.len()
    }

    fn addr_space(&self) -> u64 {
        self.addr_space
    }

    fn num_locks(&self) -> u32 {
        self.num_locks
    }

    fn num_barriers(&self) -> u32 {
        self.num_barriers
    }

    fn next_op(&mut self, proc: ProcId) -> Op {
        let stream = &self.streams[proc];
        let i = self.cursor[proc];
        if i >= stream.len() {
            return Op::Done;
        }
        let op = stream[i];
        if op != Op::Done {
            self.cursor[proc] = i + 1;
        }
        op
    }

    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn state_token(&self) -> u64 {
        // FNV-1a over the cursor positions.
        let mut h: u64 = 0xcbf29ce484222325;
        for &c in &self.cursor {
            h ^= c as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Bump allocator for laying out a workload's shared data structures in the
/// simulated address space, with line/page alignment helpers.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    next: u64,
    align: u64,
}

impl AddressAllocator {
    /// Allocator whose allocations are aligned to `align` bytes (typically
    /// the line size, so distinct arrays never falsely share a line).
    pub fn new(align: usize) -> Self {
        assert!(align.is_power_of_two());
        AddressAllocator { next: 0, align: align as u64 }
    }

    /// Reserve `bytes` bytes; returns the base address of the region.
    pub fn alloc(&mut self, bytes: u64) -> Addr {
        let base = self.next;
        self.next = (self.next + bytes + self.align - 1) & !(self.align - 1);
        base
    }

    /// Reserve an array of `n` elements of `elem_bytes` bytes each.
    pub fn alloc_array(&mut self, n: u64, elem_bytes: u64) -> Addr {
        self.alloc(n * elem_bytes)
    }

    /// Total bytes reserved so far (suitable for `Workload::addr_space`).
    pub fn used(&self) -> u64 {
        self.next.max(self.align)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_streams_and_done_sticks() {
        let mut s = Script::new(
            "t",
            vec![vec![Op::Read(0), Op::Write(4)], vec![Op::Compute(3)]],
        );
        assert_eq!(s.num_procs(), 2);
        assert_eq!(s.next_op(0), Op::Read(0));
        assert_eq!(s.next_op(0), Op::Write(4));
        assert_eq!(s.next_op(0), Op::Done);
        assert_eq!(s.next_op(0), Op::Done);
        assert_eq!(s.next_op(1), Op::Compute(3));
        assert_eq!(s.next_op(1), Op::Done);
    }

    #[test]
    fn script_infers_metadata() {
        let s = Script::new(
            "t",
            vec![vec![
                Op::Acquire(2),
                Op::Write(1000),
                Op::Release(2),
                Op::Barrier(1),
            ]],
        );
        assert_eq!(s.num_locks(), 3);
        assert_eq!(s.num_barriers(), 2);
        assert!(s.addr_space() >= 1008);
    }

    #[test]
    fn allocator_alignment() {
        let mut a = AddressAllocator::new(128);
        let x = a.alloc(4);
        let y = a.alloc(300);
        let z = a.alloc(1);
        assert_eq!(x, 0);
        assert_eq!(y, 128);
        assert_eq!(z, 128 + 384);
        assert_eq!(a.used(), 128 + 384 + 128);
    }

    #[test]
    fn allocator_arrays() {
        let mut a = AddressAllocator::new(64);
        let base = a.alloc_array(10, 8);
        assert_eq!(base, 0);
        assert_eq!(a.alloc(1), 128); // 80 rounded to 128
    }
}

//! JSON conversions for the types the experiment harness and tests
//! serialize: [`MachineConfig`], [`Protocol`], and the statistics
//! structures. Built on the workspace's offline `lrc-json` layer.

use crate::config::{MachineConfig, Placement, ResourceLimits};
use crate::stats::{
    Breakdown, FaultStats, MachineStats, MissClass, MissCounts, ProcStats, ResourceStats, Traffic,
};
use crate::types::Protocol;
use lrc_json::{json_struct, FromJson, ToJson, Value};

impl ToJson for Protocol {
    fn to_json(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl FromJson for Protocol {
    fn from_json(v: &Value) -> Option<Protocol> {
        Protocol::parse(v.as_str()?)
    }
}

impl Placement {
    /// Stable lowercase name used in serialized configs.
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobinPages => "round-robin-pages",
            Placement::AllAtZero => "all-at-zero",
            Placement::FirstTouch => "first-touch",
        }
    }
}

impl ToJson for Placement {
    fn to_json(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl FromJson for Placement {
    fn from_json(v: &Value) -> Option<Placement> {
        match v.as_str()? {
            "round-robin-pages" => Some(Placement::RoundRobinPages),
            "all-at-zero" => Some(Placement::AllAtZero),
            "first-touch" => Some(Placement::FirstTouch),
            _ => None,
        }
    }
}

json_struct!(MachineConfig {
    num_procs,
    line_size,
    cache_size,
    cache_assoc,
    mem_setup,
    mem_bytes_per_cycle,
    bus_bytes_per_cycle,
    net_bytes_per_cycle,
    switch_latency,
    wire_latency,
    write_notice_cost,
    dir_cost_lazy,
    dir_cost_eager,
    write_buffer_entries,
    coalescing_buffer_entries,
    page_size,
    ctrl_msg_bytes,
    word_size,
    sync_service_cost,
    skew_quantum,
    cb_flush_delay,
    nack_retry_delay,
    placement,
    dir_pointers,
    resources,
});

json_struct!(ResourceLimits {
    ni_ingress,
    ni_egress,
    dir_request_slots,
    write_notice_buffer,
    nack_backoff_base,
    nack_retry_budget,
});

impl ToJson for MissCounts {
    fn to_json(&self) -> Value {
        Value::Object(
            MissClass::ALL
                .iter()
                .map(|&c| (c.name().to_string(), self.get(c).to_json()))
                .collect(),
        )
    }
}

impl FromJson for MissCounts {
    fn from_json(v: &Value) -> Option<MissCounts> {
        let mut counts = [0u64; 5];
        for (i, c) in MissClass::ALL.iter().enumerate() {
            counts[i] = u64::from_json(v.get(c.name())?)?;
        }
        Some(MissCounts::from_array(counts))
    }
}

json_struct!(Breakdown { cpu, read, write, sync });
json_struct!(Traffic { control_msgs, data_msgs, write_data_msgs, bytes });
json_struct!(ProcStats {
    breakdown,
    refs,
    reads,
    writes,
    read_misses,
    write_misses,
    upgrades,
    miss_classes,
    notices_received,
    acquire_invalidations,
    eager_invalidations,
    lock_acquires,
    barriers,
    traffic,
    three_hop,
    finish_time,
    pp_busy,
    mem_busy,
});
json_struct!(FaultStats {
    dropped,
    duplicated,
    delayed,
    corrupted,
    link_nacks,
    retries,
    timeouts,
    retries_exhausted,
    dup_suppressed,
    link_msgs,
});
json_struct!(ResourceStats {
    busy_nacks,
    nack_retries,
    nack_park_fallbacks,
    ni_rejects,
    ni_retries,
    backpressure_stall_cycles,
    wn_overflows,
    overflow_fallbacks,
    overflow_invalidations,
    peak_pending_invals,
    peak_parked,
});
json_struct!(MachineStats { procs, total_cycles, faults, resources });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_json_roundtrip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_json(&p.to_json()), Some(p));
        }
        assert_eq!(Protocol::from_json(&Value::Str("bogus".into())), None);
    }

    #[test]
    fn placement_json_roundtrip() {
        for p in [Placement::RoundRobinPages, Placement::AllAtZero, Placement::FirstTouch] {
            assert_eq!(Placement::from_json(&p.to_json()), Some(p));
        }
    }

    #[test]
    fn config_json_roundtrip() {
        let cfg = MachineConfig::future_machine(64);
        let v = cfg.to_json();
        assert_eq!(v["line_size"].as_u64(), Some(256));
        assert_eq!(MachineConfig::from_json(&v), Some(cfg));
    }

    #[test]
    fn bounded_config_json_roundtrip() {
        let mut cfg = MachineConfig::paper_default(16);
        cfg.resources.ni_ingress = Some(4);
        cfg.resources.dir_request_slots = Some(0);
        cfg.resources.write_notice_buffer = Some(8);
        cfg.resources.nack_retry_budget = 3;
        let v = cfg.to_json();
        assert_eq!(MachineConfig::from_json(&v), Some(cfg));
    }
}

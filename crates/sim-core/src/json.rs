//! JSON conversions for the types the experiment harness and tests
//! serialize: [`MachineConfig`], [`Protocol`], and the statistics
//! structures. Built on the workspace's offline `lrc-json` layer.

use crate::config::{MachineConfig, Placement, ResourceLimits};
use crate::stats::{
    Breakdown, CrashStats, DataLossEvent, FaultStats, Histogram, LatencyStats, MachineStats,
    MissClass, MissCounts, ProcStats, RaceReport, RaceSite, RaceStats, ResourceStats, Traffic,
    HIST_BUCKETS,
};
use crate::types::Protocol;
use lrc_json::{json_struct, FromJson, ToJson, Value};

impl ToJson for Protocol {
    fn to_json(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl FromJson for Protocol {
    fn from_json(v: &Value) -> Option<Protocol> {
        Protocol::parse(v.as_str()?)
    }
}

impl Placement {
    /// Stable lowercase name used in serialized configs.
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobinPages => "round-robin-pages",
            Placement::AllAtZero => "all-at-zero",
            Placement::FirstTouch => "first-touch",
        }
    }
}

impl ToJson for Placement {
    fn to_json(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl FromJson for Placement {
    fn from_json(v: &Value) -> Option<Placement> {
        match v.as_str()? {
            "round-robin-pages" => Some(Placement::RoundRobinPages),
            "all-at-zero" => Some(Placement::AllAtZero),
            "first-touch" => Some(Placement::FirstTouch),
            _ => None,
        }
    }
}

json_struct!(MachineConfig {
    num_procs,
    line_size,
    cache_size,
    cache_assoc,
    mem_setup,
    mem_bytes_per_cycle,
    bus_bytes_per_cycle,
    net_bytes_per_cycle,
    switch_latency,
    wire_latency,
    write_notice_cost,
    dir_cost_lazy,
    dir_cost_eager,
    write_buffer_entries,
    coalescing_buffer_entries,
    page_size,
    ctrl_msg_bytes,
    word_size,
    sync_service_cost,
    skew_quantum,
    cb_flush_delay,
    nack_retry_delay,
    placement,
    dir_pointers,
    resources,
});

json_struct!(ResourceLimits {
    ni_ingress,
    ni_egress,
    dir_request_slots,
    write_notice_buffer,
    nack_backoff_base,
    nack_retry_budget,
});

impl ToJson for MissCounts {
    fn to_json(&self) -> Value {
        Value::Object(
            MissClass::ALL
                .iter()
                .map(|&c| (c.name().to_string(), self.get(c).to_json()))
                .collect(),
        )
    }
}

impl FromJson for MissCounts {
    fn from_json(v: &Value) -> Option<MissCounts> {
        let mut counts = [0u64; 5];
        for (i, c) in MissClass::ALL.iter().enumerate() {
            counts[i] = u64::from_json(v.get(c.name())?)?;
        }
        Some(MissCounts::from_array(counts))
    }
}

json_struct!(Breakdown { cpu, read, write, sync });
json_struct!(Traffic { control_msgs, data_msgs, write_data_msgs, bytes });
json_struct!(ProcStats {
    breakdown,
    refs,
    reads,
    writes,
    read_misses,
    write_misses,
    upgrades,
    miss_classes,
    notices_received,
    acquire_invalidations,
    eager_invalidations,
    lock_acquires,
    barriers,
    traffic,
    three_hop,
    finish_time,
    pp_busy,
    mem_busy,
});
json_struct!(FaultStats {
    dropped,
    duplicated,
    delayed,
    corrupted,
    link_nacks,
    retries,
    timeouts,
    retries_exhausted,
    dup_suppressed,
    link_msgs,
});
json_struct!(ResourceStats {
    busy_nacks,
    nack_retries,
    nack_park_fallbacks,
    ni_rejects,
    ni_retries,
    backpressure_stall_cycles,
    wn_overflows,
    overflow_fallbacks,
    overflow_invalidations,
    peak_pending_invals,
    peak_parked,
});
// Histograms serialize sparsely: only non-empty buckets, as [index, count]
// pairs, so an all-zero histogram is `{"count":0,"sum":0,"max":0,"buckets":[]}`.
impl ToJson for Histogram {
    fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Value::Array(vec![(i as u64).to_json(), n.to_json()]))
            .collect();
        Value::Object(vec![
            ("count".into(), self.count.to_json()),
            ("sum".into(), self.sum.to_json()),
            ("max".into(), self.max.to_json()),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(v: &Value) -> Option<Histogram> {
        let mut h = Histogram {
            count: u64::from_json(v.get("count")?)?,
            sum: u64::from_json(v.get("sum")?)?,
            max: u64::from_json(v.get("max")?)?,
            buckets: [0; HIST_BUCKETS],
        };
        for pair in v.get("buckets")?.as_array()? {
            let i = usize::from_json(pair.get_index(0)?)?;
            if i >= HIST_BUCKETS {
                return None;
            }
            h.buckets[i] = u64::from_json(pair.get_index(1)?)?;
        }
        Some(h)
    }
}

impl ToJson for LatencyStats {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(n, h)| (n.to_string(), h.to_json())).collect())
    }
}

impl FromJson for LatencyStats {
    fn from_json(v: &Value) -> Option<LatencyStats> {
        let mut out = LatencyStats::new();
        for (name, hv) in v.as_object()? {
            out.hist_mut(name).merge(&Histogram::from_json(hv)?);
        }
        Some(out)
    }
}

json_struct!(RaceSite { proc, ref_index, write });
json_struct!(RaceReport { addr, prior, current, clocks });
json_struct!(RaceStats {
    words_monitored,
    epoch_fast_hits,
    vector_promotions,
    races_found,
    reports,
});
json_struct!(DataLossEvent { line, owner, home, detected_at });
json_struct!(CrashStats {
    crashes,
    suspicions,
    heartbeats_sent,
    dirty_lines_lost,
    clean_lines_reclaimed,
    forged_acks,
    forwards_cancelled,
    parked_dropped,
    degraded_fills,
    degraded_lock_grants,
    degraded_barrier_releases,
    locks_reclaimed,
    barrier_slots_reclaimed,
    wt_acks_written_off,
    wbk_acks_written_off,
    suppressed_sends,
    data_loss,
});

// MachineStats is hand-written (not `json_struct!`) for one reason: stats
// files written before the crash subsystem existed have no "crashes" key,
// and they must keep loading — a missing key defaults to the all-zero
// crashes-off signature.
impl ToJson for MachineStats {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("procs".into(), self.procs.to_json()),
            ("total_cycles".into(), self.total_cycles.to_json()),
            ("faults".into(), self.faults.to_json()),
            ("resources".into(), self.resources.to_json()),
            ("latencies".into(), self.latencies.to_json()),
            ("races".into(), self.races.to_json()),
            ("crashes".into(), self.crashes.to_json()),
        ])
    }
}

impl FromJson for MachineStats {
    fn from_json(v: &Value) -> Option<MachineStats> {
        Some(MachineStats {
            procs: FromJson::from_json(v.get("procs")?)?,
            total_cycles: FromJson::from_json(v.get("total_cycles")?)?,
            faults: FromJson::from_json(v.get("faults")?)?,
            resources: FromJson::from_json(v.get("resources")?)?,
            latencies: FromJson::from_json(v.get("latencies")?)?,
            races: FromJson::from_json(v.get("races")?)?,
            crashes: match v.get("crashes") {
                Some(cv) => FromJson::from_json(cv)?,
                None => CrashStats::default(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_json_roundtrip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_json(&p.to_json()), Some(p));
        }
        assert_eq!(Protocol::from_json(&Value::Str("bogus".into())), None);
    }

    #[test]
    fn placement_json_roundtrip() {
        for p in [Placement::RoundRobinPages, Placement::AllAtZero, Placement::FirstTouch] {
            assert_eq!(Placement::from_json(&p.to_json()), Some(p));
        }
    }

    #[test]
    fn config_json_roundtrip() {
        let cfg = MachineConfig::future_machine(64);
        let v = cfg.to_json();
        assert_eq!(v["line_size"].as_u64(), Some(256));
        assert_eq!(MachineConfig::from_json(&v), Some(cfg));
    }

    #[test]
    fn histogram_json_roundtrip_is_sparse() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 1 << 30] {
            h.record(v);
        }
        let v = h.to_json();
        assert_eq!(v["buckets"].as_array().unwrap().len(), 4, "only non-empty buckets");
        assert_eq!(Histogram::from_json(&v), Some(h));
        assert_eq!(Histogram::from_json(&Value::Null), None);

        let mut l = LatencyStats::new();
        l.record("rt.read", 42);
        l.record("lock.wait", 9);
        let v = l.to_json();
        assert_eq!(LatencyStats::from_json(&v), Some(l));
    }

    #[test]
    fn machine_stats_json_carries_latencies() {
        let mut s = MachineStats::new(1);
        s.latencies.record("rt.read", 100);
        let v = s.to_json();
        assert_eq!(v["latencies"]["rt.read"]["count"].as_u64(), Some(1));
        assert_eq!(MachineStats::from_json(&v), Some(s));
    }

    #[test]
    fn machine_stats_json_carries_races() {
        let mut s = MachineStats::new(2);
        s.races.words_monitored = 9;
        s.races.epoch_fast_hits = 100;
        s.races.vector_promotions = 2;
        s.races.races_found = 1;
        s.races.reports.push(RaceReport {
            addr: 0x80,
            prior: RaceSite { proc: 1, ref_index: 4, write: true },
            current: RaceSite { proc: 0, ref_index: 7, write: true },
            clocks: vec![3, 0],
        });
        let v = s.to_json();
        assert_eq!(v["races"]["races_found"].as_u64(), Some(1));
        assert_eq!(v["races"]["reports"][0]["addr"].as_u64(), Some(0x80));
        assert_eq!(v["races"]["reports"][0]["prior"]["write"].as_bool(), Some(true));
        assert_eq!(MachineStats::from_json(&v), Some(s));

        // Detection-off stats keep round-tripping (the default is all-zero).
        let off = MachineStats::new(1);
        assert_eq!(MachineStats::from_json(&off.to_json()), Some(off));
    }

    #[test]
    fn machine_stats_json_carries_crashes_and_tolerates_absence() {
        let mut s = MachineStats::new(4);
        s.crashes.crashes = 1;
        s.crashes.suspicions = 3;
        s.crashes.record_data_loss(DataLossEvent {
            line: 0x1c0,
            owner: 2,
            home: 0,
            detected_at: 77_000,
        });
        let v = s.to_json();
        assert_eq!(v["crashes"]["crashes"].as_u64(), Some(1));
        assert_eq!(v["crashes"]["data_loss"][0]["owner"].as_u64(), Some(2));
        assert_eq!(MachineStats::from_json(&v), Some(s));

        // A pre-crash-era stats object (no "crashes" key) still loads, with
        // the crashes-off all-zero signature.
        let mut old = MachineStats::new(1).to_json();
        if let Value::Object(fields) = &mut old {
            fields.retain(|(k, _)| k != "crashes");
        }
        let loaded = MachineStats::from_json(&old).expect("v0 stats load");
        assert!(loaded.crashes.is_zero());
    }

    #[test]
    fn bounded_config_json_roundtrip() {
        let mut cfg = MachineConfig::paper_default(16);
        cfg.resources.ni_ingress = Some(4);
        cfg.resources.dir_request_slots = Some(0);
        cfg.resources.write_notice_buffer = Some(8);
        cfg.resources.nack_retry_budget = 3;
        let v = cfg.to_json();
        assert_eq!(MachineConfig::from_json(&v), Some(cfg));
    }
}

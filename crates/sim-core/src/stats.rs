//! Statistics plumbing: per-processor cycle attribution (the four overhead
//! categories of Figures 5/7/9), miss classification counters (Table 2), and
//! traffic counters.


/// Exclusive classification of a cache miss, following the algorithm of
/// Bianchini & Kontothanassis (paper reference [3]) as used in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First access by this processor to this block, ever.
    Cold,
    /// Coherence miss where the missing word was actually written by another
    /// processor since this processor last held the block.
    TrueShare,
    /// Coherence miss caused only by writes to *other* words of the block.
    FalseShare,
    /// Block was lost to a capacity/conflict replacement and not modified
    /// remotely in the interim.
    Eviction,
    /// "Write miss" in the paper's terminology: the block is present
    /// read-only and only write permission is missing. No data transfer.
    Upgrade,
}

impl MissClass {
    /// All five classes in Table-2 column order.
    pub const ALL: [MissClass; 5] = [
        MissClass::Cold,
        MissClass::TrueShare,
        MissClass::FalseShare,
        MissClass::Eviction,
        MissClass::Upgrade,
    ];

    /// Stable lowercase name used in report columns.
    pub fn name(self) -> &'static str {
        match self {
            MissClass::Cold => "cold",
            MissClass::TrueShare => "true",
            MissClass::FalseShare => "false",
            MissClass::Eviction => "eviction",
            MissClass::Upgrade => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            MissClass::Cold => 0,
            MissClass::TrueShare => 1,
            MissClass::FalseShare => 2,
            MissClass::Eviction => 3,
            MissClass::Upgrade => 4,
        }
    }
}

/// Counter per miss class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissCounts {
    counts: [u64; 5],
}

impl MissCounts {
    /// Count one miss of the given class.
    pub fn record(&mut self, class: MissClass) {
        self.counts[class.index()] += 1;
    }

    /// Number of misses recorded for `class`.
    pub fn get(&self, class: MissClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total misses across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage of all misses falling in `class` (0.0 if no misses).
    pub fn percent(&self, class: MissClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.get(class) as f64 / t as f64
        }
    }

    /// Raw counters in [`MissClass::ALL`] order (serialization support).
    pub fn as_array(&self) -> [u64; 5] {
        self.counts
    }

    /// Rebuild from raw counters in [`MissClass::ALL`] order.
    pub fn from_array(counts: [u64; 5]) -> Self {
        MissCounts { counts }
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &MissCounts) {
        for i in 0..5 {
            self.counts[i] += other.counts[i];
        }
    }
}

/// Which of the four overhead buckets a stall belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Useful work: compute cycles and cache-hit accesses.
    Cpu,
    /// Waiting for a read miss to be satisfied.
    Read,
    /// Write-buffer-full stalls (relaxed protocols) or blocking write/upgrade
    /// stalls (SC).
    Write,
    /// Lock acquire waits, release-fence waits, and barrier waits.
    Sync,
}

/// The aggregate cycle breakdown used by the overhead-analysis figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Useful work: compute cycles and cache-hit accesses.
    pub cpu: u64,
    /// Read-miss stall cycles.
    pub read: u64,
    /// Write-buffer and blocking-write stall cycles.
    pub write: u64,
    /// Synchronization (acquire/release/barrier) stall cycles.
    pub sync: u64,
}

impl Breakdown {
    /// Attribute `cycles` to the given bucket.
    pub fn add(&mut self, kind: StallKind, cycles: u64) {
        match kind {
            StallKind::Cpu => self.cpu += cycles,
            StallKind::Read => self.read += cycles,
            StallKind::Write => self.write += cycles,
            StallKind::Sync => self.sync += cycles,
        }
    }

    /// Sum of all four buckets.
    pub fn total(&self) -> u64 {
        self.cpu + self.read + self.write + self.sync
    }

    /// Accumulate another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        self.cpu += other.cpu;
        self.read += other.read;
        self.write += other.write;
        self.sync += other.sync;
    }

    /// Each bucket as a fraction of `denom` total cycles (the figures
    /// normalize against the sequentially consistent run's total).
    pub fn normalized(&self, denom: u64) -> [f64; 4] {
        let d = denom.max(1) as f64;
        [
            self.cpu as f64 / d,
            self.read as f64 / d,
            self.write as f64 / d,
            self.sync as f64 / d,
        ]
    }
}

/// Coarse message classes for traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Header-only protocol messages (requests, acks, notices, sync).
    Control,
    /// Messages carrying a full cache line.
    Data,
    /// Write-through / write-back payloads (header + dirty words).
    WriteData,
}

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Header-only messages sent.
    pub control_msgs: u64,
    /// Line-carrying messages sent.
    pub data_msgs: u64,
    /// Write-through / write-back payload messages sent.
    pub write_data_msgs: u64,
    /// Total bytes put on the network.
    pub bytes: u64,
}

impl Traffic {
    /// Count one message of `class` totalling `bytes` on the wire.
    pub fn record(&mut self, class: TrafficClass, bytes: u64) {
        match class {
            TrafficClass::Control => self.control_msgs += 1,
            TrafficClass::Data => self.data_msgs += 1,
            TrafficClass::WriteData => self.write_data_msgs += 1,
        }
        self.bytes += bytes;
    }

    /// Total messages of any class.
    pub fn total_msgs(&self) -> u64 {
        self.control_msgs + self.data_msgs + self.write_data_msgs
    }

    /// Accumulate another traffic counter into this one.
    pub fn merge(&mut self, other: &Traffic) {
        self.control_msgs += other.control_msgs;
        self.data_msgs += other.data_msgs;
        self.write_data_msgs += other.write_data_msgs;
        self.bytes += other.bytes;
    }
}

/// Machine-level fault-injection and recovery counters: what the fabric
/// did to messages and what the link layer did about it. All zero on a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages the fabric dropped.
    pub dropped: u64,
    /// Messages the fabric delivered twice.
    pub duplicated: u64,
    /// Messages the fabric delivered late.
    pub delayed: u64,
    /// Messages that arrived with a failing checksum.
    pub corrupted: u64,
    /// Checksum-failure NACKs the receiving NIs sent back.
    pub link_nacks: u64,
    /// Retransmissions (timeout- or NACK-triggered).
    pub retries: u64,
    /// Retransmit timers that fired and found their message unacked.
    pub timeouts: u64,
    /// Messages abandoned after exhausting the retry budget.
    pub retries_exhausted: u64,
    /// Duplicate deliveries suppressed by receiver-side dedupe.
    pub dup_suppressed: u64,
    /// Link-layer control messages (delivery acks/nacks) sent.
    pub link_msgs: u64,
}

impl FaultStats {
    /// True when nothing was injected and nothing recovered — the
    /// fault-free signature.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Accumulate another counter set into this one (shard merge).
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.corrupted += other.corrupted;
        self.link_nacks += other.link_nacks;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.retries_exhausted += other.retries_exhausted;
        self.dup_suppressed += other.dup_suppressed;
        self.link_msgs += other.link_msgs;
    }

    /// Faults the fabric injected (drop + duplicate + delay + corrupt).
    pub fn injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.corrupted
    }

    /// Counters as words, in field order (fingerprinting support).
    pub fn as_words(&self) -> [u64; 10] {
        [
            self.dropped,
            self.duplicated,
            self.delayed,
            self.corrupted,
            self.link_nacks,
            self.retries,
            self.timeouts,
            self.retries_exhausted,
            self.dup_suppressed,
            self.link_msgs,
        ]
    }
}

/// Machine-level finite-resource pressure counters: what the bounded
/// queues, directory request slots, and write-notice buffers rejected,
/// retried, or degraded. All zero when every limit is unbounded (the
/// default), so a default run's stats are bit-identical to a build without
/// resource modeling. The two `peak_*` gauges are tracked unconditionally
/// (they cost one compare on already-cold paths) so a bounded-but-roomy
/// run can be proven identical to an unbounded one stats-and-all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// BUSY-NACKs homes sent to requests that raced an in-flight
    /// transaction with no request slot free.
    pub busy_nacks: u64,
    /// NACKed requests re-sent after their backoff expired.
    pub nack_retries: u64,
    /// Requests parked after exhausting the per-episode NACK budget — the
    /// forward-progress fallback.
    pub nack_park_fallbacks: u64,
    /// Sends rejected by a full NI ingress or egress queue.
    pub ni_rejects: u64,
    /// NI-rejected sends retried after their backoff expired.
    pub ni_retries: u64,
    /// Cycles of retry backoff charged to NACKed and NI-rejected messages
    /// (an upper bound on the latency the backpressure added).
    pub backpressure_stall_cycles: u64,
    /// Write-notice buffer overflows: the moments a node's pending-inval
    /// set hit its cap and collapsed to the invalidate-all bit.
    pub wn_overflows: u64,
    /// Acquires served by the conservative invalidate-all fallback instead
    /// of the precise pending-invalidation list.
    pub overflow_fallbacks: u64,
    /// Lines invalidated by those fallback acquires (the degradation cost;
    /// compare against `acquire_invalidations` for the precise path).
    pub overflow_invalidations: u64,
    /// Largest pending-invalidation set any node ever held.
    pub peak_pending_invals: u64,
    /// Deepest any home's parked-request queue for one line ever got.
    pub peak_parked: u64,
}

impl ResourceStats {
    /// True when no limit was ever hit (always true at default config).
    /// The peaks are observations, not pressure, so they are excluded.
    pub fn is_zero(&self) -> bool {
        let ResourceStats {
            busy_nacks,
            nack_retries,
            nack_park_fallbacks,
            ni_rejects,
            ni_retries,
            backpressure_stall_cycles,
            wn_overflows,
            overflow_fallbacks,
            overflow_invalidations,
            peak_pending_invals: _,
            peak_parked: _,
        } = *self;
        busy_nacks == 0
            && nack_retries == 0
            && nack_park_fallbacks == 0
            && ni_rejects == 0
            && ni_retries == 0
            && backpressure_stall_cycles == 0
            && wn_overflows == 0
            && overflow_fallbacks == 0
            && overflow_invalidations == 0
    }

    /// Accumulate another counter set into this one (shard merge):
    /// pressure counters add, the peak gauges take the maximum — each
    /// pending-inval set and parked queue lives on exactly one shard, so
    /// the global peak is the max of the per-shard peaks.
    pub fn merge(&mut self, other: &ResourceStats) {
        self.busy_nacks += other.busy_nacks;
        self.nack_retries += other.nack_retries;
        self.nack_park_fallbacks += other.nack_park_fallbacks;
        self.ni_rejects += other.ni_rejects;
        self.ni_retries += other.ni_retries;
        self.backpressure_stall_cycles += other.backpressure_stall_cycles;
        self.wn_overflows += other.wn_overflows;
        self.overflow_fallbacks += other.overflow_fallbacks;
        self.overflow_invalidations += other.overflow_invalidations;
        self.peak_pending_invals = self.peak_pending_invals.max(other.peak_pending_invals);
        self.peak_parked = self.peak_parked.max(other.peak_parked);
    }
}

/// Everything recorded about one simulated processor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcStats {
    /// Cycle attribution (sums to this processor's finish time).
    pub breakdown: Breakdown,
    /// Total memory references issued (reads + writes).
    pub refs: u64,
    /// Read references issued.
    pub reads: u64,
    /// Write references issued.
    pub writes: u64,
    /// Read misses that required a data transfer.
    pub read_misses: u64,
    /// Write misses that required a data transfer (line absent).
    pub write_misses: u64,
    /// Write permission faults on a present, read-only line.
    pub upgrades: u64,
    /// Classified misses (only populated when classification is enabled).
    pub miss_classes: MissCounts,
    /// Write notices received from homes (lazy protocols).
    pub notices_received: u64,
    /// Lines invalidated at acquire points (lazy protocols).
    pub acquire_invalidations: u64,
    /// Eager invalidations applied on receipt (SC/ERC).
    pub eager_invalidations: u64,
    /// Lock acquires completed.
    pub lock_acquires: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Messages this node's protocol processor sent.
    pub traffic: Traffic,
    /// Coherence transactions that required a third hop (forwarding).
    pub three_hop: u64,
    /// Cycle at which this processor executed its `Done` op.
    pub finish_time: u64,
    /// Cycles this node's protocol processor was busy.
    pub pp_busy: u64,
    /// Cycles this node's memory module was busy.
    pub mem_busy: u64,
}

impl ProcStats {
    /// Accumulate another row for the *same* processor into this one
    /// (shard merge). Every shard replica carries rows for all processors;
    /// a non-owner's row is zero except for the few counters the protocol
    /// attributes at a third party (e.g. `three_hop`, charged to the
    /// requester by the *home's* handler), so straight addition reproduces
    /// the sequential row. `finish_time` is a timestamp, not a count: only
    /// the owner ever sets it, and `max` selects it.
    pub fn merge(&mut self, other: &ProcStats) {
        self.breakdown.merge(&other.breakdown);
        self.refs += other.refs;
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.upgrades += other.upgrades;
        self.miss_classes.merge(&other.miss_classes);
        self.notices_received += other.notices_received;
        self.acquire_invalidations += other.acquire_invalidations;
        self.eager_invalidations += other.eager_invalidations;
        self.lock_acquires += other.lock_acquires;
        self.barriers += other.barriers;
        self.traffic.merge(&other.traffic);
        self.three_hop += other.three_hop;
        self.finish_time = self.finish_time.max(other.finish_time);
        self.pp_busy += other.pp_busy;
        self.mem_busy += other.mem_busy;
    }

    /// All misses involving the coherence protocol (upgrades included, since
    /// the paper's Table 2 counts "write misses" as a miss category).
    pub fn total_misses(&self) -> u64 {
        self.read_misses + self.write_misses + self.upgrades
    }

    /// Miss rate over all references, as used by the paper's Table 3.
    pub fn miss_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.total_misses() as f64 / self.refs as f64
        }
    }
}

/// Number of log₂ buckets a [`Histogram`] keeps: bucket 0 holds the value
/// 0, bucket `b` (1..=64) holds values in `[2^(b-1), 2^b - 1]`, so the full
/// `u64` range is covered with no saturation.
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (latencies in cycles,
/// retry counts). Fixed-size and allocation-free so recording is a few
/// arithmetic ops; merging is element-wise addition and therefore
/// associative and commutative — folding per-probe histograms into the
/// machine total is order-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, saturating (for the mean).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Bucket counters; see [`HIST_BUCKETS`] for the bucket bounds.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, max: 0, buckets: [0; HIST_BUCKETS] }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index holding `v`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            (1 << (b - 1), if b == 64 { u64::MAX } else { (1 << b) - 1 })
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0 < p <= 100) as an upper bound: the top of
    /// the bucket containing the target rank, clamped to the observed max
    /// (so `percentile(100) == max` exactly). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_bounds(b).1.min(self.max);
            }
        }
        self.max
    }

    /// Accumulate another histogram into this one (element-wise).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Named latency histograms, sorted by name. Entries appear on first
/// record, so a run with latency probes off contributes an empty (and
/// default-equal) value — the stats fingerprint of an untraced run is
/// unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    entries: Vec<(String, Histogram)>,
}

impl LatencyStats {
    /// Empty set.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// True when no histogram holds any sample.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|(_, h)| h.is_empty())
    }

    /// The histogram named `name`, created empty if absent.
    pub fn hist_mut(&mut self, name: &str) -> &mut Histogram {
        let idx = match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (name.to_string(), Histogram::new()));
                i
            }
        };
        &mut self.entries[idx].1
    }

    /// Record one sample into the histogram named `name`.
    pub fn record(&mut self, name: &str, v: u64) {
        self.hist_mut(name).record(v);
    }

    /// Look up a histogram by name.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// All histograms in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.entries.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Accumulate another set into this one, merging same-named histograms.
    pub fn merge(&mut self, other: &LatencyStats) {
        for (name, h) in &other.entries {
            self.hist_mut(name).merge(h);
        }
    }

    /// Entries as `(name, histogram)` pairs (serialization support).
    pub fn entries(&self) -> &[(String, Histogram)] {
        &self.entries
    }

    /// Rebuild from pairs (sorted and deduplicated by merge).
    pub fn from_entries(pairs: Vec<(String, Histogram)>) -> Self {
        let mut out = LatencyStats::new();
        for (name, h) in pairs {
            out.hist_mut(&name).merge(&h);
        }
        out
    }
}

/// One access site in a [`RaceReport`]: which processor touched the word,
/// the program-order ordinal of that reference on its processor (the N-th
/// read-or-write the processor issued, counting from 1), and the access
/// kind. The ordinal is replay-stable: rerunning the same workload puts
/// the same reference at the same ordinal regardless of timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceSite {
    /// Processor that issued the access.
    pub proc: u64,
    /// Program-order reference ordinal on that processor (1-based).
    pub ref_index: u64,
    /// True for a write, false for a read.
    pub write: bool,
}

impl RaceSite {
    /// Short `w@p2#17` / `r@p0#3` rendering used by reports.
    pub fn render(&self) -> String {
        format!("{}@p{}#{}", if self.write { "w" } else { "r" }, self.proc, self.ref_index)
    }
}

/// One detected happens-before race: two accesses to the same word, at
/// least one a write, with neither ordered before the other by program
/// order or the sync edges (lock release→acquire, barrier arrive→depart).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// Byte address of the racy word.
    pub addr: u64,
    /// The earlier access (by detection order): the stored metadata the
    /// conflicting access raced against.
    pub prior: RaceSite,
    /// The access whose arrival exposed the race.
    pub current: RaceSite,
    /// The current accessor's vector clock at the moment of detection,
    /// indexed by processor — the evidence that `prior` is not in its
    /// happens-before past.
    pub clocks: Vec<u64>,
}

impl RaceReport {
    /// One-line rendering: kind, address, both sites.
    pub fn render(&self) -> String {
        let kind = match (self.prior.write, self.current.write) {
            (true, true) => "write/write",
            (true, false) => "write/read",
            (false, true) => "read/write",
            (false, false) => "read/read",
        };
        format!(
            "{} race on word {:#x}: {} vs {}",
            kind,
            self.addr,
            self.prior.render(),
            self.current.render()
        )
    }

    /// Fields as words, in a stable order (fingerprinting support).
    pub fn as_words(&self, out: &mut Vec<u64>) {
        out.push(self.addr);
        for s in [&self.prior, &self.current] {
            out.push(s.proc);
            out.push(s.ref_index);
            out.push(u64::from(s.write));
        }
        out.extend_from_slice(&self.clocks);
    }
}

/// Happens-before race-detection counters and the first few reports.
/// All zero/empty when detection is off (the default), so a default run's
/// stats are bit-identical to a build without the detector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Distinct shared words that acquired read/write metadata.
    pub words_monitored: u64,
    /// Accesses resolved on the O(1) same-epoch fast path.
    pub epoch_fast_hits: u64,
    /// Words whose read metadata was promoted from an epoch to a full
    /// vector clock (concurrent readers).
    pub vector_promotions: u64,
    /// Races detected (first race per word; later conflicts on an
    /// already-racy word are not recounted).
    pub races_found: u64,
    /// The first [`RaceStats::REPORT_CAP`] reports, in detection order.
    pub reports: Vec<RaceReport>,
}

impl RaceStats {
    /// Cap on stored reports; `races_found` keeps counting past it.
    pub const REPORT_CAP: usize = 64;

    /// True when detection never ran (the detection-off signature).
    pub fn is_zero(&self) -> bool {
        *self == RaceStats::default()
    }

    /// True when detection ran and found no race.
    pub fn race_free(&self) -> bool {
        self.races_found == 0
    }
}

/// One dirty line whose only up-to-date copy died with a crashed node: the
/// typed `DataLoss` outcome the recovery protocol surfaces instead of
/// silently serving stale memory. `detected_at` is the cycle the home
/// declared the owner dead and reclaimed the line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataLossEvent {
    /// Line address of the lost update.
    pub line: u64,
    /// Node that held the line dirty when it crashed.
    pub owner: u64,
    /// Home node that reclaimed the line.
    pub home: u64,
    /// Cycle at which the loss was detected.
    pub detected_at: u64,
}

impl DataLossEvent {
    /// One-line rendering used by reports.
    pub fn render(&self) -> String {
        format!(
            "data loss on line {:#x}: dirty owner n{} crashed, home n{} reclaimed stale memory at cycle {}",
            self.line, self.owner, self.home, self.detected_at
        )
    }

    /// Fields as words, in a stable order (fingerprinting support).
    pub fn as_words(&self) -> [u64; 4] {
        [self.line, self.owner, self.home, self.detected_at]
    }
}

/// Crash-stop failure and recovery counters: nodes killed, lease-based
/// suspicions, what the directory reclaimed, and how the survivors made
/// degraded-mode progress. All zero/empty when no crash plan is armed
/// (the default), so a default run's stats are bit-identical to a build
/// without the crash subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Nodes that crashed.
    pub crashes: u64,
    /// (observer, dead-peer) pairs where a lease expired — each survivor
    /// independently suspects each dead node exactly once.
    pub suspicions: u64,
    /// Heartbeat messages sent while detection was armed.
    pub heartbeats_sent: u64,
    /// Dirty-owned lines reclaimed from a dead node: lost updates.
    pub dirty_lines_lost: u64,
    /// Clean lines (shared or notified copies) reclaimed silently.
    pub clean_lines_reclaimed: u64,
    /// Invalidation/write-notice acks the home forged on behalf of a dead
    /// node so a pending collection could complete.
    pub forged_acks: u64,
    /// Busy forwarding episodes cancelled because the dead node was the
    /// owner or the requester; survivors were served from (possibly stale)
    /// memory.
    pub forwards_cancelled: u64,
    /// Requests parked at a home that were dropped because their sender
    /// died.
    pub parked_dropped: u64,
    /// Outstanding miss transactions a survivor aborted and completed
    /// locally because the home or owner died (degraded fill).
    pub degraded_fills: u64,
    /// Lock acquires self-granted because the lock's home died (mutual
    /// exclusion is lost for those locks — counted, never silent).
    pub degraded_lock_grants: u64,
    /// Barrier waits self-released because the barrier's home died.
    pub degraded_barrier_releases: u64,
    /// Locks whose dead holder was evicted and the grant passed on (or the
    /// lock freed) by the home.
    pub locks_reclaimed: u64,
    /// Barrier slots of dead arrivers released by the home.
    pub barrier_slots_reclaimed: u64,
    /// Write-through acks a survivor stopped waiting for because they were
    /// owed by a dead home.
    pub wt_acks_written_off: u64,
    /// Write-back acks a survivor stopped waiting for because they were
    /// owed by a dead home.
    pub wbk_acks_written_off: u64,
    /// Messages suppressed at the send boundary because their destination
    /// (or source) was known dead.
    pub suppressed_sends: u64,
    /// The first [`CrashStats::REPORT_CAP`] data-loss events, in detection
    /// order; `dirty_lines_lost` keeps counting past the cap.
    pub data_loss: Vec<DataLossEvent>,
}

impl CrashStats {
    /// Cap on stored data-loss reports.
    pub const REPORT_CAP: usize = 64;

    /// True when no crash plan ever armed (the crashes-off signature).
    pub fn is_zero(&self) -> bool {
        *self == CrashStats::default()
    }

    /// Record a data-loss event, capping stored reports.
    pub fn record_data_loss(&mut self, ev: DataLossEvent) {
        self.dirty_lines_lost += 1;
        if self.data_loss.len() < Self::REPORT_CAP {
            self.data_loss.push(ev);
        }
    }

    /// Counters as words, in field order (fingerprinting support; the
    /// data-loss reports are folded separately via their own `as_words`).
    pub fn as_words(&self) -> [u64; 16] {
        [
            self.crashes,
            self.suspicions,
            self.heartbeats_sent,
            self.dirty_lines_lost,
            self.clean_lines_reclaimed,
            self.forged_acks,
            self.forwards_cancelled,
            self.parked_dropped,
            self.degraded_fills,
            self.degraded_lock_grants,
            self.degraded_barrier_releases,
            self.locks_reclaimed,
            self.barrier_slots_reclaimed,
            self.wt_acks_written_off,
            self.wbk_acks_written_off,
            self.suppressed_sends,
        ]
    }
}

/// Machine-level view: per-processor stats plus the run's wall-clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// Per-processor statistics, indexed by `ProcId`.
    pub procs: Vec<ProcStats>,
    /// Cycle at which the last processor finished: the figure-4 metric.
    pub total_cycles: u64,
    /// Fault-injection and link-layer recovery counters (all zero on a
    /// fault-free run).
    pub faults: FaultStats,
    /// Finite-resource pressure counters (all zero at the default,
    /// unbounded configuration).
    pub resources: ResourceStats,
    /// Latency histograms (round-trips, lock hold/wait, barrier skew, NACK
    /// retries). Empty unless the machine ran with latency probes enabled.
    pub latencies: LatencyStats,
    /// Happens-before race-detection results. Zero/empty unless the machine
    /// ran with race detection enabled.
    pub races: RaceStats,
    /// Crash-stop failure and recovery counters. Zero/empty unless the
    /// machine ran with a crash plan armed.
    pub crashes: CrashStats,
}

impl MachineStats {
    /// Empty statistics for a `num_procs`-processor machine.
    pub fn new(num_procs: usize) -> Self {
        MachineStats {
            procs: vec![ProcStats::default(); num_procs],
            total_cycles: 0,
            faults: FaultStats::default(),
            resources: ResourceStats::default(),
            latencies: LatencyStats::default(),
            races: RaceStats::default(),
            crashes: CrashStats::default(),
        }
    }

    /// Fold another shard's statistics into this one: per-processor rows
    /// merge row-wise (see [`ProcStats::merge`]), machine-level counters
    /// add, peaks take the max. `total_cycles` is *not* recomputed here —
    /// the caller derives it from the merged finish times.
    pub fn merge_shard(&mut self, other: &MachineStats) {
        assert_eq!(self.procs.len(), other.procs.len(), "shard stats for different machines");
        for (mine, theirs) in self.procs.iter_mut().zip(other.procs.iter()) {
            mine.merge(theirs);
        }
        self.faults.merge(&other.faults);
        self.resources.merge(&other.resources);
        self.latencies.merge(&other.latencies);
        // Race detection and crash plans are sequential-only; a shard merge
        // never sees either non-zero on any side.
        debug_assert!(other.races.is_zero());
        debug_assert!(other.crashes.is_zero());
    }

    /// Aggregate cycle breakdown over all processors (the figure-5 metric).
    pub fn aggregate_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for p in &self.procs {
            b.merge(&p.breakdown);
        }
        b
    }

    /// Classified-miss totals over all processors (Table 2).
    pub fn aggregate_misses(&self) -> MissCounts {
        let mut m = MissCounts::default();
        for p in &self.procs {
            m.merge(&p.miss_classes);
        }
        m
    }

    /// Total memory references over all processors.
    pub fn total_refs(&self) -> u64 {
        self.procs.iter().map(|p| p.refs).sum()
    }

    /// Total misses (upgrades included) over all processors.
    pub fn total_miss_count(&self) -> u64 {
        self.procs.iter().map(|p| p.total_misses()).sum()
    }

    /// Whole-machine miss rate (Table 3).
    pub fn miss_rate(&self) -> f64 {
        let refs = self.total_refs();
        if refs == 0 {
            0.0
        } else {
            self.total_miss_count() as f64 / refs as f64
        }
    }

    /// Total network traffic over all nodes.
    pub fn aggregate_traffic(&self) -> Traffic {
        let mut t = Traffic::default();
        for p in &self.procs {
            t.merge(&p.traffic);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_counts_are_exclusive_and_total() {
        let mut m = MissCounts::default();
        for c in MissClass::ALL {
            m.record(c);
        }
        assert_eq!(m.total(), 5);
        for c in MissClass::ALL {
            assert_eq!(m.get(c), 1);
            assert!((m.percent(c) - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn breakdown_buckets() {
        let mut b = Breakdown::default();
        b.add(StallKind::Cpu, 10);
        b.add(StallKind::Read, 20);
        b.add(StallKind::Write, 30);
        b.add(StallKind::Sync, 40);
        assert_eq!(b.total(), 100);
        let n = b.normalized(200);
        assert!((n[0] - 0.05).abs() < 1e-12);
        assert!((n[3] - 0.20).abs() < 1e-12);
    }

    #[test]
    fn machine_aggregation() {
        let mut s = MachineStats::new(2);
        s.procs[0].breakdown.add(StallKind::Cpu, 5);
        s.procs[1].breakdown.add(StallKind::Sync, 7);
        s.procs[0].refs = 10;
        s.procs[0].read_misses = 2;
        s.procs[1].refs = 10;
        s.procs[1].upgrades = 3;
        let b = s.aggregate_breakdown();
        assert_eq!(b.cpu, 5);
        assert_eq!(b.sync, 7);
        assert_eq!(s.total_refs(), 20);
        assert_eq!(s.total_miss_count(), 5);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_counts_upgrades() {
        let p = ProcStats {
            refs: 100,
            read_misses: 1,
            write_misses: 1,
            upgrades: 2,
            ..Default::default()
        };
        assert_eq!(p.total_misses(), 4);
        assert!((p.miss_rate() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn traffic_classes() {
        let mut t = Traffic::default();
        t.record(TrafficClass::Control, 8);
        t.record(TrafficClass::Data, 136);
        t.record(TrafficClass::WriteData, 24);
        assert_eq!(t.total_msgs(), 3);
        assert_eq!(t.bytes, 168);
    }

    #[test]
    fn resource_stats_zero_ignores_peaks() {
        let mut r = ResourceStats::default();
        assert!(r.is_zero());
        r.peak_pending_invals = 12;
        r.peak_parked = 3;
        assert!(r.is_zero(), "peaks are observations, not pressure");
        r.busy_nacks = 1;
        assert!(!r.is_zero());
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 holds only 0; bucket b holds [2^(b-1), 2^b - 1].
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_of(lo), b, "lower bound of bucket {b}");
            assert_eq!(Histogram::bucket_of(hi), b, "upper bound of bucket {b}");
            if b > 0 {
                assert_eq!(Histogram::bucket_bounds(b - 1).1 + 1, lo, "buckets are contiguous");
            }
        }
    }

    #[test]
    fn histogram_percentiles_clamp_to_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.max, 1000);
        assert_eq!(h.percentile(100.0), 1000, "p100 is exactly the max");
        assert!(h.percentile(50.0) <= h.percentile(95.0));
        assert!(h.percentile(50.0) >= 3, "p50 bucket upper bound covers the median sample");
        assert!((h.mean() - 221.2).abs() < 1e-9);
        let empty = Histogram::new();
        assert_eq!(empty.percentile(50.0), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[1, 5, 9]), mk(&[0, 1 << 20]), mk(&[7, 7, 7, u64::MAX]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "(a+b)+c == a+(b+c)");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "a+b == b+a");
        // Merging equals recording the concatenated sample stream.
        assert_eq!(ab_c, mk(&[1, 5, 9, 0, 1 << 20, 7, 7, 7, u64::MAX]));
    }

    #[test]
    fn latency_stats_sorted_named_merge() {
        let mut a = LatencyStats::new();
        a.record("rt.read", 10);
        a.record("lock.wait", 5);
        let mut b = LatencyStats::new();
        b.record("rt.read", 20);
        b.record("barrier.skew", 2);
        a.merge(&b);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["barrier.skew", "lock.wait", "rt.read"], "name-sorted");
        assert_eq!(a.get("rt.read").unwrap().count, 2);
        assert_eq!(a.get("rt.read").unwrap().max, 20);
        assert!(a.get("absent").is_none());
        let rebuilt = LatencyStats::from_entries(a.entries().to_vec());
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn race_stats_zero_and_render() {
        let r = RaceStats::default();
        assert!(r.is_zero());
        assert!(r.race_free());
        let report = RaceReport {
            addr: 0x40,
            prior: RaceSite { proc: 2, ref_index: 17, write: true },
            current: RaceSite { proc: 0, ref_index: 3, write: false },
            clocks: vec![5, 0, 1, 0],
        };
        assert_eq!(report.render(), "write/read race on word 0x40: w@p2#17 vs r@p0#3");
        let stats = RaceStats { races_found: 1, reports: vec![report.clone()], ..Default::default() };
        assert!(!stats.is_zero());
        assert!(!stats.race_free());
        let mut words = Vec::new();
        report.as_words(&mut words);
        assert_eq!(words, vec![0x40, 2, 17, 1, 0, 3, 0, 5, 0, 1, 0]);
    }

    #[test]
    fn crash_stats_zero_cap_and_render() {
        let mut c = CrashStats::default();
        assert!(c.is_zero());
        let ev = DataLossEvent { line: 0x80, owner: 3, home: 1, detected_at: 42_000 };
        assert_eq!(
            ev.render(),
            "data loss on line 0x80: dirty owner n3 crashed, home n1 reclaimed stale memory at cycle 42000"
        );
        assert_eq!(ev.as_words(), [0x80, 3, 1, 42_000]);
        for _ in 0..(CrashStats::REPORT_CAP + 10) {
            c.record_data_loss(ev);
        }
        assert!(!c.is_zero());
        assert_eq!(c.dirty_lines_lost, CrashStats::REPORT_CAP as u64 + 10, "count passes the cap");
        assert_eq!(c.data_loss.len(), CrashStats::REPORT_CAP, "reports stop at the cap");
        assert_eq!(c.as_words()[3], c.dirty_lines_lost, "field order is stable");
    }

    #[test]
    fn zero_division_is_safe() {
        let m = MissCounts::default();
        assert_eq!(m.percent(MissClass::Cold), 0.0);
        let p = ProcStats::default();
        assert_eq!(p.miss_rate(), 0.0);
        let b = Breakdown::default();
        assert_eq!(b.normalized(0), [0.0; 4]);
    }
}

//! `lrc-sim` — the simulation substrate for the lazy-release-consistency
//! study: fundamental types, the Table-1 machine configuration, the
//! deterministic discrete-event kernel, statistics plumbing, the workload
//! (front-end) interface, and a small deterministic PRNG.
//!
//! Everything higher in the stack — the interconnect model (`lrc-mesh`),
//! the memory system (`lrc-mem`), the protocols and machine (`lrc-core`),
//! and the applications (`lrc-workloads`) — builds on the vocabulary defined
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

pub mod config;
pub mod event;
pub mod json;
pub mod refint;
pub mod rng;
pub mod stats;
pub mod table;
pub mod types;
pub mod watchdog;
pub mod workload;

pub use config::{table1_rows, ConfigError, MachineConfig, Placement, ResourceLimits};
pub use event::EventQueue;
pub use rng::Rng;
pub use stats::{
    Breakdown, CrashStats, DataLossEvent, FaultStats, Histogram, LatencyStats, MachineStats,
    MissClass, MissCounts, ProcStats, RaceReport, RaceSite, RaceStats, ResourceStats, StallKind,
    Traffic, TrafficClass,
};
pub use watchdog::{StallDiagnosis, StallReason, StalledProc};
pub use table::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, LineMap};
pub use types::{Addr, BarrierId, Cycle, LineAddr, LockId, NodeId, ProcId, Protocol};
pub use workload::{AddressAllocator, Op, Script, Workload};

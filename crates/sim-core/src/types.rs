//! Fundamental identifiers and units shared by every layer of the simulator.
//!
//! The simulator is cycle-granular: all times are [`Cycle`] counts from the
//! start of the run. Addresses are byte addresses in a flat simulated shared
//! address space; [`LineAddr`] is the cache-line-granular view of the same
//! space (the byte address divided by the configured line size).


/// A point in simulated time, measured in processor cycles since reset.
pub type Cycle = u64;

/// A byte address in the simulated shared address space.
pub type Addr = u64;

/// Index of a simulated processor (one per node).
pub type ProcId = usize;

/// Index of a node in the machine (processor + caches + directory slice +
/// memory module + network interface). Nodes and processors are 1:1.
pub type NodeId = usize;

/// Identifier of a simulated lock variable.
pub type LockId = u32;

/// Identifier of a simulated barrier.
pub type BarrierId = u32;

/// A cache-line-granular address: `byte_addr / line_size`.
///
/// Kept as a newtype so that byte addresses and line addresses cannot be
/// accidentally mixed; converting between the two always goes through a
/// line-size-aware call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing byte address `addr` for lines of `line_size` bytes.
    #[inline]
    pub fn containing(addr: Addr, line_size: usize) -> Self {
        debug_assert!(line_size.is_power_of_two());
        LineAddr(addr >> line_size.trailing_zeros())
    }

    /// First byte address of this line.
    #[inline]
    pub fn base(self, line_size: usize) -> Addr {
        self.0 << line_size.trailing_zeros()
    }

    /// Index of the word within this line that byte address `addr` falls in.
    ///
    /// `addr` must lie inside the line.
    #[inline]
    pub fn word_index(self, addr: Addr, line_size: usize, word_size: usize) -> usize {
        let off = addr - self.base(line_size);
        debug_assert!((off as usize) < line_size);
        if word_size.is_power_of_two() {
            off as usize >> word_size.trailing_zeros()
        } else {
            off as usize / word_size
        }
    }
}

/// The four protocols evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Sequentially consistent directory protocol: the baseline (unit line in
    /// the paper's figures). Processors stall on every miss.
    Sc,
    /// Eager release consistency, DASH-like: write-back caches, a small write
    /// buffer, invalidations issued eagerly at write time.
    Erc,
    /// Lazy release consistency (the paper's contribution): multiple
    /// concurrent writers, eager write notices, invalidations applied at
    /// acquires, write-through caches with a coalescing buffer.
    Lrc,
    /// The lazier variant: write notices are delayed until release (or until
    /// a written line is evicted).
    LrcExt,
}

impl Protocol {
    /// All protocols, in the order the paper tends to list them.
    pub const ALL: [Protocol; 4] = [Protocol::Sc, Protocol::Erc, Protocol::Lrc, Protocol::LrcExt];

    /// Stable lowercase name used in CLI arguments and report rows.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Sc => "sc",
            Protocol::Erc => "eager",
            Protocol::Lrc => "lazy",
            Protocol::LrcExt => "lazy-ext",
        }
    }

    /// True for the two lazy variants (write-through + weak state).
    pub fn is_lazy(self) -> bool {
        matches!(self, Protocol::Lrc | Protocol::LrcExt)
    }

    /// Parse a CLI-style protocol name (`sc`, `eager`/`erc`, `lazy`/`lrc`,
    /// `lazy-ext`/`lrc-ext`).
    pub fn parse(s: &str) -> Option<Protocol> {
        match s.to_ascii_lowercase().as_str() {
            "sc" | "seq" => Some(Protocol::Sc),
            "eager" | "erc" => Some(Protocol::Erc),
            "lazy" | "lrc" => Some(Protocol::Lrc),
            "lazy-ext" | "lazyext" | "lrc-ext" | "lazier" => Some(Protocol::LrcExt),
            _ => None,
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_roundtrip() {
        let line = LineAddr::containing(0x1234, 128);
        assert_eq!(line.0, 0x1234 / 128);
        assert_eq!(line.base(128), 0x1234 / 128 * 128);
    }

    #[test]
    fn word_index_within_line() {
        let line = LineAddr::containing(256, 128);
        assert_eq!(line.word_index(256, 128, 4), 0);
        assert_eq!(line.word_index(260, 128, 4), 1);
        assert_eq!(line.word_index(383, 128, 4), 31);
    }

    #[test]
    fn protocol_names_roundtrip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.name()), Some(p));
        }
        assert_eq!(Protocol::parse("bogus"), None);
        assert!(Protocol::Lrc.is_lazy());
        assert!(Protocol::LrcExt.is_lazy());
        assert!(!Protocol::Erc.is_lazy());
        assert!(!Protocol::Sc.is_lazy());
    }

    #[test]
    fn adjacent_addresses_same_line() {
        let a = LineAddr::containing(1000, 128);
        let b = LineAddr::containing(1001, 128);
        assert_eq!(a, b);
        let c = LineAddr::containing(1024, 128);
        assert_ne!(a, c);
    }
}

//! Progress watchdog vocabulary: the structured diagnosis a wedged
//! simulation aborts with instead of hanging or panicking opaquely.
//!
//! The machine (in `lrc-core`) detects three kinds of no-progress —
//! an empty event queue with unfinished processors, simulated time
//! exceeding the configured ceiling, and a single processor stalled past a
//! configurable cycle horizon while the rest of the machine keeps moving —
//! and reports each as a [`StallDiagnosis`]: which processors are stuck
//! and since when, how many release fences are pending, what the link
//! layer still has in flight or has abandoned, plus a full machine dump.
//! The diagnosis is an ordinary error value, so harnesses (the chaos soak,
//! the experiment runner) can log it and move on; the legacy panicking
//! entry points render it through [`std::fmt::Display`].

use crate::types::{Cycle, ProcId};

/// Which progress property failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The event queue drained with unfinished processors: nothing can
    /// ever fire again.
    Deadlock,
    /// Simulated time passed the configured `max_cycles` ceiling.
    CycleHorizon(Cycle),
    /// At least one processor has been continuously stalled for longer
    /// than the configured horizon while the machine was still processing
    /// events (livelock or an unserviceable wait).
    ProcStallHorizon(Cycle),
    /// A bounded NI queue stayed full while senders kept backing off and
    /// retrying: queue-full livelock rather than a protocol deadlock.
    NiQueueFull {
        /// The node whose NI queue rejected the most recent send.
        node: ProcId,
        /// Its occupancy at the rejection.
        occupancy: usize,
        /// Its configured capacity.
        cap: usize,
    },
    /// A home spent a line's entire BUSY-NACK retry budget during one busy
    /// episode that never resolved: a NACK storm, not a generic deadlock.
    NackStorm {
        /// The contended line.
        line: u64,
        /// BUSY-NACKs sent during the episode.
        nacks: u32,
    },
    /// A lease expired on a node that never actually crashed: either the
    /// lease bound is mis-set relative to the injected message delays, or
    /// detection itself is buggy. A *correct* suspicion of a crashed node
    /// is not a stall and never produces this.
    DeadNodeSuspected {
        /// The node whose lease expired.
        node: ProcId,
        /// The survivor that declared it dead.
        by: ProcId,
    },
    /// A node crashed, recovery ran, and the survivors still wedged: the
    /// reclamation left a dangling wait (the recovery-bug signature the
    /// checker minimizes).
    RecoveryStalled {
        /// The crashed node whose reclamation did not restore progress.
        node: ProcId,
    },
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallReason::Deadlock => write!(f, "deadlock: event queue empty with unfinished processors"),
            StallReason::CycleHorizon(c) => write!(f, "watchdog: simulation exceeded {c} cycles"),
            StallReason::ProcStallHorizon(c) => {
                write!(f, "watchdog: processor stalled beyond the {c}-cycle horizon")
            }
            StallReason::NiQueueFull { node, occupancy, cap } => write!(
                f,
                "watchdog: NI queue full at node {node} ({occupancy}/{cap} slots) with senders backing off — queue-full livelock"
            ),
            StallReason::NackStorm { line, nacks } => write!(
                f,
                "watchdog: BUSY-NACK storm on line {line} ({nacks} NACK(s), retry budget spent) — busy episode never resolved"
            ),
            StallReason::DeadNodeSuspected { node, by } => write!(
                f,
                "watchdog: node {node} declared dead by node {by} but never crashed — false-positive failure detection (lease bound vs message delay)"
            ),
            StallReason::RecoveryStalled { node } => write!(
                f,
                "watchdog: survivors wedged after node {node} crashed — recovery/reclamation left a dangling wait"
            ),
        }
    }
}

/// One processor that was not running when the watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalledProc {
    /// The processor.
    pub proc: ProcId,
    /// Its status, rendered (`lrc-sim` does not know the machine's status
    /// enum).
    pub status: String,
    /// Cycle at which its current stall began.
    pub since: Cycle,
}

/// Structured abort report of a simulation that could not make progress.
#[derive(Debug, Clone, PartialEq)]
pub struct StallDiagnosis {
    /// Which progress property failed.
    pub reason: StallReason,
    /// Simulated time at which the watchdog fired.
    pub at: Cycle,
    /// Processors finished out of the machine's total.
    pub finished: usize,
    /// Total processors.
    pub procs: usize,
    /// Every processor not currently running, with stall start times.
    pub stalled: Vec<StalledProc>,
    /// Processors blocked in a release fence (`Releasing` status) — the
    /// classic symptom of a lost ack or write notice.
    pub pending_fences: usize,
    /// Messages the link layer still holds in its retransmit buffer.
    pub in_flight_msgs: usize,
    /// Messages the link layer gave up on after exhausting retries,
    /// rendered — each one is a delivery the protocol will wait for
    /// forever.
    pub abandoned_msgs: Vec<String>,
    /// Events still pending in the queue when the watchdog fired.
    pub pending_events: usize,
    /// The flight recorder's tail: the last few trace records per node,
    /// merged into one rendered timeline. Empty when the machine ran
    /// without a recorder (`lrc-sim` carries strings because the record
    /// type lives upstream in `lrc-trace`).
    pub recent_events: Vec<String>,
    /// Full machine-state dump (directory, buffers, parked requests).
    pub machine_dump: String,
    /// Sharded runs only: each shard's local clock (its next pending event
    /// time) when the run stopped, indexed by shard. A wedged shard shows
    /// up as the one pinning the global lower bound while the others have
    /// run ahead or drained (`u64::MAX`). Empty for sequential runs.
    pub shard_clocks: Vec<Cycle>,
}

impl std::fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} (t={}, {}/{} processors finished)", self.reason, self.at, self.finished, self.procs)?;
        writeln!(
            f,
            "  pending fences: {}; link layer: {} in flight, {} abandoned; {} events pending",
            self.pending_fences,
            self.in_flight_msgs,
            self.abandoned_msgs.len(),
            self.pending_events,
        )?;
        for s in &self.stalled {
            writeln!(f, "  P{} {} since t={} ({} cycles)", s.proc, s.status, s.since, self.at.saturating_sub(s.since))?;
        }
        for m in &self.abandoned_msgs {
            writeln!(f, "  abandoned: {m}")?;
        }
        if !self.shard_clocks.is_empty() {
            write!(f, "  shard clocks:")?;
            for (s, c) in self.shard_clocks.iter().enumerate() {
                if *c == Cycle::MAX {
                    write!(f, " S{s}=drained")?;
                } else {
                    write!(f, " S{s}=t{c}")?;
                }
            }
            writeln!(f)?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  last {} events before the stall:", self.recent_events.len())?;
            for e in &self.recent_events {
                writeln!(f, "    {e}")?;
            }
        }
        write!(f, "{}", self.machine_dump)
    }
}

impl std::error::Error for StallDiagnosis {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StallDiagnosis {
        StallDiagnosis {
            reason: StallReason::Deadlock,
            at: 1234,
            finished: 1,
            procs: 2,
            stalled: vec![StalledProc { proc: 0, status: "Releasing(LockRelease(3))".into(), since: 1000 }],
            pending_fences: 1,
            in_flight_msgs: 2,
            abandoned_msgs: vec!["P0 -> P1 WriteNotice line 7".into()],
            pending_events: 0,
            recent_events: vec!["[t=  1200] P0 -> P1 LockRel".into()],
            machine_dump: "protocol=lazy t=1234\n".into(),
            shard_clocks: Vec::new(),
        }
    }

    #[test]
    fn display_is_structured_and_complete() {
        let d = sample();
        let text = d.to_string();
        assert!(text.starts_with("deadlock:"));
        assert!(text.contains("1/2 processors finished"));
        assert!(text.contains("pending fences: 1"));
        assert!(text.contains("P0 Releasing(LockRelease(3)) since t=1000 (234 cycles)"));
        assert!(text.contains("abandoned: P0 -> P1 WriteNotice line 7"));
        assert!(text.contains("last 1 events before the stall:"));
        assert!(text.contains("[t=  1200] P0 -> P1 LockRel"));
        assert!(text.contains("protocol=lazy"));
    }

    #[test]
    fn reasons_render_their_horizons() {
        assert!(StallReason::CycleHorizon(500).to_string().contains("exceeded 500 cycles"));
        assert!(StallReason::ProcStallHorizon(9000).to_string().contains("9000-cycle horizon"));
    }

    #[test]
    fn resource_reasons_name_the_resource() {
        let q = StallReason::NiQueueFull { node: 3, occupancy: 2, cap: 2 };
        let text = q.to_string();
        assert!(text.contains("node 3"), "{text}");
        assert!(text.contains("2/2"), "{text}");
        let s = StallReason::NackStorm { line: 17, nacks: 8 };
        let text = s.to_string();
        assert!(text.contains("line 17"), "{text}");
        assert!(text.contains("8 NACK"), "{text}");
    }

    #[test]
    fn crash_reasons_name_the_nodes() {
        let d = StallReason::DeadNodeSuspected { node: 5, by: 2 };
        let text = d.to_string();
        assert!(text.contains("node 5"), "{text}");
        assert!(text.contains("node 2"), "{text}");
        assert!(text.contains("false-positive"), "{text}");
        let r = StallReason::RecoveryStalled { node: 1 };
        let text = r.to_string();
        assert!(text.contains("node 1 crashed"), "{text}");
        assert!(text.contains("recovery"), "{text}");
    }
}

//! Reference sequential interpreter for scripted programs.
//!
//! The model checker's ground truth for the paper's central correctness
//! claim: for a data-race-free program, every protocol execution must be
//! equivalent to *some* sequentially consistent execution. This module
//! computes the final memory of one such SC execution — the one whose
//! synchronization operations happen in the order the simulated machine
//! actually granted them. For a DRF program every SC execution consistent
//! with that synchronization order produces the same final memory, so the
//! machine's final memory must match.
//!
//! Writes are tracked symbolically: the value stored by processor `p`'s
//! `k`-th write is the unique token `WriteId { proc: p, seq: k }`. That
//! makes "same final memory" checkable without modelling real data.

use crate::types::{LockId, ProcId};
use crate::workload::{Op, Script};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Symbolic value of one store: the `seq`-th write issued by `proc`
/// (counting from 1 in program order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteId {
    /// Issuing processor.
    pub proc: ProcId,
    /// 1-based program-order index among that processor's writes.
    pub seq: u64,
}

/// Final memory of the reference execution: `(line, word) -> last writer`.
/// Untouched words are absent.
pub type RefMemory = BTreeMap<(u64, usize), WriteId>;

/// Why the reference interpretation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    /// A processor waits on a lock whose observed grant order never grants
    /// it (the machine's grant log is inconsistent with the script).
    GrantOrderMismatch {
        /// The lock in question.
        lock: LockId,
        /// The stuck processor.
        proc: ProcId,
    },
    /// No processor can make progress but not all are done (e.g. a barrier
    /// some processor never reaches).
    Stuck {
        /// Processors not yet done.
        unfinished: Vec<ProcId>,
    },
}

impl std::fmt::Display for RefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefError::GrantOrderMismatch { lock, proc } => write!(
                f,
                "reference interpreter: grant order never grants lock {lock} to proc {proc}"
            ),
            RefError::Stuck { unfinished } => {
                write!(f, "reference interpreter stuck; unfinished procs {unfinished:?}")
            }
        }
    }
}

/// Execute `script` sequentially, with lock acquisitions following
/// `grant_order` (the `(lock, proc)` sequence in which the simulated
/// machine granted locks; pass `&[]` for lock-free scripts) and barriers
/// releasing once all processors arrive. Returns the final symbolic
/// memory at `line_size`/`word_size` granularity.
pub fn interpret(
    script: &Script,
    line_size: usize,
    word_size: usize,
    grant_order: &[(LockId, ProcId)],
) -> Result<RefMemory, RefError> {
    let streams = script.streams();
    let n = streams.len();
    let mut cursor = vec![0usize; n];
    let mut done = vec![false; n];
    let mut write_seq = vec![0u64; n];
    let mut mem = RefMemory::new();

    // Per-lock grant queues, in observed order.
    let mut grants: HashMap<LockId, VecDeque<ProcId>> = HashMap::new();
    for &(l, p) in grant_order {
        grants.entry(l).or_default().push_back(p);
    }
    // Barrier arrival sets (barrier ids are reusable across phases).
    let mut at_barrier: HashMap<u32, Vec<ProcId>> = HashMap::new();

    loop {
        if done.iter().all(|&d| d) {
            return Ok(mem);
        }
        let mut progressed = false;
        for p in 0..n {
            // Run processor p until it blocks or finishes; any such
            // schedule is SC, and for DRF programs they all agree.
            while !done[p] {
                let Some(&op) = streams[p].get(cursor[p]) else {
                    done[p] = true;
                    progressed = true;
                    break;
                };
                match op {
                    Op::Done => {
                        done[p] = true;
                        progressed = true;
                    }
                    Op::Acquire(l) => {
                        match grants.get_mut(&l).and_then(|q| {
                            if q.front() == Some(&p) {
                                q.pop_front()
                            } else {
                                None
                            }
                        }) {
                            Some(_) => {
                                cursor[p] += 1;
                                progressed = true;
                            }
                            None => break, // not our turn yet
                        }
                    }
                    Op::Barrier(b) => {
                        let waiting = at_barrier.entry(b).or_default();
                        if !waiting.contains(&p) {
                            waiting.push(p);
                            progressed = true;
                        }
                        if waiting.len() == n {
                            // Release everyone (each proc advances past the
                            // barrier op on its next visit).
                            at_barrier.remove(&b);
                            // Advance every proc parked here — exactly
                            // those whose current op is this barrier.
                            for (q, cq) in cursor.iter_mut().enumerate() {
                                if streams[q].get(*cq) == Some(&Op::Barrier(b)) {
                                    *cq += 1;
                                }
                            }
                            continue;
                        }
                        break; // parked until the last arrival
                    }
                    Op::Write(addr) => {
                        write_seq[p] += 1;
                        let line = addr >> line_size.trailing_zeros();
                        let word = (addr as usize % line_size) / word_size;
                        mem.insert((line, word), WriteId { proc: p, seq: write_seq[p] });
                        cursor[p] += 1;
                        progressed = true;
                    }
                    Op::Read(_) | Op::Compute(_) | Op::Release(_) | Op::Fence => {
                        cursor[p] += 1;
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            // Diagnose: a proc stuck on an acquire whose queue will never
            // reach it is a grant-order mismatch; otherwise a stuck barrier.
            for p in 0..n {
                if done[p] {
                    continue;
                }
                if let Some(&Op::Acquire(l)) = streams[p].get(cursor[p]) {
                    return Err(RefError::GrantOrderMismatch { lock: l, proc: p });
                }
            }
            let unfinished = (0..n).filter(|&p| !done[p]).collect();
            return Err(RefError::Stuck { unfinished });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(proc: ProcId, seq: u64) -> WriteId {
        WriteId { proc, seq }
    }

    #[test]
    fn single_proc_last_write_wins() {
        let s = Script::new("t", vec![vec![Op::Write(0), Op::Write(0), Op::Write(4)]]);
        let mem = interpret(&s, 32, 4, &[]).unwrap();
        assert_eq!(mem.get(&(0, 0)), Some(&wid(0, 2)));
        assert_eq!(mem.get(&(0, 1)), Some(&wid(0, 3)));
    }

    #[test]
    fn grant_order_decides_lock_winner() {
        // Both procs write word 0 under the same lock; the second grantee's
        // write is final.
        let crit = |_p: usize| vec![Op::Acquire(0), Op::Write(0), Op::Release(0)];
        let s = Script::new("t", vec![crit(0), crit(1)]);
        let mem01 = interpret(&s, 32, 4, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(mem01.get(&(0, 0)), Some(&wid(1, 1)));
        let s = Script::new("t", vec![crit(0), crit(1)]);
        let mem10 = interpret(&s, 32, 4, &[(0, 1), (0, 0)]).unwrap();
        assert_eq!(mem10.get(&(0, 0)), Some(&wid(0, 1)));
    }

    #[test]
    fn barrier_orders_phases() {
        // P0 writes before the barrier, P1 after: P1's write is final.
        let s = Script::new(
            "t",
            vec![
                vec![Op::Write(0), Op::Barrier(0)],
                vec![Op::Barrier(0), Op::Write(0)],
            ],
        );
        let mem = interpret(&s, 32, 4, &[]).unwrap();
        assert_eq!(mem.get(&(0, 0)), Some(&wid(1, 1)));
    }

    #[test]
    fn bad_grant_order_is_reported() {
        let s = Script::new(
            "t",
            vec![vec![Op::Acquire(0), Op::Release(0)], vec![Op::Compute(1)]],
        );
        let err = interpret(&s, 32, 4, &[]).unwrap_err();
        assert_eq!(err, RefError::GrantOrderMismatch { lock: 0, proc: 0 });
    }

    #[test]
    fn missing_barrier_arrival_is_stuck() {
        let s = Script::new("t", vec![vec![Op::Barrier(0)], vec![Op::Compute(1)]]);
        let err = interpret(&s, 32, 4, &[]).unwrap_err();
        assert_eq!(err, RefError::Stuck { unfinished: vec![0] });
    }
}

//! Property tests for the memory-system substrates.

use lrc_mem::{Cache, CbPush, CoalescingBuffer, LineState, WriteBuffer};
use lrc_sim::LineAddr;
use proptest::prelude::*;

proptest! {
    /// The cache never holds more lines than its geometry allows, and the
    /// most recently inserted line is always resident.
    #[test]
    fn cache_capacity_and_mru(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut c = Cache::with_geometry(4, 2);
        for (line, write) in ops {
            let state = if write { LineState::ReadWrite } else { LineState::ReadOnly };
            c.insert(LineAddr(line), state);
            prop_assert!(c.contains(LineAddr(line)), "MRU line must be resident");
            prop_assert!(c.resident() <= 8, "capacity exceeded: {}", c.resident());
        }
    }

    /// Evictions return exactly the line that disappears.
    #[test]
    fn cache_eviction_is_accounted(lines in prop::collection::vec(0u64..32, 1..100)) {
        let mut c = Cache::with_geometry(2, 1);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for l in lines {
            if let Some(ev) = c.insert(LineAddr(l), LineState::ReadOnly) {
                prop_assert!(resident.remove(&ev.line.0), "evicted line {} was not resident", ev.line.0);
                prop_assert!(!c.contains(ev.line));
            }
            resident.insert(l);
            resident.retain(|&x| c.contains(LineAddr(x)));
        }
    }

    /// Dirty masks survive permission changes and are returned at eviction.
    #[test]
    fn cache_dirty_words_are_preserved(words in prop::collection::vec(0usize..32, 1..40)) {
        let mut c = Cache::with_geometry(4, 1);
        c.insert(LineAddr(7), LineState::ReadWrite);
        let mut expected = 0u64;
        for w in words {
            c.mark_dirty(LineAddr(7), w);
            expected |= 1 << w;
        }
        prop_assert_eq!(c.dirty_words(LineAddr(7)), expected);
        let ev = c.invalidate(LineAddr(7)).unwrap();
        prop_assert_eq!(ev.dirty_words, expected);
    }

    /// The write buffer never exceeds its capacity, coalesces by line, and
    /// retires strictly in FIFO order.
    #[test]
    fn write_buffer_fifo_and_bounded(pushes in prop::collection::vec((0u64..8, 0usize..32), 1..100)) {
        let mut wb = WriteBuffer::new(4);
        let mut order: Vec<u64> = Vec::new();
        for (line, word) in pushes {
            match wb.push(LineAddr(line), word) {
                lrc_mem::WbPush::Allocated => order.push(line),
                lrc_mem::WbPush::Coalesced => prop_assert!(order.contains(&line)),
                lrc_mem::WbPush::Full => prop_assert_eq!(wb.len(), 4),
            }
            prop_assert!(wb.len() <= 4);
        }
        // Retire everything: must come out in allocation order.
        let mut retired = Vec::new();
        while !wb.is_empty() {
            let front = wb.front().unwrap().line;
            wb.mark_ready(front);
            retired.push(wb.pop_ready().unwrap().line.0);
        }
        prop_assert_eq!(retired, order);
    }

    /// The coalescing buffer merges per line and bounds its occupancy; every
    /// displaced victim is the oldest entry.
    #[test]
    fn coalescing_buffer_merges_and_bounds(pushes in prop::collection::vec((0u64..24, 0usize..32), 1..120)) {
        let mut cb = CoalescingBuffer::new(8);
        let mut fifo: Vec<u64> = Vec::new();
        for (line, word) in pushes {
            match cb.push(LineAddr(line), word) {
                CbPush::Allocated => fifo.push(line),
                CbPush::Merged => prop_assert!(fifo.contains(&line)),
                CbPush::Displaced(v) => {
                    prop_assert_eq!(v.line.0, fifo.remove(0));
                    fifo.push(line);
                }
            }
            prop_assert!(cb.len() <= 8);
            prop_assert_eq!(cb.len(), fifo.len());
        }
    }
}

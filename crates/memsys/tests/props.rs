//! Property tests for the memory-system substrates, driven by the
//! simulation kernel's deterministic PRNG.

use lrc_mem::{Cache, CbPush, CoalescingBuffer, LineState, WriteBuffer};
use lrc_sim::{LineAddr, Rng};

/// The cache never holds more lines than its geometry allows, and the
/// most recently inserted line is always resident.
#[test]
fn cache_capacity_and_mru() {
    let mut rng = Rng::new(0x5eed_0e01);
    for _ in 0..40 {
        let n = 1 + rng.below(200) as usize;
        let mut c = Cache::with_geometry(4, 2);
        for _ in 0..n {
            let line = rng.below(64);
            let state = if rng.chance(0.5) { LineState::ReadWrite } else { LineState::ReadOnly };
            c.insert(LineAddr(line), state);
            assert!(c.contains(LineAddr(line)), "MRU line must be resident");
            assert!(c.resident() <= 8, "capacity exceeded: {}", c.resident());
        }
    }
}

/// Evictions return exactly the line that disappears.
#[test]
fn cache_eviction_is_accounted() {
    let mut rng = Rng::new(0x5eed_0e02);
    for _ in 0..40 {
        let n = 1 + rng.below(100) as usize;
        let mut c = Cache::with_geometry(2, 1);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for _ in 0..n {
            let l = rng.below(32);
            if let Some(ev) = c.insert(LineAddr(l), LineState::ReadOnly) {
                assert!(resident.remove(&ev.line.0), "evicted line {} was not resident", ev.line.0);
                assert!(!c.contains(ev.line));
            }
            resident.insert(l);
            resident.retain(|&x| c.contains(LineAddr(x)));
        }
    }
}

/// Dirty masks survive permission changes and are returned at eviction.
#[test]
fn cache_dirty_words_are_preserved() {
    let mut rng = Rng::new(0x5eed_0e03);
    for _ in 0..40 {
        let n = 1 + rng.below(40) as usize;
        let mut c = Cache::with_geometry(4, 1);
        c.insert(LineAddr(7), LineState::ReadWrite);
        let mut expected = 0u64;
        for _ in 0..n {
            let w = rng.below(32) as usize;
            c.mark_dirty(LineAddr(7), w);
            expected |= 1 << w;
        }
        assert_eq!(c.dirty_words(LineAddr(7)), expected);
        let ev = c.invalidate(LineAddr(7)).unwrap();
        assert_eq!(ev.dirty_words, expected);
    }
}

/// The write buffer never exceeds its capacity, coalesces by line, and
/// retires strictly in FIFO order.
#[test]
fn write_buffer_fifo_and_bounded() {
    let mut rng = Rng::new(0x5eed_0e04);
    for _ in 0..40 {
        let n = 1 + rng.below(100) as usize;
        let mut wb = WriteBuffer::new(4);
        let mut order: Vec<u64> = Vec::new();
        for _ in 0..n {
            let line = rng.below(8);
            let word = rng.below(32) as usize;
            match wb.push(LineAddr(line), word) {
                lrc_mem::WbPush::Allocated => order.push(line),
                lrc_mem::WbPush::Coalesced => assert!(order.contains(&line)),
                lrc_mem::WbPush::Full => assert_eq!(wb.len(), 4),
            }
            assert!(wb.len() <= 4);
        }
        // Retire everything: must come out in allocation order.
        let mut retired = Vec::new();
        while !wb.is_empty() {
            let front = wb.front().unwrap().line;
            wb.mark_ready(front);
            retired.push(wb.pop_ready().unwrap().line.0);
        }
        assert_eq!(retired, order);
    }
}

/// The coalescing buffer merges per line and bounds its occupancy; every
/// displaced victim is the oldest entry.
#[test]
fn coalescing_buffer_merges_and_bounds() {
    let mut rng = Rng::new(0x5eed_0e05);
    for _ in 0..40 {
        let n = 1 + rng.below(120) as usize;
        let mut cb = CoalescingBuffer::new(8);
        let mut fifo: Vec<u64> = Vec::new();
        for _ in 0..n {
            let line = rng.below(24);
            let word = rng.below(32) as usize;
            match cb.push(LineAddr(line), word) {
                CbPush::Allocated => fifo.push(line),
                CbPush::Merged => assert!(fifo.contains(&line)),
                CbPush::Displaced(v) => {
                    assert_eq!(v.line.0, fifo.remove(0));
                    fifo.push(line);
                }
            }
            assert!(cb.len() <= 8);
            assert_eq!(cb.len(), fifo.len());
        }
    }
}

//! `lrc-mem` — the node-local memory system: finite caches with per-word
//! dirty masks, the 4-entry coalescing write buffer with read bypass, the
//! 16-entry coalescing write-through buffer used by the lazy protocols, and
//! memory-module / bus timing with contention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::new_without_default)]

pub mod cache;
pub mod coalescing;
pub mod memory;
pub mod write_buffer;

pub use cache::{Cache, Eviction, LineState, ResidentLine};
pub use coalescing::{CbEntry, CbPush, CoalescingBuffer};
pub use memory::{Bus, MemoryModule, TimedResource};
pub use write_buffer::{WbEntry, WbPush, WriteBuffer};

//! Memory-module and node-bus timing.
//!
//! Each node owns one memory module (holding the pages homed there) and one
//! local bus. Both are modelled as serially reusable resources: an access
//! starts when the resource frees up, runs for `setup + size/bandwidth`
//! cycles (memory) or `size/bandwidth` (bus), and holds the resource until
//! done. This captures the memory contention the paper models.

use lrc_sim::{Cycle, MachineConfig};

/// A serially reusable timed resource.
#[derive(Debug, Clone)]
pub struct TimedResource {
    free_at: Cycle,
    busy_cycles: u64,
}

impl TimedResource {
    /// A resource idle from time 0.
    pub fn new() -> Self {
        TimedResource { free_at: 0, busy_cycles: 0 }
    }

    /// Occupy the resource for `duration` cycles starting no earlier than
    /// `now`; returns the completion time.
    pub fn occupy(&mut self, now: Cycle, duration: u64) -> Cycle {
        let start = now.max(self.free_at);
        self.free_at = start + duration;
        self.busy_cycles += duration;
        self.free_at
    }

    /// Earliest time a new access could start.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total cycles this resource has been occupied (utilization metric).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Restore checkpointed occupancy state.
    pub fn restore(&mut self, free_at: Cycle, busy_cycles: u64) {
        self.free_at = free_at;
        self.busy_cycles = busy_cycles;
    }
}

impl Default for TimedResource {
    fn default() -> Self {
        Self::new()
    }
}

/// One node's memory module.
#[derive(Debug, Clone)]
pub struct MemoryModule {
    resource: TimedResource,
    setup: u64,
    bytes_per_cycle: u64,
    accesses: u64,
}

impl MemoryModule {
    /// Module with `cfg`'s setup time and bandwidth.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemoryModule {
            resource: TimedResource::new(),
            setup: cfg.mem_setup,
            bytes_per_cycle: cfg.mem_bytes_per_cycle,
            accesses: 0,
        }
    }

    /// Perform an access of `bytes` starting no earlier than `now`; returns
    /// the completion time (includes queueing for the module).
    ///
    /// The module is pipelined in the usual latency/occupancy split: every
    /// access experiences the full `setup + transfer` latency, but a new
    /// access may start as soon as the previous one's *transfer* slot is
    /// free, so back-to-back accesses stream at the bandwidth limit rather
    /// than serializing on the setup time as well.
    pub fn access(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.accesses += 1;
        let transfer = MachineConfig::transfer_cycles(bytes, self.bytes_per_cycle);
        self.resource.occupy(now, transfer) + self.setup
    }

    /// Contention-free duration of an access of `bytes`.
    pub fn latency(&self, bytes: u64) -> u64 {
        self.setup + MachineConfig::transfer_cycles(bytes, self.bytes_per_cycle)
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total busy cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.resource.busy_cycles()
    }

    /// Earliest time a new access could start (checkpointing).
    pub fn free_at(&self) -> Cycle {
        self.resource.free_at()
    }

    /// Restore checkpointed occupancy state and access count.
    pub fn restore(&mut self, free_at: Cycle, busy_cycles: u64, accesses: u64) {
        self.resource.restore(free_at, busy_cycles);
        self.accesses = accesses;
    }
}

/// One node's local bus (cache-fill path).
#[derive(Debug, Clone)]
pub struct Bus {
    resource: TimedResource,
    bytes_per_cycle: u64,
}

impl Bus {
    /// Bus with `cfg`'s bandwidth.
    pub fn new(cfg: &MachineConfig) -> Self {
        Bus { resource: TimedResource::new(), bytes_per_cycle: cfg.bus_bytes_per_cycle }
    }

    /// Transfer `bytes` starting no earlier than `now`; returns completion.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let duration = MachineConfig::transfer_cycles(bytes, self.bytes_per_cycle);
        self.resource.occupy(now, duration)
    }

    /// Contention-free duration of transferring `bytes`.
    pub fn latency(&self, bytes: u64) -> u64 {
        MachineConfig::transfer_cycles(bytes, self.bytes_per_cycle)
    }

    /// Earliest time a new transfer could start (checkpointing).
    pub fn free_at(&self) -> Cycle {
        self.resource.free_at()
    }

    /// Total busy cycles (checkpointing).
    pub fn busy_cycles(&self) -> u64 {
        self.resource.busy_cycles()
    }

    /// Restore checkpointed occupancy state.
    pub fn restore(&mut self, free_at: Cycle, busy_cycles: u64) {
        self.resource.restore(free_at, busy_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_memory_latency() {
        // Section 3: memory cost for a line fill is 20 + 128/2 = 84 cycles.
        let cfg = MachineConfig::paper_default(64);
        let mut m = MemoryModule::new(&cfg);
        assert_eq!(m.latency(128), 84);
        assert_eq!(m.access(0, 128), 84);
    }

    #[test]
    fn memory_contention_queues() {
        let cfg = MachineConfig::paper_default(64);
        let mut m = MemoryModule::new(&cfg);
        let t1 = m.access(0, 128);
        let t2 = m.access(10, 128); // arrives while busy
        assert_eq!(t1, 84);
        // Pipelined: the second transfer starts when the first's transfer
        // slot frees (cycle 64), then pays the full latency.
        assert_eq!(t2, 148, "second access queues for the transfer slot");
        assert_eq!(m.accesses(), 2);
        assert_eq!(m.busy_cycles(), 128);
    }

    #[test]
    fn idle_gap_does_not_accumulate() {
        let cfg = MachineConfig::paper_default(64);
        let mut m = MemoryModule::new(&cfg);
        m.access(0, 128);
        let t = m.access(1000, 128);
        assert_eq!(t, 1084);
        let t2 = m.access(1064, 128);
        assert_eq!(t2, 1148, "back-to-back streams at bandwidth");
    }

    #[test]
    fn bus_fill_cost() {
        // Section 3: local bus fill of a line is 128/2 = 64 cycles.
        let cfg = MachineConfig::paper_default(64);
        let mut b = Bus::new(&cfg);
        assert_eq!(b.latency(128), 64);
        assert_eq!(b.transfer(0, 128), 64);
        assert_eq!(b.transfer(0, 128), 128);
    }

    #[test]
    fn word_write_through_is_cheap() {
        let cfg = MachineConfig::paper_default(64);
        let m = MemoryModule::new(&cfg);
        // A 3-word write-through costs setup + ceil(12/2).
        assert_eq!(m.latency(12), 26);
    }
}

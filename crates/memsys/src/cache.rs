//! Finite-size cache model with per-line local state and per-word dirty
//! masks.
//!
//! The paper distinguishes the *global* state kept by the directory
//! (Uncached/Shared/Dirty/Weak) from the *local* state of each cached copy,
//! which only records the access permission: invalid, read-only, or
//! read-write. This module models the local side. Per-word dirty bits
//! support the lazy protocols' write-through merging and let write-backs
//! carry only the modified words.

use lrc_sim::{LineAddr, MachineConfig};

/// Local access permission of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Not present (or invalidated).
    Invalid,
    /// Present; reads hit, writes need (at least) a protocol action.
    ReadOnly,
    /// Present and writable by the local processor.
    ReadWrite,
}

/// A resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentLine {
    /// Line address (tag + index combined — we store the full line address).
    pub line: LineAddr,
    /// Current permission.
    pub state: LineState,
    /// Bit `i` set ⇒ word `i` has been written locally and not yet flushed.
    pub dirty_words: u64,
    /// Insertion timestamp used for LRU within a set.
    stamp: u64,
}

/// Result of inserting a line into a full set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The victim's line address.
    pub line: LineAddr,
    /// The victim's permission at eviction time.
    pub state: LineState,
    /// The victim's unflushed dirty words.
    pub dirty_words: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: LineAddr,
    state: LineState,
    dirty_words: u64,
    stamp: u64,
}

/// Vacant-slot sentinel: `state` is the authority ([`LineState::Invalid`] =
/// empty); the address is set to an impossible value so tag compares can
/// skip the state check.
const VACANT: Slot =
    Slot { line: LineAddr(u64::MAX), state: LineState::Invalid, dirty_words: 0, stamp: 0 };

/// A set-associative cache (direct-mapped when `assoc == 1`, as in Table 1).
///
/// Storage is one flat slot array (`num_sets * assoc`, set `i` owning slots
/// `[i * assoc, (i + 1) * assoc)`): a lookup is a single indexed probe over
/// contiguous memory rather than a pointer chase through per-set vectors —
/// this sits on the simulator's hottest path (every load/store hit).
#[derive(Debug, Clone)]
pub struct Cache {
    slots: Vec<Slot>,
    num_sets: usize,
    assoc: usize,
    /// `num_sets - 1` when `num_sets` is a power of two (the set index is
    /// then a mask instead of a modulo — this indexes every cache probe,
    /// the simulator's single hottest operation); `u64::MAX` otherwise.
    set_mask: u64,
    tick: u64,
}

impl Cache {
    /// Cache sized per `cfg` (capacity, line size, associativity).
    pub fn new(cfg: &MachineConfig) -> Self {
        let lines = cfg.lines_per_cache();
        let assoc = cfg.cache_assoc;
        assert!(lines.is_multiple_of(assoc));
        Self::with_geometry(lines / assoc, assoc)
    }

    /// Build a cache with an explicit geometry (tests).
    pub fn with_geometry(num_sets: usize, assoc: usize) -> Self {
        let set_mask =
            if num_sets.is_power_of_two() { num_sets as u64 - 1 } else { u64::MAX };
        Cache { slots: vec![VACANT; num_sets * assoc], num_sets, assoc, set_mask, tick: 0 }
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = if self.set_mask != u64::MAX {
            (line.0 & self.set_mask) as usize
        } else {
            (line.0 % self.num_sets as u64) as usize
        };
        set * self.assoc..(set + 1) * self.assoc
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<&Slot> {
        self.slots[self.set_range(line)].iter().find(|s| s.line == line)
    }

    #[inline]
    fn find_mut(&mut self, line: LineAddr) -> Option<&mut Slot> {
        let range = self.set_range(line);
        self.slots[range].iter_mut().find(|s| s.line == line)
    }

    /// Current permission for `line` ([`LineState::Invalid`] if absent).
    #[inline]
    pub fn state(&self, line: LineAddr) -> LineState {
        self.find(line).map_or(LineState::Invalid, |s| s.state)
    }

    /// True if the line is present with any permission.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Touch `line` for LRU purposes (call on every hit).
    #[inline]
    pub fn touch(&mut self, line: LineAddr) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(s) = self.find_mut(line) {
            s.stamp = tick;
        }
    }

    /// Commit a retired write in one probe: if `line` is present, raise it
    /// to read-write, touch it, and OR `words` into its dirty mask —
    /// replacing `contains` + `upgrade` + `touch` + `mark_dirty_words`.
    /// Returns false (cache untouched) if the line is absent.
    #[inline]
    pub fn promote_written(&mut self, line: LineAddr, words: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.find_mut(line) {
            Some(s) => {
                s.state = LineState::ReadWrite;
                s.stamp = tick;
                s.dirty_words |= words;
                true
            }
            None => false,
        }
    }

    /// Single-probe write-hit check: when `line` is present *read-write*,
    /// touch it and mark `word` dirty; always returns the line's state so
    /// the caller can start the right coherence action otherwise. (A
    /// read-only line is deliberately left untouched — raising it needs a
    /// protocol transaction.)
    #[inline]
    pub fn write_probe(&mut self, line: LineAddr, word: usize) -> LineState {
        debug_assert!(word < 64);
        self.tick += 1;
        let tick = self.tick;
        match self.find_mut(line) {
            Some(s) => {
                if s.state == LineState::ReadWrite {
                    s.stamp = tick;
                    s.dirty_words |= 1 << word;
                }
                s.state
            }
            None => LineState::Invalid,
        }
    }

    /// Touch `line` if present and report whether it was — the read-hit
    /// fast path, probing the set once instead of `contains` + `touch`.
    /// (The LRU tick advances even on a miss; only the *relative* order of
    /// resident stamps matters, so this is observationally neutral.)
    #[inline]
    pub fn touch_hit(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.find_mut(line) {
            Some(s) => {
                s.stamp = tick;
                true
            }
            None => false,
        }
    }

    /// Insert `line` with permission `state`, evicting the LRU victim if the
    /// set is full. If the line is already present its permission is
    /// replaced (dirty words preserved).
    pub fn insert(&mut self, line: LineAddr, state: LineState) -> Option<Eviction> {
        debug_assert!(state != LineState::Invalid);
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.slots[range];
        if let Some(s) = set.iter_mut().find(|s| s.line == line) {
            s.state = state;
            s.stamp = tick;
            return None;
        }
        // Prefer a vacant slot; otherwise evict the LRU victim (stamps are
        // globally unique, so the minimum is unambiguous).
        let mut evicted = None;
        let slot = match set.iter_mut().find(|s| s.state == LineState::Invalid) {
            Some(s) => s,
            None => {
                let v = set.iter_mut().min_by_key(|s| s.stamp).expect("full set has a victim");
                evicted =
                    Some(Eviction { line: v.line, state: v.state, dirty_words: v.dirty_words });
                v
            }
        };
        *slot = Slot { line, state, dirty_words: 0, stamp: tick };
        evicted
    }

    /// Raise permission of a present line to read-write (upgrade). Returns
    /// false if the line is absent.
    #[inline]
    pub fn upgrade(&mut self, line: LineAddr) -> bool {
        match self.find_mut(line) {
            Some(s) => {
                s.state = LineState::ReadWrite;
                true
            }
            None => false,
        }
    }

    /// OR a whole dirty-word mask into a present line in one probe —
    /// equivalent to [`Cache::mark_dirty`] once per set bit. Returns false
    /// if the line is absent.
    #[inline]
    pub fn mark_dirty_words(&mut self, line: LineAddr, words: u64) -> bool {
        match self.find_mut(line) {
            Some(s) => {
                s.dirty_words |= words;
                true
            }
            None => false,
        }
    }

    /// Mark word `word` of a present line dirty. Returns false if absent.
    #[inline]
    pub fn mark_dirty(&mut self, line: LineAddr, word: usize) -> bool {
        debug_assert!(word < 64);
        match self.find_mut(line) {
            Some(s) => {
                s.dirty_words |= 1 << word;
                true
            }
            None => false,
        }
    }

    /// Remove `line`; returns its state at removal for write-back decisions.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Eviction> {
        let s = self.find_mut(line)?;
        let ev = Eviction { line: s.line, state: s.state, dirty_words: s.dirty_words };
        *s = VACANT;
        Some(ev)
    }

    /// Clear the dirty mask of a present line (after a flush/write-back).
    pub fn clear_dirty(&mut self, line: LineAddr) {
        if let Some(s) = self.find_mut(line) {
            s.dirty_words = 0;
        }
    }

    /// Dirty-word mask of a present line (0 if absent or clean).
    pub fn dirty_words(&self, line: LineAddr) -> u64 {
        self.find(line).map_or(0, |s| s.dirty_words)
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.state != LineState::Invalid).count()
    }

    /// Iterate over all resident lines (used by invariant checks and the
    /// model checker's fingerprint, which sorts — slot order is incidental).
    pub fn iter(&self) -> impl Iterator<Item = ResidentLine> + '_ {
        self.slots.iter().filter(|s| s.state != LineState::Invalid).map(|s| ResidentLine {
            line: s.line,
            state: s.state,
            dirty_words: s.dirty_words,
            stamp: s.stamp,
        })
    }

    /// Checkpoint the full slot array in storage order, vacant slots
    /// included, as `(line, state, dirty_words, stamp)` tuples, plus the
    /// LRU tick. Slot *positions* matter (victim choice scans the set in
    /// storage order), so unlike [`Cache::iter`] this listing is exact.
    pub fn save_slots(&self) -> (Vec<(LineAddr, LineState, u64, u64)>, u64) {
        (self.slots.iter().map(|s| (s.line, s.state, s.dirty_words, s.stamp)).collect(), self.tick)
    }

    /// Restore a checkpoint taken by [`Cache::save_slots`] into a cache of
    /// identical geometry. Returns false (cache unchanged) on a slot-count
    /// mismatch.
    pub fn restore_slots(&mut self, slots: &[(LineAddr, LineState, u64, u64)], tick: u64) -> bool {
        if slots.len() != self.slots.len() {
            return false;
        }
        for (dst, &(line, state, dirty_words, stamp)) in self.slots.iter_mut().zip(slots) {
            *dst = Slot { line, state, dirty_words, stamp };
        }
        self.tick = tick;
        true
    }

    /// Geometry accessor: number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Geometry accessor: associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn insert_then_hit() {
        let mut c = Cache::with_geometry(4, 1);
        assert_eq!(c.state(line(1)), LineState::Invalid);
        assert!(c.insert(line(1), LineState::ReadOnly).is_none());
        assert_eq!(c.state(line(1)), LineState::ReadOnly);
        assert!(c.contains(line(1)));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = Cache::with_geometry(4, 1);
        c.insert(line(1), LineState::ReadWrite);
        c.mark_dirty(line(1), 3);
        // line 5 maps to the same set (5 % 4 == 1).
        let ev = c.insert(line(5), LineState::ReadOnly).expect("conflict eviction");
        assert_eq!(ev.line, line(1));
        assert_eq!(ev.state, LineState::ReadWrite);
        assert_eq!(ev.dirty_words, 1 << 3);
        assert_eq!(c.state(line(1)), LineState::Invalid);
        assert_eq!(c.state(line(5)), LineState::ReadOnly);
    }

    #[test]
    fn two_way_lru() {
        let mut c = Cache::with_geometry(2, 2);
        c.insert(line(0), LineState::ReadOnly);
        c.insert(line(2), LineState::ReadOnly); // same set as 0
        c.touch(line(0)); // 0 is now MRU
        let ev = c.insert(line(4), LineState::ReadOnly).unwrap();
        assert_eq!(ev.line, line(2), "LRU line evicted");
        assert!(c.contains(line(0)));
        assert!(c.contains(line(4)));
    }

    #[test]
    fn upgrade_and_dirty_tracking() {
        let mut c = Cache::with_geometry(4, 1);
        c.insert(line(7), LineState::ReadOnly);
        assert!(c.upgrade(line(7)));
        assert_eq!(c.state(line(7)), LineState::ReadWrite);
        assert!(c.mark_dirty(line(7), 0));
        assert!(c.mark_dirty(line(7), 31));
        assert_eq!(c.dirty_words(line(7)), (1 << 0) | (1 << 31));
        c.clear_dirty(line(7));
        assert_eq!(c.dirty_words(line(7)), 0);
        assert!(!c.upgrade(line(99)));
        assert!(!c.mark_dirty(line(99), 0));
    }

    #[test]
    fn invalidate_returns_final_state() {
        let mut c = Cache::with_geometry(4, 1);
        c.insert(line(9), LineState::ReadWrite);
        c.mark_dirty(line(9), 1);
        let ev = c.invalidate(line(9)).unwrap();
        assert_eq!(ev.dirty_words, 2);
        assert!(c.invalidate(line(9)).is_none());
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn reinsert_preserves_dirty_words() {
        let mut c = Cache::with_geometry(4, 1);
        c.insert(line(3), LineState::ReadWrite);
        c.mark_dirty(line(3), 2);
        // Re-insert (e.g. a permission refresh) keeps the dirty mask.
        assert!(c.insert(line(3), LineState::ReadOnly).is_none());
        assert_eq!(c.dirty_words(line(3)), 4);
    }

    #[test]
    fn table1_geometry() {
        let cfg = MachineConfig::paper_default(64);
        let c = Cache::new(&cfg);
        assert_eq!(c.num_sets(), 1024);
        assert_eq!(c.assoc(), 1);
    }

    #[test]
    fn capacity_bounded() {
        let mut c = Cache::with_geometry(8, 2);
        for i in 0..100 {
            c.insert(line(i), LineState::ReadOnly);
        }
        assert_eq!(c.resident(), 16);
        assert_eq!(c.iter().count(), 16);
    }
}

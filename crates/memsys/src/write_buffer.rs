//! The processor write buffer used by the relaxed-consistency protocols.
//!
//! Per Section 4.2 of the paper: 4 entries, coalesces writes to the same
//! cache line, and lets reads bypass pending writes (with forwarding when a
//! read matches a buffered line). Entries retire in FIFO order once the
//! protocol marks them ready; a full buffer stalls the processor — those
//! stall cycles are the "write buffer" bucket of the overhead figures.

use lrc_sim::LineAddr;
use std::collections::VecDeque;

/// One buffered write: a target line and the set of words written to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbEntry {
    /// Destination cache line.
    pub line: LineAddr,
    /// Bit mask of words written (coalesced).
    pub words: u64,
    /// Set by the protocol when the entry may retire (e.g. ownership or
    /// write-permission reply has arrived).
    pub ready: bool,
    /// Set once the protocol has issued the coherence action for this entry,
    /// so a coalesced second write doesn't trigger a duplicate request.
    pub issued: bool,
}

/// Outcome of offering a write to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbPush {
    /// Merged into an existing entry for the same line.
    Coalesced,
    /// A new entry was allocated.
    Allocated,
    /// Buffer full: the processor must stall until an entry retires.
    Full,
}

/// FIFO, coalescing write buffer.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    entries: VecDeque<WbEntry>,
    capacity: usize,
}

impl WriteBuffer {
    /// Buffer with `capacity` entries (Table-1 machines use 4).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        WriteBuffer { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Offer a write of `word` within `line`.
    pub fn push(&mut self, line: LineAddr, word: usize) -> WbPush {
        debug_assert!(word < 64);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.words |= 1 << word;
            return WbPush::Coalesced;
        }
        if self.entries.len() == self.capacity {
            return WbPush::Full;
        }
        self.entries.push_back(WbEntry { line, words: 1 << word, ready: false, issued: false });
        WbPush::Allocated
    }

    /// Read bypass check: does a buffered write cover `line`? (If so a read
    /// of that line can be forwarded from the buffer.)
    pub fn matches(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Mark the entry for `line` ready to retire.
    pub fn mark_ready(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.ready = true;
        }
    }

    /// Mark the entry for `line` as having had its coherence action issued.
    pub fn mark_issued(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.issued = true;
        }
    }

    /// The oldest entry, if any (the only retirement candidate — FIFO).
    pub fn front(&self) -> Option<&WbEntry> {
        self.entries.front()
    }

    /// Mutable access to the oldest entry.
    pub fn front_mut(&mut self) -> Option<&mut WbEntry> {
        self.entries.front_mut()
    }

    /// Retire the oldest entry if it is ready; returns it.
    pub fn pop_ready(&mut self) -> Option<WbEntry> {
        if self.entries.front().is_some_and(|e| e.ready) {
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Oldest un-issued entry, if any (next coherence action to start).
    pub fn next_unissued(&mut self) -> Option<&mut WbEntry> {
        self.entries.iter_mut().find(|e| !e.issued)
    }

    /// Index of the oldest un-issued entry, if any. Pairing this with
    /// [`WriteBuffer::entry_mut`] lets the write-buffer pump revisit the
    /// same entry by position instead of re-searching by line.
    pub fn next_unissued_idx(&self) -> Option<usize> {
        self.entries.iter().position(|e| !e.issued)
    }

    /// Mutable access to the entry at `idx` (FIFO position).
    pub fn entry_mut(&mut self, idx: usize) -> &mut WbEntry {
        &mut self.entries[idx]
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no writes are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a new (non-coalescing) write would stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Iterate entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &WbEntry> {
        self.entries.iter()
    }

    /// Replace the buffered entries with a checkpointed FIFO listing
    /// (oldest first). Returns false (buffer unchanged) if the listing
    /// exceeds capacity.
    pub fn restore_entries(&mut self, entries: &[WbEntry]) -> bool {
        if entries.len() > self.capacity {
            return false;
        }
        self.entries.clear();
        self.entries.extend(entries.iter().copied());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn coalesces_same_line() {
        let mut wb = WriteBuffer::new(4);
        assert_eq!(wb.push(l(1), 0), WbPush::Allocated);
        assert_eq!(wb.push(l(1), 5), WbPush::Coalesced);
        assert_eq!(wb.len(), 1);
        assert_eq!(wb.front().unwrap().words, 0b100001);
    }

    #[test]
    fn fills_at_capacity() {
        let mut wb = WriteBuffer::new(4);
        for i in 0..4 {
            assert_eq!(wb.push(l(i), 0), WbPush::Allocated);
        }
        assert!(wb.is_full());
        assert_eq!(wb.push(l(99), 0), WbPush::Full);
        // Coalescing still works when full.
        assert_eq!(wb.push(l(2), 1), WbPush::Coalesced);
    }

    #[test]
    fn fifo_retirement_requires_ready() {
        let mut wb = WriteBuffer::new(4);
        wb.push(l(1), 0);
        wb.push(l(2), 0);
        assert!(wb.pop_ready().is_none());
        wb.mark_ready(l(2));
        // Front (line 1) not ready: nothing retires even though 2 is ready.
        assert!(wb.pop_ready().is_none());
        wb.mark_ready(l(1));
        assert_eq!(wb.pop_ready().unwrap().line, l(1));
        assert_eq!(wb.pop_ready().unwrap().line, l(2));
        assert!(wb.is_empty());
    }

    #[test]
    fn read_bypass_matching() {
        let mut wb = WriteBuffer::new(4);
        wb.push(l(3), 2);
        assert!(wb.matches(l(3)));
        assert!(!wb.matches(l(4)));
    }

    #[test]
    fn issue_tracking() {
        let mut wb = WriteBuffer::new(4);
        wb.push(l(1), 0);
        wb.push(l(2), 0);
        assert_eq!(wb.next_unissued().unwrap().line, l(1));
        wb.mark_issued(l(1));
        assert_eq!(wb.next_unissued().unwrap().line, l(2));
        wb.mark_issued(l(2));
        assert!(wb.next_unissued().is_none());
    }
}

//! The coalescing write-through buffer (Jouppi-style coalescing buffer,
//! paper reference [12]).
//!
//! The lazy protocols use write-through caches for correctness (memory must
//! hold a mergeable, word-granularity master copy under multiple writers),
//! but raw write-through traffic would be prohibitive. A small fully
//! associative buffer between the cache and memory coalesces writes to the
//! same line and drains to the home node in the background; a release must
//! wait until the buffer has drained and all flushes are acknowledged.

use lrc_sim::LineAddr;
use std::collections::VecDeque;

/// One coalescing-buffer entry: a line and the words of it written since the
/// entry was allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbEntry {
    /// Destination line.
    pub line: LineAddr,
    /// Mask of dirty words to flush.
    pub words: u64,
}

/// Result of offering a write to the coalescing buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbPush {
    /// Merged into an existing entry.
    Merged,
    /// Allocated a fresh entry.
    Allocated,
    /// Buffer was full: the returned victim (oldest entry) must be flushed
    /// to its home node; the new write took its slot.
    Displaced(CbEntry),
}

/// Fully associative FIFO-replacement coalescing buffer.
#[derive(Debug, Clone)]
pub struct CoalescingBuffer {
    entries: VecDeque<CbEntry>,
    capacity: usize,
}

impl CoalescingBuffer {
    /// Buffer with `capacity` entries (Table-1 machines use 16).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        CoalescingBuffer { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Offer a write of `word` within `line`.
    pub fn push(&mut self, line: LineAddr, word: usize) -> CbPush {
        debug_assert!(word < 64);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.words |= 1 << word;
            return CbPush::Merged;
        }
        let displaced = if self.entries.len() == self.capacity {
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(CbEntry { line, words: 1 << word });
        match displaced {
            Some(v) => CbPush::Displaced(v),
            None => CbPush::Allocated,
        }
    }

    /// Offer a whole dirty-word mask for `line` in one buffer search —
    /// equivalent to [`CoalescingBuffer::push`] once per set bit (the first
    /// allocates or displaces, the rest merge), but probing the buffer once.
    pub fn push_words(&mut self, line: LineAddr, words: u64) -> CbPush {
        debug_assert!(words != 0);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.words |= words;
            return CbPush::Merged;
        }
        let displaced = if self.entries.len() == self.capacity {
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(CbEntry { line, words });
        match displaced {
            Some(v) => CbPush::Displaced(v),
            None => CbPush::Allocated,
        }
    }

    /// Remove and return the entry for `line`, if present (flush on demand —
    /// e.g. when the line is invalidated or evicted while still buffered).
    pub fn take(&mut self, line: LineAddr) -> Option<CbEntry> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        self.entries.remove(pos)
    }

    /// Remove and return the oldest entry (background drain / release flush).
    pub fn pop_oldest(&mut self) -> Option<CbEntry> {
        self.entries.pop_front()
    }

    /// Drain everything (release flush), oldest first.
    pub fn drain_all(&mut self) -> Vec<CbEntry> {
        self.entries.drain(..).collect()
    }

    /// Does the buffer hold a write to `line`?
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &CbEntry> {
        self.entries.iter()
    }

    /// Replace the buffered entries with a checkpointed FIFO listing
    /// (oldest first). Returns false (buffer unchanged) if the listing
    /// exceeds capacity.
    pub fn restore_entries(&mut self, entries: &[CbEntry]) -> bool {
        if entries.len() > self.capacity {
            return false;
        }
        self.entries.clear();
        self.entries.extend(entries.iter().copied());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn merges_same_line() {
        let mut cb = CoalescingBuffer::new(16);
        assert_eq!(cb.push(l(1), 0), CbPush::Allocated);
        assert_eq!(cb.push(l(1), 7), CbPush::Merged);
        assert_eq!(cb.len(), 1);
        assert_eq!(cb.iter().next().unwrap().words, 0b1000_0001);
    }

    #[test]
    fn displaces_oldest_when_full() {
        let mut cb = CoalescingBuffer::new(2);
        cb.push(l(1), 0);
        cb.push(l(2), 0);
        match cb.push(l(3), 0) {
            CbPush::Displaced(v) => assert_eq!(v.line, l(1)),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert!(cb.contains(l(2)));
        assert!(cb.contains(l(3)));
        assert!(!cb.contains(l(1)));
    }

    #[test]
    fn take_specific_line() {
        let mut cb = CoalescingBuffer::new(4);
        cb.push(l(1), 0);
        cb.push(l(2), 3);
        let e = cb.take(l(2)).unwrap();
        assert_eq!(e.words, 1 << 3);
        assert!(cb.take(l(2)).is_none());
        assert_eq!(cb.len(), 1);
    }

    #[test]
    fn drain_is_fifo() {
        let mut cb = CoalescingBuffer::new(4);
        cb.push(l(5), 0);
        cb.push(l(6), 0);
        cb.push(l(7), 0);
        let order: Vec<u64> = cb.drain_all().iter().map(|e| e.line.0).collect();
        assert_eq!(order, vec![5, 6, 7]);
        assert!(cb.is_empty());
    }

    #[test]
    fn pop_oldest_order() {
        let mut cb = CoalescingBuffer::new(4);
        cb.push(l(9), 0);
        cb.push(l(8), 0);
        assert_eq!(cb.pop_oldest().unwrap().line, l(9));
        assert_eq!(cb.pop_oldest().unwrap().line, l(8));
        assert!(cb.pop_oldest().is_none());
    }
}

//! Pluggable trace sinks: where filtered records go.

use crate::record::TraceRecord;
use crate::ring::Ring;

/// Consumer of trace records. The machine calls [`TraceSink::record`]
/// once per record that passes the configured [`crate::TraceFilter`];
/// harnesses read the result back with [`TraceSink::snapshot`].
///
/// `box_clone` exists because the machine is `Clone` (the model checker
/// snapshots it wholesale), so its sink must be too.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);
    /// Current contents in insertion order (may be truncated for bounded
    /// sinks — oldest entries drop first).
    fn snapshot(&self) -> Vec<TraceRecord>;
    /// Records currently held.
    fn len(&self) -> usize;
    /// True when no records are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Clone into a fresh box (support for `Clone` machines).
    fn box_clone(&self) -> Box<dyn TraceSink>;
}

impl Clone for Box<dyn TraceSink> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Bounded sink keeping the most recent `cap` records (the default).
#[derive(Debug, Clone)]
pub struct RingSink {
    ring: Ring<TraceRecord>,
}

impl RingSink {
    /// Sink keeping at most `cap` records.
    pub fn new(cap: usize) -> Self {
        RingSink { ring: Ring::new(cap) }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.ring.push(*rec);
    }
    fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring.snapshot()
    }
    fn len(&self) -> usize {
        self.ring.len()
    }
    fn box_clone(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// Unbounded sink keeping everything (tests and short runs only — a
/// traced paper-scale run emits hundreds of millions of records).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TraceRecord>,
}

impl VecSink {
    /// Empty unbounded sink.
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.events.push(*rec);
    }
    fn snapshot(&self) -> Vec<TraceRecord> {
        self.events.clone()
    }
    fn len(&self) -> usize {
        self.events.len()
    }
    fn box_clone(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecData, SyncOp};

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord { at: seq, seq, node: 0, data: RecData::Sync { op: SyncOp::Release, id: 0 } }
    }

    #[test]
    fn ring_sink_bounds_vec_sink_keeps_all() {
        let mut ring = RingSink::new(4);
        let mut vec = VecSink::new();
        for i in 0..10 {
            ring.record(&rec(i));
            vec.record(&rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.snapshot().first().unwrap().seq, 6);
        assert_eq!(vec.len(), 10);
        assert!(!vec.is_empty());
    }

    #[test]
    fn boxed_sinks_clone() {
        let mut s: Box<dyn TraceSink> = Box::new(RingSink::new(8));
        s.record(&rec(1));
        let c = s.clone();
        assert_eq!(c.snapshot(), s.snapshot());
    }
}

//! The flight recorder: a bounded ring of recent records per node, kept
//! cheaply during at-risk runs (watchdogs, fault plans, finite resources)
//! so a stall diagnosis can tell the last-K-events story instead of only
//! showing end-state counters.

use crate::record::TraceRecord;
use crate::ring::Ring;
use lrc_sim::NodeId;

/// Per-node rings of the most recent trace records.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    rings: Vec<Ring<TraceRecord>>,
}

impl FlightRecorder {
    /// Recorder for `nodes` nodes keeping `cap_per_node` records each.
    pub fn new(nodes: usize, cap_per_node: usize) -> Self {
        FlightRecorder { rings: (0..nodes).map(|_| Ring::new(cap_per_node)).collect() }
    }

    /// Record one event on its node's ring (out-of-range nodes are
    /// impossible by construction; debug builds assert).
    pub fn push(&mut self, rec: &TraceRecord) {
        debug_assert!(rec.node < self.rings.len());
        if let Some(ring) = self.rings.get_mut(rec.node) {
            ring.push(*rec);
        }
    }

    /// True when nothing has been recorded on any node.
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(Ring::is_empty)
    }

    /// One node's recent records, oldest first.
    pub fn node_tail(&self, node: NodeId) -> Vec<TraceRecord> {
        self.rings.get(node).map(Ring::snapshot).unwrap_or_default()
    }

    /// All nodes' recent records merged into one deterministic timeline,
    /// sorted by `(at, seq)`.
    pub fn tail(&self) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> =
            self.rings.iter().flat_map(|r| r.iter().copied()).collect();
        all.sort_unstable_by_key(|r| (r.at, r.seq));
        all
    }

    /// The merged tail rendered line-by-line (what a [`StallDiagnosis`]
    /// embeds — `lrc-sim` cannot depend on this crate, so the diagnosis
    /// carries strings).
    ///
    /// [`StallDiagnosis`]: lrc_sim::StallDiagnosis
    pub fn render_tail(&self) -> Vec<String> {
        self.tail().iter().map(|r| r.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecData, SyncOp};

    fn rec(at: u64, seq: u64, node: usize) -> TraceRecord {
        TraceRecord { at, seq, node, data: RecData::Sync { op: SyncOp::Release, id: 0 } }
    }

    #[test]
    fn merges_nodes_in_time_order() {
        let mut fr = FlightRecorder::new(2, 4);
        assert!(fr.is_empty());
        fr.push(&rec(5, 1, 0));
        fr.push(&rec(3, 0, 1));
        fr.push(&rec(5, 2, 1));
        let tail = fr.tail();
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(fr.node_tail(1).len(), 2);
        assert_eq!(fr.render_tail().len(), 3);
        assert!(!fr.is_empty());
    }

    #[test]
    fn per_node_rings_bound_independently() {
        let mut fr = FlightRecorder::new(2, 2);
        for i in 0..10 {
            fr.push(&rec(i, i, 0));
        }
        fr.push(&rec(0, 100, 1));
        assert_eq!(fr.node_tail(0).len(), 2, "node 0 capped");
        assert_eq!(fr.node_tail(1).len(), 1, "node 1 untouched by node 0 pressure");
    }
}

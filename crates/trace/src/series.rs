//! The interval metrics sampler's time-series container.

use lrc_json::Value;
use lrc_sim::Cycle;

/// A fixed-schema table of unsigned samples: one row per sampling tick,
/// one column per gauge. The machine's sampler fills it deterministically
/// (sampling is event-driven, so the same run produces the same rows
/// bit-for-bit); harnesses dump it as CSV or JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    interval: Cycle,
    columns: Vec<String>,
    rows: Vec<Vec<u64>>,
}

impl TimeSeries {
    /// Empty series sampled every `interval` cycles with the given columns.
    pub fn new<S: Into<String>>(interval: Cycle, columns: Vec<S>) -> Self {
        TimeSeries {
            interval,
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// The configured sampling interval in cycles.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Column names, in row order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// All rows sampled so far.
    pub fn rows(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// Number of sampling ticks recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no tick has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one tick's samples.
    ///
    /// # Panics
    /// If the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<u64>) {
        assert_eq!(row.len(), self.columns.len(), "sample row width mismatch");
        self.rows.push(row);
    }

    /// Render as CSV (header row + one line per tick).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as JSON: `{"interval": N, "columns": [...], "rows": [[...]]}`.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("interval".into(), Value::Num(self.interval as f64)),
            (
                "columns".into(),
                Value::Array(self.columns.iter().map(|c| Value::Str(c.clone())).collect()),
            ),
            (
                "rows".into(),
                Value::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Value::Array(r.iter().map(|&v| Value::Num(v as f64)).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_json_round_the_same_rows() {
        let mut ts = TimeSeries::new(100, vec!["cycle", "inflight"]);
        ts.push_row(vec![100, 3]);
        ts.push_row(vec![200, 0]);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.interval(), 100);
        let csv = ts.to_csv();
        assert_eq!(csv, "cycle,inflight\n100,3\n200,0\n");
        let j = ts.to_json();
        assert_eq!(j["interval"].as_u64(), Some(100));
        assert_eq!(j["rows"].get_index(1).unwrap().get_index(0).unwrap().as_u64(), Some(200));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_is_enforced() {
        let mut ts = TimeSeries::new(1, vec!["a", "b"]);
        ts.push_row(vec![1]);
    }
}

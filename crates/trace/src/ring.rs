//! A fixed-capacity ring buffer that drops its oldest entries.

use std::collections::VecDeque;

/// Bounded FIFO keeping the most recent `cap` pushed values.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    cap: usize,
    buf: VecDeque<T>,
}

impl<T> Ring<T> {
    /// Ring keeping at most `cap` entries (at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring { cap, buf: VecDeque::with_capacity(cap.min(1024)) }
    }

    /// Append, evicting the oldest entry when full.
    pub fn push(&mut self, v: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(v);
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been pushed (or everything was evicted into
    /// the void — impossible, eviction only happens on push).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl<T: Clone> Ring<T> {
    /// Copy out the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_oldest_at_capacity() {
        let mut r = Ring::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.snapshot(), vec![7, 8, 9]);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.snapshot(), vec![2]);
    }
}

//! Trace exporters: Chrome trace-event ("Perfetto") JSON and compact JSONL.
//!
//! The Chrome format is the small JSON dialect both `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) load directly: a top-level
//! `{"traceEvents": [...]}` object whose entries carry a phase tag `ph`.
//! We emit one track (`tid`) per node inside a single process (`pid` 0),
//! `"X"` duration slices for message sends/receives, `"s"`/`"f"` flow
//! pairs drawing the message-flight arrow between them, and `"i"`
//! instants for sync, state, and resource records.

use crate::record::{CrashEv, RecData, TraceRecord};
use lrc_json::Value;
use lrc_sim::table::FxHashMap;
use std::collections::VecDeque;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

/// Common args payload for one record.
fn record_args(rec: &TraceRecord) -> Value {
    let mut fields: Vec<(String, Value)> = vec![("seq".into(), num(rec.seq))];
    match rec.data {
        RecData::Send { src, dst, msg } | RecData::Recv { src, dst, msg } => {
            fields.push(("src".into(), num(src as u64)));
            fields.push(("dst".into(), num(dst as u64)));
            fields.push(("class".into(), Value::Str(msg.class.name().into())));
            fields.push(("bytes".into(), num(msg.bytes)));
            if let Some(l) = msg.line {
                fields.push(("line".into(), num(l)));
            }
        }
        RecData::Sync { id, .. } => fields.push(("id".into(), num(id))),
        RecData::State { line, .. } => fields.push(("line".into(), num(line))),
        RecData::Resource { .. } => {}
        RecData::Crash { ev } => match ev {
            CrashEv::NodeCrashed => {}
            CrashEv::SuspectedDead { dead } => fields.push(("dead".into(), num(dead as u64))),
            CrashEv::DataLoss { line, owner } => {
                fields.push(("line".into(), num(line)));
                fields.push(("owner".into(), num(owner as u64)));
            }
            CrashEv::LockReclaimed { lock } => fields.push(("id".into(), num(lock))),
            CrashEv::BarrierReclaimed { barrier } => fields.push(("id".into(), num(barrier))),
            CrashEv::DegradedFill { line } => fields.push(("line".into(), num(line))),
        },
    }
    Value::Object(fields)
}

/// Render the records as a Chrome trace-event document. Records may be in
/// any order; flow arrows are matched FIFO per `(src, dst, message name)`,
/// which is exact because the simulated network delivers each such stream
/// in order. Receives with no matching send (the send fell off a bounded
/// ring) get a slice but no arrow.
pub fn chrome_trace(records: &[TraceRecord]) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(records.len() * 2 + 8);

    let mut nodes: Vec<usize> = records.iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for &n in &nodes {
        events.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", num(0)),
            ("tid", num(n as u64)),
            ("args", obj(vec![("name", Value::Str(format!("P{n}")))])),
        ]));
    }

    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_unstable_by_key(|r| (r.at, r.seq));

    // FIFO queues of unmatched send seqs per (src, dst, name) stream.
    let mut flights: FxHashMap<(usize, usize, &'static str), VecDeque<u64>> =
        FxHashMap::default();

    for rec in sorted {
        let name = Value::Str(rec.name().into());
        let cat = Value::Str(rec.category().into());
        let common = |ph: &str| {
            vec![
                ("name", name.clone()),
                ("cat", cat.clone()),
                ("ph", Value::Str(ph.into())),
                ("ts", num(rec.at)),
                ("pid", num(0)),
                ("tid", num(rec.node as u64)),
            ]
        };
        match rec.data {
            RecData::Send { src, dst, msg } => {
                let mut slice = common("X");
                slice.push(("dur", num(1)));
                slice.push(("args", record_args(rec)));
                events.push(obj(slice));
                flights.entry((src, dst, msg.name)).or_default().push_back(rec.seq);
                let mut flow = common("s");
                flow.push(("id", num(rec.seq)));
                events.push(obj(flow));
            }
            RecData::Recv { src, dst, msg } => {
                let mut slice = common("X");
                slice.push(("dur", num(1)));
                slice.push(("args", record_args(rec)));
                events.push(obj(slice));
                if let Some(send_seq) =
                    flights.get_mut(&(src, dst, msg.name)).and_then(VecDeque::pop_front)
                {
                    let mut flow = common("f");
                    flow.push(("bp", Value::Str("e".into())));
                    flow.push(("id", num(send_seq)));
                    events.push(obj(flow));
                }
            }
            RecData::Sync { .. }
            | RecData::State { .. }
            | RecData::Resource { .. }
            | RecData::Crash { .. } => {
                let mut inst = common("i");
                inst.push(("s", Value::Str("t".into())));
                inst.push(("args", record_args(rec)));
                events.push(obj(inst));
            }
        }
    }

    obj(vec![("traceEvents", Value::Array(events))])
}

/// One record as a flat JSON object (the JSONL row shape).
pub fn record_to_json(rec: &TraceRecord) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("at".into(), num(rec.at)),
        ("seq".into(), num(rec.seq)),
        ("node".into(), num(rec.node as u64)),
        ("cat".into(), Value::Str(rec.category().into())),
        ("name".into(), Value::Str(rec.name().into())),
    ];
    if let Value::Object(extra) = record_args(rec) {
        fields.extend(extra.into_iter().filter(|(k, _)| k != "seq"));
    }
    Value::Object(fields)
}

/// Render records as compact JSONL: one JSON object per line.
pub fn jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&record_to_json(rec).dump());
        out.push('\n');
    }
    out
}

/// Structural validation of a Chrome trace-event document: the shape the
/// Perfetto importer requires. Returns the first problem found.
pub fn validate_chrome_trace(v: &Value) -> Result<(), String> {
    let events = v
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\" key")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let fail = |what: &str| Err(format!("event {i}: {what}"));
        if !ev.is_object() {
            return fail("not an object");
        }
        let ph = match ev["ph"].as_str() {
            Some(p) => p,
            None => return fail("missing \"ph\""),
        };
        if !matches!(ph, "X" | "i" | "s" | "f" | "M") {
            return fail(&format!("unknown phase {ph:?}"));
        }
        if ev["name"].as_str().is_none() {
            return fail("missing \"name\"");
        }
        if ev["pid"].as_u64().is_none() || ev["tid"].as_u64().is_none() {
            return fail("missing \"pid\"/\"tid\"");
        }
        match ph {
            "M" => {
                if ev["args"]["name"].as_str().is_none() {
                    return fail("metadata event lacks args.name");
                }
            }
            _ => {
                if ev["ts"].as_u64().is_none() {
                    return fail("missing \"ts\"");
                }
            }
        }
        if matches!(ph, "s" | "f") && ev["id"].as_u64().is_none() {
            return fail("flow event lacks \"id\"");
        }
        if ph == "X" && ev["dur"].as_u64().is_none() {
            return fail("duration slice lacks \"dur\"");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MsgMeta, SyncOp};
    use lrc_mesh::MsgClass;

    fn msg(name: &'static str, line: u64) -> MsgMeta {
        MsgMeta { name, class: MsgClass::Request, line: Some(line), bytes: 8 }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                at: 10,
                seq: 0,
                node: 0,
                data: RecData::Send { src: 0, dst: 1, msg: msg("ReadReq", 7) },
            },
            TraceRecord {
                at: 25,
                seq: 1,
                node: 1,
                data: RecData::Recv { src: 0, dst: 1, msg: msg("ReadReq", 7) },
            },
            TraceRecord {
                at: 30,
                seq: 2,
                node: 1,
                data: RecData::Sync { op: SyncOp::Release, id: 3 },
            },
        ]
    }

    #[test]
    fn chrome_trace_validates_and_links_flows() {
        let doc = chrome_trace(&sample_records());
        validate_chrome_trace(&doc).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        let starts: Vec<&Value> =
            events.iter().filter(|e| e["ph"].as_str() == Some("s")).collect();
        let ends: Vec<&Value> = events.iter().filter(|e| e["ph"].as_str() == Some("f")).collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(ends.len(), 1);
        assert_eq!(starts[0]["id"], ends[0]["id"], "arrow endpoints share the flow id");
        assert_eq!(ends[0]["bp"].as_str(), Some("e"));
        let metas: Vec<&Value> = events.iter().filter(|e| e["ph"].as_str() == Some("M")).collect();
        assert_eq!(metas.len(), 2, "one thread_name per node");
    }

    #[test]
    fn chrome_trace_round_trips_through_the_parser() {
        let doc = chrome_trace(&sample_records());
        let reparsed = lrc_json::parse(&doc.dump()).unwrap();
        assert_eq!(reparsed, doc);
        validate_chrome_trace(&reparsed).unwrap();
    }

    #[test]
    fn unmatched_recv_gets_no_arrow() {
        let recs = vec![TraceRecord {
            at: 5,
            seq: 0,
            node: 1,
            data: RecData::Recv { src: 0, dst: 1, msg: msg("ReadReply", 7) },
        }];
        let doc = chrome_trace(&recs);
        validate_chrome_trace(&doc).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events.iter().all(|e| e["ph"].as_str() != Some("f")));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace(&lrc_json::json!({ "events": [] })).is_err());
        assert!(validate_chrome_trace(
            &lrc_json::json!({ "traceEvents": [{ "ph": "Z", "name": "x", "pid": 0, "tid": 0 }] })
        )
        .is_err());
        assert!(validate_chrome_trace(
            &lrc_json::json!({ "traceEvents": [{ "name": "x", "pid": 0, "tid": 0 }] })
        )
        .is_err());
    }

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let text = jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = lrc_json::parse(lines[0]).unwrap();
        assert_eq!(first["cat"].as_str(), Some("send"));
        assert_eq!(first["name"].as_str(), Some("ReadReq"));
        assert_eq!(first["line"].as_u64(), Some(7));
        let last = lrc_json::parse(lines[2]).unwrap();
        assert_eq!(last["cat"].as_str(), Some("sync"));
        assert_eq!(last["id"].as_u64(), Some(3));
    }
}
